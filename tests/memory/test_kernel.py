"""The batched tag kernel: exact twin-ship with the per-access classes.

Property layer under the whole-registry differential suite
(``tests/traces/test_columnar_equivalence.py``): every kernel class is
driven side by side with its per-access twin over randomized streams and
must agree on every counter and on the residual miss stream — the
invariant the columnar replay engine's bit-identical claim rests on.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.memory import kernel
from repro.memory.cache import CacheGeometry, TagOnlyCache
from repro.memory.hierarchy import WESTMERE
from repro.memory.kernel import (
    CFORM_LINE_STRIDE,
    HAVE_NUMPY,
    LadderKernel,
    LruTagKernel,
    expand_touches,
    require_numpy,
)
from repro.memory.multicore import PrivateLadder, SharedL3, SharedL3Kernel
from repro.workloads.generator import (
    EV_ALLOC,
    EV_CFORM,
    EV_EPOCH,
    EV_FREE,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
)

#: Tiny geometry so eviction/LRU paths are exercised by short streams.
SMALL = CacheGeometry(size_bytes=4 * 1024, associativity=2)


def random_addresses(seed: int, count: int = 4000) -> "np.ndarray":
    """A burst/stride-structured address stream (like recorded traces)."""
    rng = random.Random(seed)
    addresses: list[int] = []
    cursor = 0x1000
    while len(addresses) < count:
        if rng.random() < 0.5:  # stride burst (scan / CFORM walk)
            stride = rng.choice((8, 64, 128))
            for index in range(rng.randrange(1, 12)):
                addresses.append(cursor + index * stride)
            cursor += rng.randrange(0, 1 << 14)
        else:  # random jump (pointer chase)
            cursor = rng.randrange(0, 1 << 18)
            addresses.append(cursor)
    return np.array(addresses[:count], dtype=np.int64)


class TestKindConstants:
    def test_pinned_to_the_trace_event_codes(self):
        # The kernel defines its own copies to avoid an import cycle;
        # this is the pin that keeps the two vocabularies identical.
        assert kernel.KIND_LOAD == EV_LOAD
        assert kernel.KIND_STORE == EV_STORE
        assert kernel.KIND_ALLOC == EV_ALLOC
        assert kernel.KIND_FREE == EV_FREE
        assert kernel.KIND_CFORM == EV_CFORM
        assert kernel.KIND_WARM == EV_WARM
        assert kernel.KIND_EPOCH == EV_EPOCH


class TestNumpyGate:
    def test_have_numpy_is_true_here(self):
        assert HAVE_NUMPY
        assert require_numpy() is np

    def test_missing_numpy_raises_directed_error(self, monkeypatch):
        monkeypatch.setattr(kernel, "_np", None)
        with pytest.raises(ImportError, match="engine='records'"):
            require_numpy("a unit test")


class TestLruTagKernel:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_tag_only_cache_access_for_access(self, seed):
        reference = TagOnlyCache(SMALL)
        batched = LruTagKernel(SMALL)
        addresses = random_addresses(seed)
        expected_miss = np.array(
            [not reference.access(int(a)) for a in addresses], dtype=bool
        )
        # Drive the kernel in several blocks so the MRU collapse crosses
        # block boundaries too.
        produced = np.concatenate(
            [batched.access_block(block) for block in np.array_split(addresses, 7)]
        )
        assert (produced == expected_miss).all()
        assert batched.accesses == reference.accesses == len(addresses)
        assert batched.hits == reference.hits
        assert batched.misses == reference.misses

    def test_lru_state_matches_after_batches(self):
        # Same follow-up behaviour ⇒ same retained contents and order.
        reference = TagOnlyCache(SMALL)
        batched = LruTagKernel(SMALL)
        first = random_addresses(11)
        batched.access_block(first)
        for address in first.tolist():
            reference.access(address)
        probe = random_addresses(12)
        expected = [not reference.access(int(a)) for a in probe]
        assert batched.access_block(probe).tolist() == expected

    def test_reset_counters_keeps_contents_warm(self):
        batched = LruTagKernel(SMALL)
        warm = np.arange(0, 64 * 16, 64, dtype=np.int64)
        batched.access_block(warm)
        batched.reset_counters()
        assert (batched.accesses, batched.hits, batched.misses) == (0, 0, 0)
        assert not batched.access_block(warm).any()  # still resident

    def test_empty_block(self):
        batched = LruTagKernel(SMALL)
        assert len(batched.access_block(np.empty(0, dtype=np.int64))) == 0
        assert batched.accesses == 0


class TestLadderKernel:
    def test_rejects_bad_level_count(self):
        with pytest.raises(ValueError, match="2 or 3"):
            LadderKernel(WESTMERE, levels=1)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_two_level_residue_matches_private_ladder(self, seed):
        reference = PrivateLadder(WESTMERE)
        batched = LadderKernel(WESTMERE, levels=2)
        addresses = random_addresses(seed)
        expected = [
            index
            for index, address in enumerate(addresses.tolist())
            if not reference.access(address)
        ]
        assert batched.touch_block(addresses).tolist() == expected
        assert batched.l1.accesses == reference.l1.accesses
        assert batched.l1.misses == reference.l1.misses
        assert batched.l2.misses == reference.l2.misses

    def test_three_level_counters_match_the_serial_ladder(self):
        l1 = TagOnlyCache(WESTMERE.l1_geometry)
        l2 = TagOnlyCache(WESTMERE.l2_geometry)
        l3 = TagOnlyCache(WESTMERE.l3_geometry)
        batched = LadderKernel(WESTMERE, levels=3)
        addresses = random_addresses(7)
        for address in addresses.tolist():
            if not l1.access(address):
                if not l2.access(address):
                    l3.access(address)
        batched.touch_block(addresses)
        assert (batched.l1.accesses, batched.l1.misses) == (
            l1.accesses, l1.misses
        )
        assert (batched.l2.accesses, batched.l2.misses) == (
            l2.accesses, l2.misses
        )
        assert (batched.l3.accesses, batched.l3.misses) == (
            l3.accesses, l3.misses
        )


class TestExpandTouches:
    def test_mixed_record_batch(self):
        kinds = np.array(
            [EV_LOAD, EV_ALLOC, EV_CFORM, EV_STORE, EV_FREE, EV_WARM, EV_EPOCH],
            dtype=np.uint8,
        )
        addresses = np.array([0x100, 0x200, 0x300, 0x400, 0, 0, 0], np.int64)
        args = np.array([8, 96, 3, 4, 96, 0, 0], dtype=np.int64)
        touches, counts = expand_touches(kinds, addresses, args)
        assert counts.tolist() == [1, 0, 3, 1, 0, 0, 0]
        assert touches.tolist() == [
            0x100,
            0x300,
            0x300 + CFORM_LINE_STRIDE,
            0x300 + 2 * CFORM_LINE_STRIDE,
            0x400,
        ]

    def test_no_cform_fast_path(self):
        kinds = np.array([EV_LOAD, EV_STORE], dtype=np.uint8)
        touches, counts = expand_touches(
            kinds, np.array([1, 2], np.int64), np.array([8, 8], np.int64)
        )
        assert touches.tolist() == [1, 2]
        assert counts.tolist() == [1, 1]

    def test_zero_line_cform_contributes_nothing(self):
        kinds = np.array([EV_CFORM], dtype=np.uint8)
        touches, counts = expand_touches(
            kinds, np.array([0x800], np.int64), np.array([0], np.int64)
        )
        assert len(touches) == 0
        assert counts.tolist() == [0]


class TestSharedL3Kernel:
    @pytest.mark.parametrize("seed", [21, 22])
    def test_matches_shared_l3_attribution(self, seed):
        cores = 3
        reference = SharedL3(WESTMERE, cores)
        batched = SharedL3Kernel(WESTMERE, cores)
        rng = random.Random(seed)
        addresses = random_addresses(seed, count=3000)
        core_column = np.array(
            [rng.randrange(cores) for _ in range(len(addresses))],
            dtype=np.int64,
        )
        for core, address in zip(core_column.tolist(), addresses.tolist()):
            reference.access(core, address)
        for start in range(0, len(addresses), 500):
            batched.replay_columns(
                core_column[start : start + 500],
                addresses[start : start + 500],
            )
        assert batched.accesses == reference.accesses
        assert batched.misses == reference.misses

    def test_reset_core_zeroes_attribution_only(self):
        batched = SharedL3Kernel(WESTMERE, 2)
        addresses = np.arange(0, 64 * 32, 64, dtype=np.int64)
        batched.replay_columns(np.zeros(len(addresses), np.int64), addresses)
        batched.reset_core(0)
        assert batched.accesses == [0, 0]
        assert batched.misses == [0, 0]
        # Contents stayed warm: core 1 re-touching the lines all hits.
        batched.replay_columns(np.ones(len(addresses), np.int64), addresses)
        assert batched.misses[1] == 0

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError, match="positive"):
            SharedL3Kernel(WESTMERE, 0)
