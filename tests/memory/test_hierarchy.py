"""Integration tests for the full memory hierarchy with Califorms lines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.cform import CformRequest
from repro.core.exceptions import SecurityByteAccess
from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import WESTMERE, HierarchyConfig, MemoryHierarchy


def small_hierarchy():
    """A hierarchy tiny enough to force evictions quickly."""
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(4 * 64, 2),
        l2_geometry=CacheGeometry(8 * 64, 2),
        l3_geometry=CacheGeometry(16 * 64, 4),
    )
    return MemoryHierarchy(config)


class TestTable3Defaults:
    def test_westmere_geometry(self):
        assert WESTMERE.l1_geometry.size_bytes == 32 * 1024
        assert WESTMERE.l1_geometry.associativity == 8
        assert WESTMERE.l2_geometry.size_bytes == 256 * 1024
        assert WESTMERE.l3_geometry.size_bytes == 2 * 1024 * 1024
        assert WESTMERE.l3_geometry.associativity == 16

    def test_westmere_latencies(self):
        assert WESTMERE.l1_latency == 4
        assert WESTMERE.l2_latency == 7
        assert WESTMERE.l3_latency == 27

    def test_extra_latency_knob(self):
        config = WESTMERE.with_extra_latency(1)
        assert config.l2_extra_cycles == 1
        assert config.l3_extra_cycles == 1


class TestPlainDataPath:
    def test_store_load_roundtrip(self):
        hierarchy = MemoryHierarchy()
        hierarchy.store_or_raise(0x1000, b"hello world")
        assert hierarchy.load_or_raise(0x1000, 11) == b"hello world"

    def test_cross_line_access(self):
        hierarchy = MemoryHierarchy()
        data = bytes(range(100))
        hierarchy.store_or_raise(0x1000 + 30, data)  # spans two lines
        assert hierarchy.load_or_raise(0x1000 + 30, 100) == data

    def test_data_survives_full_eviction(self):
        hierarchy = small_hierarchy()
        hierarchy.store_or_raise(0, b"persist")
        # Touch enough distinct lines to evict everything everywhere.
        for i in range(1, 64):
            hierarchy.store_or_raise(i * 64 * 16, bytes([i]))
        assert hierarchy.load_or_raise(0, 7) == b"persist"

    def test_unwritten_memory_reads_zero(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.load_or_raise(0xDEAD00, 8) == bytes(8)


class TestCaliformedDataPath:
    def test_cform_set_then_access_raises(self):
        hierarchy = MemoryHierarchy()
        hierarchy.cform(CformRequest.set_bytes(0x2000, [3, 4]))
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(0x2000 + 3, 1)
        with pytest.raises(SecurityByteAccess):
            hierarchy.store_or_raise(0x2000 + 4, b"x")

    def test_adjacent_bytes_still_accessible(self):
        hierarchy = MemoryHierarchy()
        hierarchy.cform(CformRequest.set_bytes(0x2000, [3]))
        hierarchy.store_or_raise(0x2000, b"ab")  # bytes 0-1: fine
        assert hierarchy.load_or_raise(0x2000, 2) == b"ab"

    def test_security_bytes_survive_eviction_to_dram(self):
        hierarchy = small_hierarchy()
        hierarchy.store_or_raise(0, b"AAAA")
        hierarchy.cform(CformRequest.set_bytes(0, [10, 11, 12]))
        hierarchy.flush_all()
        # Line now lives only in DRAM, in sentinel format with ECC bit set.
        assert hierarchy.dram.califormed_line_count() == 1
        # Refetch through the whole hierarchy: mask and data intact.
        assert hierarchy.load_or_raise(0, 4) == b"AAAA"
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(10, 1)

    def test_secmask_of_reports_through_hierarchy(self):
        hierarchy = small_hierarchy()
        hierarchy.cform(CformRequest.set_bytes(64, [0, 63]))
        assert hierarchy.secmask_of(64) == bv.bit(0) | bv.bit(63)
        hierarchy.flush_all()
        assert hierarchy.secmask_of(64) == bv.bit(0) | bv.bit(63)

    def test_unset_restores_access(self):
        hierarchy = MemoryHierarchy()
        hierarchy.cform(CformRequest.set_bytes(0, [5]))
        hierarchy.cform(CformRequest.unset_bytes(0, [5]))
        hierarchy.store_or_raise(5, b"z")
        assert hierarchy.load_or_raise(5, 1) == b"z"

    def test_load_returns_zero_for_security_bytes(self):
        hierarchy = MemoryHierarchy()
        hierarchy.store_or_raise(0, bytes([0xFF] * 16))
        hierarchy.cform(
            CformRequest(0, attributes=bv.bit(8), mask=bv.bit(8))
        )
        value, records = hierarchy.load(0, 16)
        assert value[8] == 0  # pre-determined zero, not 0xFF
        assert len(records) == 1


class TestNonTemporalCform:
    def test_does_not_pollute_l1(self):
        hierarchy = MemoryHierarchy()
        hierarchy.cform_non_temporal(CformRequest.set_bytes(0x4000, [1]))
        assert not hierarchy.l1.contains(0x4000)
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(0x4001, 1)

    def test_falls_back_when_line_resident(self):
        hierarchy = MemoryHierarchy()
        hierarchy.store_or_raise(0x4000, b"q")  # line now in L1
        hierarchy.cform_non_temporal(CformRequest.set_bytes(0x4000, [9]))
        assert hierarchy.l1.peek_secmask(0x4000) == bv.bit(9)


class TestConversionAccounting:
    def test_califormed_spills_and_fills_are_counted(self):
        hierarchy = small_hierarchy()
        hierarchy.cform(CformRequest.set_bytes(0, [7]))
        hierarchy.l1.flush()  # spill: bitvector -> sentinel
        assert hierarchy.l1.stats.spills_converted == 1
        hierarchy.load(1, 1)  # fill: sentinel -> bitvector
        assert hierarchy.l1.stats.fills_converted == 1

    def test_natural_lines_are_not_counted(self):
        hierarchy = small_hierarchy()
        hierarchy.store_or_raise(0, b"plain")
        hierarchy.l1.flush()
        assert hierarchy.l1.stats.spills_converted == 0


class TestCycleAccounting:
    def test_l1_hit_cost(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0, 1)  # miss everywhere
        base = hierarchy.total_cycles()
        hierarchy.load(0, 1)  # pure L1 hit
        assert hierarchy.total_cycles() - base == WESTMERE.l1_latency

    def test_extra_latency_increases_cycles(self):
        plain = MemoryHierarchy()
        slow = MemoryHierarchy(WESTMERE.with_extra_latency(1))
        for h in (plain, slow):
            for i in range(32):
                h.load(i * 64, 1)
        assert slow.total_cycles() > plain.total_cycles()


class TestReplayTraceEdgeCases:
    """Defined behaviour for degenerate traces (trace-engine hardening)."""

    def test_empty_trace_returns_zero_without_touching_caches(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.replay_trace([]) == 0
        assert hierarchy.l1.stats.accesses == 0

    def test_single_load_op(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.replay_trace([("L", 0x1000, 8)]) == 0

    def test_single_store_op_on_security_byte_counts_one_violation(self):
        hierarchy = MemoryHierarchy()
        hierarchy.cform(CformRequest.set_bytes(0x2000, [5]))
        assert hierarchy.replay_trace([("S", 0x2005, b"x")]) == 1

    def test_unknown_kind_raises_value_error_with_index(self):
        hierarchy = MemoryHierarchy()
        with pytest.raises(ValueError, match="unknown trace op kind 'X' at index 1"):
            hierarchy.replay_trace([("L", 0, 8), ("X", 0, 8)])

    def test_malformed_short_op_raises_value_error(self):
        hierarchy = MemoryHierarchy()
        with pytest.raises(ValueError, match="malformed trace op at index 0"):
            hierarchy.replay_trace([("L",)])
        with pytest.raises(ValueError, match="load needs a size"):
            hierarchy.replay_trace([("L", 0x1000)])
        with pytest.raises(ValueError, match="store needs data"):
            hierarchy.replay_trace([("S", 0x1000)])

    def test_earlier_ops_apply_before_the_error(self):
        hierarchy = MemoryHierarchy()
        with pytest.raises(ValueError):
            hierarchy.replay_trace([("S", 0x3000, b"ok"), ("X", 0, 0)])
        assert hierarchy.load_or_raise(0x3000, 2) == b"ok"

    def test_zero_and_negative_sizes_keep_defined_behaviour(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.replay_trace([("L", 0x1000, 0)]) == 0
        with pytest.raises(ValueError):
            hierarchy.replay_trace([("L", 0x1000, -4)])


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4096 - 8),
            st.binary(min_size=1, max_size=8),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_hierarchy_behaves_like_flat_memory(writes):
    """Without security bytes the hierarchy is just memory, regardless of
    evictions (small caches force plenty)."""
    hierarchy = small_hierarchy()
    reference = bytearray(4096)
    for address, data in writes:
        hierarchy.store_or_raise(address, data)
        reference[address : address + len(data)] = data
    assert hierarchy.load_or_raise(0, 4096) == bytes(reference)
