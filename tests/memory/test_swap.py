"""Tests for the OS page-swap metadata model (Section 6.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.line_formats import LINE_SIZE, BitvectorLine, SentinelLine
from repro.core.sentinel import decode, encode
from repro.memory.dram import Dram
from repro.memory.swap import (
    LINES_PER_PAGE,
    METADATA_BYTES_PER_PAGE,
    PAGE_SIZE,
    SwapManager,
    page_base,
)


class TestConstants:
    def test_paper_metadata_arithmetic(self):
        # Section 6.3: "the metadata for a 4KB page consumes only 8B".
        assert PAGE_SIZE == 4096
        assert LINES_PER_PAGE == 64
        assert METADATA_BYTES_PER_PAGE == 8

    def test_page_base(self):
        assert page_base(0) == 0
        assert page_base(4095) == 0
        assert page_base(4096) == 4096
        assert page_base(10000) == 8192


def califormed_line(indices, fill=0x41):
    line = BitvectorLine(bytearray([fill] * LINE_SIZE), bv.mask_from_indices(indices))
    return encode(line)


class TestSwapRoundTrip:
    def test_metadata_survives_swap(self):
        dram = Dram()
        dram.write_line(0, califormed_line([5, 6]))
        dram.write_line(128, califormed_line([0]))
        dram.write_line(4096, califormed_line([63]))  # different page
        swap = SwapManager(dram)

        swap.swap_out(0)
        assert swap.is_swapped(100)
        assert dram.drop_line(0) is None  # page really left DRAM
        assert swap.metadata_bytes_in_use() == METADATA_BYTES_PER_PAGE

        swap.swap_in(0)
        assert decode(dram.read_line(0)).secmask == bv.mask_from_indices([5, 6])
        assert decode(dram.read_line(128)).secmask == bv.bit(0)
        assert swap.metadata_bytes_in_use() == 0

    def test_raw_bytes_survive_swap(self):
        dram = Dram()
        payload = SentinelLine(bytes(range(64)), False)
        dram.write_line(64, payload)
        swap = SwapManager(dram)
        swap.swap_out(0)
        swap.swap_in(0)
        assert dram.read_line(64).raw == payload.raw

    def test_double_swap_out_rejected(self):
        swap = SwapManager(Dram())
        swap.swap_out(0)
        with pytest.raises(ValueError):
            swap.swap_out(64)  # same page

    def test_swap_in_unknown_page_rejected(self):
        with pytest.raises(KeyError):
            SwapManager(Dram()).swap_in(0)

    def test_stats(self):
        swap = SwapManager(Dram())
        swap.swap_out(0)
        swap.swap_in(0)
        assert swap.stats.pages_out == 1
        assert swap.stats.pages_in == 1


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=LINES_PER_PAGE - 1),
            st.sets(st.integers(min_value=0, max_value=63), min_size=0, max_size=8),
        ),
        max_size=16,
        unique_by=lambda pair: pair[0],
    )
)
def test_swap_roundtrip_property(lines):
    """Arbitrary mixes of califormed/natural lines survive a swap cycle."""
    dram = Dram()
    expected = {}
    for index, indices in lines:
        line = califormed_line(indices) if indices else SentinelLine.natural()
        dram.write_line(index * LINE_SIZE, line)
        expected[index * LINE_SIZE] = line
    swap = SwapManager(dram)
    swap.swap_out(0)
    swap.swap_in(0)
    for address, line in expected.items():
        got = dram.read_line(address)
        assert got.raw == line.raw
        assert got.califormed == line.califormed
