"""Unit tests for the generic cache machinery."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.line_formats import LINE_SIZE, SentinelLine
from repro.memory.cache import (
    CacheGeometry,
    TagOnlyCache,
    make_sentinel_cache,
)
from repro.memory.dram import Dram


def tiny_geometry(sets=2, ways=2):
    return CacheGeometry(size_bytes=LINE_SIZE * sets * ways, associativity=ways)


def line_with(value):
    return SentinelLine(bytes([value]) + bytes(LINE_SIZE - 1), False)


class TestGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(32 * 1024, 8)
        assert geometry.num_sets == 64

    def test_locate_maps_consecutive_lines_to_consecutive_sets(self):
        geometry = tiny_geometry(sets=4)
        assert geometry.locate(0)[0] == 0
        assert geometry.locate(LINE_SIZE)[0] == 1
        assert geometry.locate(4 * LINE_SIZE) == (0, 1)

    def test_rejects_non_divisible_sizes(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(100, 2)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(LINE_SIZE * 4, 3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(0, 1)


class TestCacheLevelBasics:
    def test_miss_then_hit(self):
        cache = make_sentinel_cache("t", tiny_geometry(), Dram())
        cache.access_line(0, for_write=False)
        cache.access_line(0, for_write=False)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_miss_fetches_from_backing(self):
        dram = Dram()
        dram.write_line(0, line_with(0xAB))
        cache = make_sentinel_cache("t", tiny_geometry(), dram)
        line = cache.access_line(0, for_write=False)
        assert line.raw[0] == 0xAB

    def test_lru_eviction_order(self):
        # 2-way set: touch A, B (same set), then C evicts A (the LRU way).
        geometry = tiny_geometry(sets=1, ways=2)
        cache = make_sentinel_cache("t", geometry, Dram())
        a, b, c = 0, LINE_SIZE, 2 * LINE_SIZE
        cache.access_line(a, for_write=False)
        cache.access_line(b, for_write=False)
        cache.access_line(c, for_write=False)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_touch_refreshes_lru(self):
        geometry = tiny_geometry(sets=1, ways=2)
        cache = make_sentinel_cache("t", geometry, Dram())
        a, b, c = 0, LINE_SIZE, 2 * LINE_SIZE
        cache.access_line(a, for_write=False)
        cache.access_line(b, for_write=False)
        cache.access_line(a, for_write=False)  # A becomes MRU
        cache.access_line(c, for_write=False)  # evicts B
        assert cache.contains(a)
        assert not cache.contains(b)


class TestWriteBack:
    def test_clean_eviction_writes_nothing(self):
        dram = Dram()
        geometry = tiny_geometry(sets=1, ways=1)
        cache = make_sentinel_cache("t", geometry, dram)
        cache.access_line(0, for_write=False)
        cache.access_line(LINE_SIZE, for_write=False)  # evicts clean line 0
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        dram = Dram()
        geometry = tiny_geometry(sets=1, ways=1)
        cache = make_sentinel_cache("t", geometry, dram)
        cache.write_line(0, line_with(0x5A))
        cache.access_line(LINE_SIZE, for_write=False)  # evicts dirty line 0
        assert cache.stats.writebacks == 1
        assert dram.read_line(0).raw[0] == 0x5A

    def test_flush_writes_all_dirty(self):
        dram = Dram()
        cache = make_sentinel_cache("t", tiny_geometry(), dram)
        cache.write_line(0, line_with(1))
        cache.write_line(LINE_SIZE, line_with(2))
        cache.flush()
        assert cache.resident_line_count() == 0
        assert dram.read_line(0).raw[0] == 1
        assert dram.read_line(LINE_SIZE).raw[0] == 2

    def test_eviction_address_reconstruction(self):
        # A line far into the address space must write back to the right
        # place (tag/set reconstruction).
        dram = Dram()
        geometry = tiny_geometry(sets=2, ways=1)
        cache = make_sentinel_cache("t", geometry, dram)
        far = 1000 * LINE_SIZE * geometry.num_sets
        cache.write_line(far, line_with(0x77))
        cache.flush()
        assert dram.read_line(far).raw[0] == 0x77


class TestLevelStacking:
    def test_two_level_read_through(self):
        dram = Dram()
        dram.write_line(0, line_with(0xCD))
        l3 = make_sentinel_cache("L3", tiny_geometry(4, 4), dram)
        l2 = make_sentinel_cache("L2", tiny_geometry(2, 2), l3)
        assert l2.read_line(0).raw[0] == 0xCD
        assert l3.stats.misses == 1
        assert l2.read_line(0).raw[0] == 0xCD
        assert l3.stats.accesses == 1  # second read hits in L2


class TestTagOnlyCache:
    def test_counts_match_functional_cache(self):
        geometry = tiny_geometry(sets=2, ways=2)
        functional = make_sentinel_cache("f", geometry, Dram())
        tag_only = TagOnlyCache(geometry)
        addresses = [0, 64, 128, 0, 4096, 64, 8192, 12288, 0, 64]
        for address in addresses:
            functional.access_line(address, for_write=False)
            tag_only.access(address)
        assert tag_only.hits == functional.stats.hits
        assert tag_only.misses == functional.stats.misses

    def test_miss_rate(self):
        cache = TagOnlyCache(tiny_geometry())
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5
