"""Tests for the multi-core tag hierarchy (private ladders + shared L3)."""

import pytest

from repro.memory.cache import CacheGeometry, TagOnlyCache
from repro.memory.hierarchy import WESTMERE, HierarchyConfig, amat_cycles
from repro.memory.multicore import MultiCoreHierarchy, SharedL3

#: A tiny geometry so eviction pressure is cheap to provoke.
TINY = HierarchyConfig(
    l1_geometry=CacheGeometry(4 * 64, 2),
    l2_geometry=CacheGeometry(8 * 64, 2),
    l3_geometry=CacheGeometry(16 * 64, 4),
)


def test_one_core_equals_single_ladder():
    """A 1-core hierarchy is the plain L1→L2→L3 ladder."""
    multi = MultiCoreHierarchy(TINY, cores=1)
    l1 = TagOnlyCache(TINY.l1_geometry)
    l2 = TagOnlyCache(TINY.l2_geometry)
    l3 = TagOnlyCache(TINY.l3_geometry)
    addresses = [(i * 37 % 64) * 64 for i in range(500)]
    for address in addresses:
        multi.access(0, address)
        if not l1.access(address):
            if not l2.access(address):
                l3.access(address)
    events = multi.core_events(0)
    assert events.l1_accesses == l1.accesses
    assert events.l1_misses == l1.misses
    assert events.l2_misses == l2.misses
    assert events.l3_misses == l3.misses
    assert multi.core_cycles(0) == amat_cycles(
        TINY, l1.accesses, l1.misses, l2.misses, l3.misses
    )


def test_private_levels_are_isolated_but_l3_is_shared():
    multi = MultiCoreHierarchy(TINY, cores=2)
    # Core 0 touches a line twice: second touch is a private L1 hit.
    multi.access(0, 0x1000)
    multi.access(0, 0x1000)
    # Core 1 touching the same address misses privately (its own L1/L2
    # are cold) but hits the shared L3, which core 0 already filled.
    multi.access(1, 0x1000)
    assert multi.core_events(0).l1_misses == 1
    assert multi.core_events(1).l1_misses == 1  # not filtered by core 0
    assert multi.core_events(0).l3_misses == 1  # core 0 paid the fill
    assert multi.core_events(1).l3_misses == 0  # core 1 rode the share


def test_shared_l3_attribution_sums_to_cache_totals():
    multi = MultiCoreHierarchy(TINY, cores=3)
    for i in range(300):
        multi.access(i % 3, (i * 7919) % (64 * 64) * 64)
    shared = multi.shared_l3
    assert sum(shared.accesses) == shared.cache.accesses
    assert sum(shared.misses) == shared.cache.misses
    merged = multi.merged_events()
    assert merged.l2_misses == shared.cache.accesses
    assert merged.l3_misses == shared.cache.misses


def test_reset_core_counters_keeps_contents_warm():
    multi = MultiCoreHierarchy(TINY, cores=2)
    multi.access(0, 0x2000)
    multi.reset_core_counters(0)
    assert multi.core_events(0).l1_accesses == 0
    assert multi.core_events(0).l3_misses == 0
    # Contents stayed warm: the line is still an L1 hit.
    multi.access(0, 0x2000)
    events = multi.core_events(0)
    assert events.l1_accesses == 1
    assert events.l1_misses == 0


def test_total_cycles_is_sum_of_core_cycles():
    multi = MultiCoreHierarchy(WESTMERE, cores=2)
    for i in range(100):
        multi.access(i % 2, i * 64)
    assert multi.total_cycles() == multi.core_cycles(0) + multi.core_cycles(1)


def test_invalid_core_counts_rejected():
    with pytest.raises(ValueError):
        MultiCoreHierarchy(TINY, cores=0)
    with pytest.raises(ValueError):
        SharedL3(TINY, cores=-1)
