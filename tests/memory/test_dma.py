"""Tests for the DMA bypass model (Section 7.2 heterogeneous attacks)."""

from repro.core.cform import CformRequest
from repro.memory.dma import DmaEngine
from repro.memory.hierarchy import MemoryHierarchy


def califormed_dram():
    hierarchy = MemoryHierarchy()
    hierarchy.store_or_raise(0x2000, bytes([0xAA] * 16))
    hierarchy.cform(CformRequest.set_bytes(0x2000, [4, 5]))
    hierarchy.flush_all()
    return hierarchy


class TestNaiveDma:
    def test_bypasses_detection(self):
        hierarchy = califormed_dram()
        engine = DmaEngine(hierarchy.dram, respects_califorms=False)
        transfer = engine.read(0x2000, 16)
        assert transfer.violations == []  # the Section 7.2 hole

    def test_leaks_sentinel_format(self):
        hierarchy = califormed_dram()
        engine = DmaEngine(hierarchy.dram, respects_califorms=False)
        transfer = engine.read(0x2000, 16)
        assert transfer.leaked_format_bytes == 16
        # Raw bytes are the *encoded* line: byte 0 is the header, not 0xAA.
        assert transfer.data[0] != 0xAA

    def test_uncaliformed_lines_leak_nothing(self):
        hierarchy = MemoryHierarchy()
        hierarchy.store_or_raise(0x3000, b"plain data here!")
        hierarchy.flush_all()
        engine = DmaEngine(hierarchy.dram, respects_califorms=False)
        transfer = engine.read(0x3000, 16)
        assert transfer.data == b"plain data here!"
        assert transfer.leaked_format_bytes == 0


class TestAwareDma:
    def test_detects_security_byte_reads(self):
        hierarchy = califormed_dram()
        engine = DmaEngine(hierarchy.dram, respects_califorms=True)
        transfer = engine.read(0x2000, 16)
        assert len(transfer.violations) == 1
        assert transfer.violations[0].byte_indices == (4, 5)

    def test_returns_decoded_view(self):
        hierarchy = califormed_dram()
        engine = DmaEngine(hierarchy.dram, respects_califorms=True)
        transfer = engine.read(0x2000, 16)
        assert transfer.data[0] == 0xAA  # natural data restored
        assert transfer.data[4] == 0  # security bytes read as zero
        assert transfer.leaked_format_bytes == 0

    def test_clean_region_reads_clean(self):
        hierarchy = califormed_dram()
        engine = DmaEngine(hierarchy.dram, respects_califorms=True)
        transfer = engine.read(0x2000 + 8, 8)
        assert transfer.violations == []
        assert transfer.data == bytes([0xAA] * 8)

    def test_cross_line_transfer(self):
        hierarchy = califormed_dram()
        hierarchy.store_or_raise(0x2040, b"next line")
        hierarchy.flush_all()
        engine = DmaEngine(hierarchy.dram, respects_califorms=True)
        transfer = engine.read(0x2000 + 56, 16)
        assert transfer.data[8:] == b"next line"[:8]
