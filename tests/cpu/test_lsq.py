"""Tests for the Section 5.3 LSQ rules: CFORM never forwards, marks faults."""

import pytest

from repro.core.cform import CformRequest
from repro.core.exceptions import AccessKind
from repro.cpu.lsq import LoadStoreQueue
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def lsq():
    return LoadStoreQueue(MemoryHierarchy())


class TestPlainForwarding:
    def test_store_forwards_to_younger_load(self, lsq):
        lsq.issue_store(0x100, b"\xaa\xbb")
        result = lsq.issue_load(0x100, 2)
        assert result.value == b"\xaa\xbb"
        assert result.forwarded_bytes == 2
        assert result.record is None

    def test_partial_overlap_forwards_partially(self, lsq):
        lsq.issue_store(0x102, b"\xcc")
        result = lsq.issue_load(0x100, 4)
        assert result.value == b"\x00\x00\xcc\x00"
        assert result.forwarded_bytes == 1

    def test_youngest_store_wins(self, lsq):
        lsq.issue_store(0x100, b"\x01")
        lsq.issue_store(0x100, b"\x02")
        assert lsq.issue_load(0x100, 1).value == b"\x02"

    def test_load_with_no_match_reads_memory(self, lsq):
        lsq.hierarchy.store_or_raise(0x200, b"mem")
        result = lsq.issue_load(0x200, 3)
        assert result.value == b"mem"
        assert result.forwarded_bytes == 0


class TestCformRules:
    def test_cform_never_forwards_returns_zero(self, lsq):
        # Underlying memory holds non-zero data; CFORM in flight for byte 0.
        lsq.hierarchy.store_or_raise(0x140, b"\xff")
        lsq.issue_cform(CformRequest.set_bytes(0x140, [0]))
        result = lsq.issue_load(0x140, 1)
        assert result.value == b"\x00"  # zero, not 0xff, not "the CFORM value"
        assert result.cform_match
        assert result.record is not None
        assert result.record.kind is AccessKind.LOAD
        assert "in-flight CFORM" in result.record.detail

    def test_cform_match_is_confirmed_by_mask(self, lsq):
        # Same line, but the CFORM mask does not cover the loaded byte:
        # the line-address match is rejected by the mask confirmation.
        lsq.hierarchy.store_or_raise(0x141, b"\x7f")
        lsq.issue_cform(CformRequest.set_bytes(0x140, [0]))
        result = lsq.issue_load(0x141, 1)
        assert not result.cform_match
        assert result.value == b"\x7f"

    def test_younger_store_marked_on_cform_match(self, lsq):
        lsq.issue_cform(CformRequest.set_bytes(0x140, [2]))
        record = lsq.check_store_against_cforms(0x142, b"z")
        assert record is not None
        assert record.kind is AccessKind.STORE

    def test_store_not_marked_without_mask_overlap(self, lsq):
        lsq.issue_cform(CformRequest.set_bytes(0x140, [2]))
        assert lsq.check_store_against_cforms(0x143, b"z") is None

    def test_different_line_no_match(self, lsq):
        lsq.issue_cform(CformRequest.set_bytes(0x140, [0]))
        result = lsq.issue_load(0x180, 1)
        assert not result.cform_match


class TestCommit:
    def test_commit_applies_in_program_order(self, lsq):
        lsq.issue_store(0x100, b"\x01")
        lsq.issue_store(0x100, b"\x02")
        lsq.drain()
        assert lsq.hierarchy.load_or_raise(0x100, 1) == b"\x02"

    def test_commit_oldest_pops_one(self, lsq):
        lsq.issue_store(0x100, b"\x01")
        lsq.issue_store(0x104, b"\x02")
        lsq.commit_oldest()
        assert len(lsq) == 1
        assert lsq.hierarchy.load_or_raise(0x100, 1) == b"\x01"

    def test_commit_empty_raises(self, lsq):
        with pytest.raises(IndexError):
            lsq.commit_oldest()

    def test_cform_commit_blacklists_memory(self, lsq):
        lsq.issue_cform(CformRequest.set_bytes(0x140, [1]))
        lsq.drain()
        _, records = lsq.hierarchy.load(0x141, 1)
        assert len(records) == 1

    def test_store_to_blacklisted_memory_reports_at_commit(self, lsq):
        lsq.hierarchy.cform(CformRequest.set_bytes(0x1C0, [0]))
        lsq.issue_store(0x1C0, b"!")
        records = lsq.drain()
        assert len(records) == 1
        assert records[0].kind is AccessKind.STORE
