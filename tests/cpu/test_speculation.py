"""Tests for the speculative side-channel model (Section 7.2)."""

import pytest

from repro.core.cform import CformRequest
from repro.cpu.speculation import (
    SpeculativeWindow,
    padding_probe_attack,
)
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    h = MemoryHierarchy()
    h.store_or_raise(0x1000, bytes([0x55] * 32))
    h.cform(CformRequest.set_bytes(0x1000, [10, 11]))
    return h


class TestSpeculativeWindow:
    def test_security_byte_reads_zero_without_fault(self, hierarchy):
        window = SpeculativeWindow(hierarchy)
        value = window.load(0x1000 + 10, 1)
        assert value == b"\x00"  # pre-determined zero, no exception raised

    def test_regular_byte_reads_data(self, hierarchy):
        window = SpeculativeWindow(hierarchy)
        assert window.load(0x1000, 1) == b"\x55"

    def test_squash_discards_pending_faults(self, hierarchy):
        window = SpeculativeWindow(hierarchy)
        window.load(0x1000 + 10, 1)
        assert window.squash() == 1
        assert window.commit() == []  # nothing left to fault

    def test_commit_delivers_precise_faults(self, hierarchy):
        window = SpeculativeWindow(hierarchy)
        window.load(0x1000 + 10, 1)
        records = window.commit()
        assert len(records) == 1
        assert records[0].byte_indices == (10,)

    def test_clean_commit_is_silent(self, hierarchy):
        window = SpeculativeWindow(hierarchy)
        window.load(0x1000, 4)
        assert window.commit() == []

    def test_window_depth_bounded(self, hierarchy):
        window = SpeculativeWindow(hierarchy, depth=2)
        window.load(0x1000, 1)
        window.load(0x1001, 1)
        with pytest.raises(RuntimeError):
            window.load(0x1002, 1)


class TestPaddingProbeAttack:
    """The exact scenario of Section 7.2's side-channel discussion."""

    def test_zero_on_free_closes_the_channel(self, hierarchy):
        result = padding_probe_attack(
            hierarchy,
            suspected_offsets=[8, 9, 10, 11, 12],
            base_address=0x1000,
            previous_contents_nonzero=True,
            zero_on_free=True,
        )
        assert result.zero_reads == 2  # the two security bytes read zero
        assert not result.information_leaked

    def test_without_zeroing_the_attack_works(self, hierarchy):
        result = padding_probe_attack(
            hierarchy,
            suspected_offsets=[8, 9, 10, 11, 12],
            base_address=0x1000,
            previous_contents_nonzero=True,
            zero_on_free=False,
        )
        assert result.inferred_security_bytes == 2  # the leak the paper fixes
        assert result.information_leaked

    def test_no_faults_ever_observed_speculatively(self, hierarchy):
        for zero_on_free in (True, False):
            result = padding_probe_attack(
                hierarchy,
                suspected_offsets=[10],
                base_address=0x1000,
                previous_contents_nonzero=True,
                zero_on_free=zero_on_free,
            )
            assert result.faults_observed == 0

    def test_unknown_previous_contents_leak_nothing(self, hierarchy):
        result = padding_probe_attack(
            hierarchy,
            suspected_offsets=[10, 11],
            base_address=0x1000,
            previous_contents_nonzero=False,
            zero_on_free=False,
        )
        assert not result.information_leaked
