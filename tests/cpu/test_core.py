"""Tests for the functional CPU, exception delivery and whitelisting."""

import pytest

from repro.core.cform import CformRequest
from repro.core.exceptions import CformUsageError, SecurityByteAccess
from repro.cpu.core import Cpu, ExceptionMaskRegisters
from repro.cpu.isa import Program, alu, cform, load, store


@pytest.fixture
def cpu():
    return Cpu()


class TestBasicExecution:
    def test_store_then_load(self, cpu):
        cpu.execute(store(0x100, b"hi"))
        assert cpu.execute(load(0x100, 2)) == b"hi"

    def test_counters(self, cpu):
        program = Program()
        program.extend(
            [store(0, b"a"), load(0, 1), alu(5), cform(CformRequest.set_bytes(64, [0]))]
        )
        counters = cpu.run(program)
        assert counters.instructions == 8
        assert counters.loads == 1
        assert counters.stores == 1
        assert counters.cforms == 1
        assert counters.alu_ops == 5


class TestExceptionDelivery:
    def test_load_violation_raises_precisely(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with pytest.raises(SecurityByteAccess) as excinfo:
            cpu.execute(load(3, 1))
        assert excinfo.value.address == 3
        assert cpu.counters.exceptions_raised == 1

    def test_store_violation_raises(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with pytest.raises(SecurityByteAccess):
            cpu.execute(store(3, b"x"))

    def test_cform_misuse_raises(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with pytest.raises(CformUsageError):
            cpu.execute(cform(CformRequest.set_bytes(0, [3])))


class TestWhitelisting:
    def test_whitelisted_region_suppresses(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with cpu.whitelisted() as masks:
            value = cpu.execute(load(0, 8))  # crosses the security byte
        assert value[3] == 0
        assert cpu.counters.exceptions_suppressed == 1
        assert len(masks.suppressed) == 1

    def test_exception_resumes_after_region(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with cpu.whitelisted():
            cpu.execute(load(3, 1))
        with pytest.raises(SecurityByteAccess):
            cpu.execute(load(3, 1))

    def test_nested_whitelists(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with cpu.whitelisted():
            with cpu.whitelisted():
                cpu.execute(load(3, 1))
            cpu.execute(load(3, 1))  # still masked at depth 1
        assert cpu.counters.exceptions_suppressed == 2

    def test_whitelisted_cform_misuse_suppressed(self, cpu):
        cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        with cpu.whitelisted():
            cpu.execute(cform(CformRequest.set_bytes(0, [3])))
        assert cpu.counters.exceptions_suppressed == 1

    def test_mask_underflow_rejected(self):
        masks = ExceptionMaskRegisters()
        with pytest.raises(RuntimeError):
            masks.exit_whitelist()

    def test_whitelist_restored_after_exception(self, cpu):
        # The context manager must unwind the mask even if user code raises.
        with pytest.raises(RuntimeError):
            with cpu.whitelisted():
                raise RuntimeError("user error")
        assert not cpu.masks.masked


class TestTemporalSemantics:
    def test_freed_then_califormed_memory_traps(self, cpu):
        """The clean-before-use discipline: freed region stays blacklisted."""
        cpu.execute(store(0x200, b"live"))
        cpu.execute(
            cform(CformRequest.set_bytes(0x200, [0, 1, 2, 3]))
        )  # "free" blacklists it
        with pytest.raises(SecurityByteAccess):
            cpu.execute(load(0x200, 4))  # use-after-free detected
