"""Unit tests for the instruction forms and Program container."""

import pytest

from repro.core.cform import CformRequest
from repro.cpu.isa import Opcode, Program, alu, cform, load, nop, store


class TestFactories:
    def test_load(self):
        instruction = load(0x100, 8)
        assert instruction.opcode is Opcode.LOAD
        assert instruction.address == 0x100
        assert instruction.size == 8
        assert instruction.is_memory

    def test_load_rejects_zero_size(self):
        with pytest.raises(ValueError):
            load(0, 0)

    def test_store_copies_data(self):
        data = bytearray(b"ab")
        instruction = store(0, data)
        data[0] = 0
        assert instruction.data == b"ab"

    def test_store_rejects_empty(self):
        with pytest.raises(ValueError):
            store(0, b"")

    def test_cform_records_line_address(self):
        request = CformRequest.set_bytes(128, [1])
        instruction = cform(request)
        assert instruction.address == 128
        assert instruction.is_memory

    def test_alu_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            alu(0)

    def test_nop_is_not_memory(self):
        assert not nop().is_memory


class TestProgram:
    def test_counts(self):
        program = Program()
        program.append(load(0, 1))
        program.append(store(0, b"x"))
        program.append(alu(10))
        program.append(cform(CformRequest.set_bytes(0, [1])))
        assert len(program) == 4
        assert program.instruction_count() == 13  # 1 + 1 + 10 + 1
        assert program.memory_operation_count() == 3
        assert program.cform_count() == 1

    def test_extend_and_iter(self):
        program = Program()
        program.extend([nop(), nop()])
        assert [i.opcode for i in program] == [Opcode.NOP, Opcode.NOP]
