"""Tests for the Appendix B SIMD/vector load alternatives."""

import pytest

from repro.core.cform import CformRequest
from repro.core.exceptions import SecurityByteAccess
from repro.cpu.vector import VectorPolicy, VectorRegister, VectorUnit
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    h = MemoryHierarchy()
    h.store_or_raise(0x1000, bytes(range(64)))
    # One security byte inside lane 2 (bytes 16..23) of a 64B vector.
    h.cform(CformRequest.set_bytes(0x1000, [18]))
    return h


class TestPreciseGather:
    def test_clean_gather_succeeds(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PRECISE)
        register = unit.load(0x1000, 64, element_mask=0b11)  # lanes 0-1 only
        assert register.data[:16] == bytes(range(16))
        assert register.poison == 0

    def test_disabled_lane_does_not_fault(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PRECISE)
        # lane 2 (with the security byte) is masked off: no exception.
        unit.load(0x1000, 64, element_mask=0b11111011)

    def test_enabled_lane_faults(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PRECISE)
        with pytest.raises(SecurityByteAccess):
            unit.load(0x1000, 64, element_mask=0b100)


class TestFaultOnAny:
    def test_faults_even_for_disabled_lane(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.FAULT_ON_ANY)
        with pytest.raises(SecurityByteAccess):
            unit.load(0x1000, 64, element_mask=0b11)  # lane 2 not wanted
        assert unit.false_positive_candidates == 1

    def test_true_positive_not_counted_as_false(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.FAULT_ON_ANY)
        with pytest.raises(SecurityByteAccess):
            unit.load(0x1000, 64)  # all lanes wanted: genuine detection
        assert unit.false_positive_candidates == 0

    def test_clean_load(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.FAULT_ON_ANY)
        register = unit.load(0x1000 + 32, 32)
        assert register.data == bytes(range(32, 64))


class TestPropagate:
    def test_load_never_faults(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PROPAGATE)
        register = unit.load(0x1000, 64)
        assert register.poison != 0

    def test_poisoned_byte_reads_zero(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PROPAGATE)
        register = unit.load(0x1000, 64)
        assert register.data[18] == 0  # speculative-safety zero

    def test_consuming_clean_lane_succeeds(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PROPAGATE)
        register = unit.load(0x1000, 64)
        assert register.lane(0) == bytes(range(8))

    def test_consuming_poisoned_lane_faults(self, hierarchy):
        unit = VectorUnit(hierarchy, VectorPolicy.PROPAGATE)
        register = unit.load(0x1000, 64)
        with pytest.raises(SecurityByteAccess):
            register.lane(2)  # bytes 16..23 include the security byte

    def test_lane_bounds_checked(self):
        register = VectorRegister(bytes(16), 0)
        with pytest.raises(IndexError):
            register.lane(2)


class TestValidation:
    def test_register_width_validated(self):
        with pytest.raises(ValueError):
            VectorUnit(MemoryHierarchy(), register_bytes=12)

    def test_overwide_load_rejected(self, hierarchy):
        unit = VectorUnit(hierarchy, register_bytes=32)
        with pytest.raises(ValueError):
            unit.load(0x1000, 64)
