"""Tests for the analytical pipeline timing model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.cpu.pipeline import MemoryEventCounts, PipelineModel
from repro.memory.hierarchy import WESTMERE


def events(l1=1000, m1=100, m2=10, m3=1):
    return MemoryEventCounts(l1, m1, m2, m3)


class TestValidation:
    def test_rejects_increasing_counts(self):
        with pytest.raises(ConfigurationError):
            MemoryEventCounts(10, 20, 0, 0)
        with pytest.raises(ConfigurationError):
            MemoryEventCounts(10, 5, 6, 0)

    def test_rejects_bad_model_params(self):
        with pytest.raises(ConfigurationError):
            PipelineModel(WESTMERE, base_cpi=0)
        with pytest.raises(ConfigurationError):
            PipelineModel(WESTMERE, overlap=0.5)


class TestCycles:
    def test_no_misses_means_no_stalls(self):
        model = PipelineModel(WESTMERE)
        assert model.memory_stall_cycles(events(m1=0, m2=0, m3=0)) == 0

    def test_stall_composition(self):
        model = PipelineModel(WESTMERE, overlap=1.0)
        stalls = model.memory_stall_cycles(events(m1=10, m2=5, m3=2))
        expected = 10 * WESTMERE.l2_latency + 5 * WESTMERE.l3_latency + (
            2 * WESTMERE.dram_latency
        )
        assert stalls == expected

    def test_overlap_divides_stalls(self):
        fast = PipelineModel(WESTMERE, overlap=4.0)
        slow = PipelineModel(WESTMERE, overlap=1.0)
        assert fast.memory_stall_cycles(events()) == pytest.approx(
            slow.memory_stall_cycles(events()) / 4
        )

    def test_extra_latency_inflates_stalls(self):
        plain = PipelineModel(WESTMERE)
        bumped = PipelineModel(WESTMERE.with_extra_latency(1))
        assert bumped.memory_stall_cycles(events()) > plain.memory_stall_cycles(
            events()
        )


class TestSlowdown:
    def test_identical_runs_have_zero_slowdown(self):
        model = PipelineModel(WESTMERE)
        assert model.slowdown(10_000, events(), 10_000, events()) == pytest.approx(0.0)

    def test_extra_instructions_slow_down(self):
        model = PipelineModel(WESTMERE)
        slowdown = model.slowdown(10_000, events(), 11_000, events())
        assert slowdown > 0

    def test_figure10_style_config_change(self):
        model = PipelineModel(WESTMERE)
        slowdown = model.slowdown(
            10_000,
            events(),
            10_000,
            events(),
            variant_config=WESTMERE.with_extra_latency(1),
        )
        assert 0 < slowdown < 0.05  # small single-cycle effect

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_more_misses_never_speed_up(self, instructions, extra_misses):
        model = PipelineModel(WESTMERE)
        base = events(l1=20_000, m1=1000, m2=100, m3=10)
        worse = MemoryEventCounts(20_000, 1000 + extra_misses, 100, 10)
        assert model.slowdown(instructions, base, instructions, worse) >= 0
