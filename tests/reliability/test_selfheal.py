"""Self-healing corpus store: every fault kind, every consumer."""

import json
import multiprocessing
import os
import shutil

import pytest

from repro.corpus.manifest import (
    ManifestEntry,
    ManifestLockTimeout,
    manifest_lock,
    save_manifest,
)
from repro.corpus.store import CorpusStore
from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    inject_store_faults,
)
from repro.reliability.matrix import (
    CORPUS_CASES,
    _corpus_case,
    _matrix_spec,
)
from repro.corpus import __main__ as corpus_cli


@pytest.fixture(scope="module")
def template(tmp_path_factory):
    """A pristine single-object store every test copies, never mutates."""
    root = str(tmp_path_factory.mktemp("pristine") / "corpus")
    digest = CorpusStore(root).ensure(_spec()).entry.digest
    return root, digest


# The tests damage and re-heal the same tiny workload the CI matrix uses.
_spec = _matrix_spec


def _damaged_copy(template, tmp_path, kind, seed=1):
    root, digest = template
    copy = str(tmp_path / "corpus")
    shutil.copytree(root, copy)
    actions = inject_store_faults(
        CorpusStore(copy), FaultPlan((FaultSpec(kind=kind, seed=seed),))
    )
    assert actions, f"{kind} fault did not apply"
    return copy, digest


class TestMatrix:
    """The same cells ``python -m repro faults matrix`` runs in CI."""

    @pytest.mark.parametrize(
        "kind,consumer", CORPUS_CASES, ids=[f"{k}-{c}" for k, c in CORPUS_CASES]
    )
    def test_cell_heals(self, template, tmp_path, kind, consumer):
        root, digest = template
        pristine = str(tmp_path / "pristine")
        shutil.copytree(root, pristine)
        # The matrix spec is the full-length one; rebuilds must use it.
        case = _corpus_case(
            pristine, str(tmp_path / "case"), kind, consumer, digest
        )
        assert case.ok, case.detail


class TestEnsureHeals:
    @pytest.mark.parametrize("kind", ["bitflip", "truncate", "delete"])
    def test_converges_to_pristine_digest(self, template, tmp_path, kind):
        copy, digest = _damaged_copy(template, tmp_path, kind)
        store = CorpusStore(copy)
        resolved = store.ensure(_spec())
        assert resolved.built  # the heal re-recorded
        assert resolved.entry.digest == digest
        assert store.healed == 1
        assert CorpusStore(copy).verify() == []

    def test_damaged_bytes_are_quarantined_not_destroyed(
        self, template, tmp_path
    ):
        copy, digest = _damaged_copy(template, tmp_path, "bitflip")
        store = CorpusStore(copy)
        store.ensure(_spec())
        quarantined = [
            name
            for name in os.listdir(store.quarantine_dir)
            if name.endswith(".trace")
        ]
        assert quarantined == [f"{digest}.trace"]

    def test_heal_ledger_records_scenario_reason_action(
        self, template, tmp_path
    ):
        copy, digest = _damaged_copy(template, tmp_path, "bitflip")
        store = CorpusStore(copy)
        cursor = store.heal_log_size()
        store.ensure(_spec())
        events = store.heal_events(since=cursor)
        assert len(events) == 1
        assert events[0]["scenario"] == _spec().name
        assert events[0]["digest"] == digest
        assert "quarantined" in events[0]["action"]

    def test_verified_cache_skips_rehash_but_not_first_read(
        self, template, tmp_path
    ):
        copy, _digest = _damaged_copy(template, tmp_path, "bitflip")
        store = CorpusStore(copy)
        store.ensure(_spec())  # heals, marks digest verified
        healed_before = store.healed
        store.ensure(_spec())  # cached digest: a pure hit, no re-hash
        assert store.healed == healed_before
        assert store.hits == 1

    def test_verify_reads_off_still_catches_missing_objects(
        self, template, tmp_path
    ):
        copy, _digest = _damaged_copy(template, tmp_path, "delete")
        store = CorpusStore(copy, verify_reads=False)
        resolved = store.ensure(_spec())
        assert resolved.built
        assert store.healed == 1


class TestReplayHeals:
    def test_run_result_survives_damage(self, template, tmp_path):
        copy, _digest = _damaged_copy(template, tmp_path, "truncate")
        result = CorpusStore(copy).run_result(_spec())
        assert result.instructions > 0
        assert CorpusStore(copy).verify() == []

    def test_object_deleted_after_verification(self, template, tmp_path):
        """Damage landing *between* ensure's verification and replay —
        the deleted-mid-walk shape — heals on the replay path."""
        root, _digest = template
        copy = str(tmp_path / "corpus")
        shutil.copytree(root, copy)
        store = CorpusStore(copy)
        resolved = store.ensure(_spec())  # verifies and caches the digest
        os.remove(resolved.path)
        result = store.run_result(_spec())
        assert result.instructions > 0
        assert store.healed == 1
        assert os.path.exists(resolved.path)  # re-recorded in place


class TestManifestHeals:
    def test_corrupt_manifest_file_quarantines_and_starts_empty(
        self, template, tmp_path
    ):
        copy, digest = _damaged_copy(template, tmp_path, "bitflip")
        with open(os.path.join(copy, "manifest.json"), "w") as handle:
            handle.write("{not json")
        store = CorpusStore(copy)
        assert store.manifest().entries == {}
        assert os.path.exists(
            os.path.join(store.quarantine_dir, "manifest.corrupt.json")
        )
        events = store.heal_events()
        assert events[-1]["scenario"] == "<manifest>"
        # Re-ensure rebuilds the binding, converging on the same object.
        assert store.ensure(_spec()).entry.digest == digest

    def test_corrupt_entry_heals_through_ensure(self, template, tmp_path):
        copy, digest = _damaged_copy(template, tmp_path, "corrupt-entry")
        resolved = CorpusStore(copy).ensure(_spec())
        assert resolved.entry.digest == digest
        assert CorpusStore(copy).verify() == []


class TestRepair:
    def test_repair_restores_byte_identically(self, template, tmp_path):
        copy, digest = _damaged_copy(template, tmp_path, "bitflip")
        store = CorpusStore(copy)
        problems, actions = store.repair()
        assert len(problems) == len(actions) == 1
        assert "restored byte-identically" in actions[0]
        assert digest[:12] in actions[0]
        assert store.verify() == []

    def test_orphan_entry_is_dropped_as_unrecoverable(
        self, template, tmp_path
    ):
        copy, _digest = _damaged_copy(template, tmp_path, "orphan-entry")
        store = CorpusStore(copy)
        problems, actions = store.repair()
        assert len(problems) == 1
        assert "no recorded spec" in actions[0]
        assert store.verify() == []

    def test_spec_less_legacy_entry_is_dropped_with_diagnostic(
        self, template, tmp_path
    ):
        # Pre-reliability manifests carry no spec document; a damaged
        # object under one cannot be re-recorded, only dropped.
        copy, _digest = _damaged_copy(template, tmp_path, "bitflip")
        store = CorpusStore(copy)
        with manifest_lock(copy):
            manifest = store.manifest()
            (fingerprint,) = manifest.entries
            entry = manifest.entries[fingerprint]
            manifest.put(
                ManifestEntry(**{**entry.to_dict(), "spec": None})
            )
            save_manifest(manifest, store.manifest_path)
        problems, actions = store.repair()
        assert len(problems) == 1
        assert "no recorded spec" in actions[0]
        assert store.manifest().entries == {}


class TestVerifyCli:
    def test_verify_exits_nonzero_on_damage(self, template, tmp_path, capsys):
        copy, _digest = _damaged_copy(template, tmp_path, "bitflip")
        assert corpus_cli.main(["--root", copy, "verify"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err
        assert "--repair" in captured.err

    def test_verify_repair_heals_and_exits_zero(
        self, template, tmp_path, capsys
    ):
        copy, _digest = _damaged_copy(template, tmp_path, "truncate")
        assert corpus_cli.main(["--root", copy, "verify", "--repair"]) == 0
        captured = capsys.readouterr()
        assert "HEAL" in captured.err
        assert "healed" in captured.out
        assert corpus_cli.main(["--root", copy, "verify"]) == 0

    def test_verify_repair_on_clean_store_is_a_no_op(
        self, template, tmp_path, capsys
    ):
        root, _digest = template
        copy = str(tmp_path / "corpus")
        shutil.copytree(root, copy)
        assert corpus_cli.main(["--root", copy, "verify", "--repair"]) == 0
        assert "0 problem(s) healed" in capsys.readouterr().out


class TestLockTimeout:
    def test_times_out_with_diagnostics_under_contention(self, tmp_path):
        root = str(tmp_path / "corpus")
        os.makedirs(root)
        ready = multiprocessing.Event()
        holder = multiprocessing.Process(
            target=_hold_and_signal, args=(root, 1.5, ready)
        )
        holder.start()
        try:
            assert ready.wait(timeout=10.0), "holder never took the lock"
            with pytest.raises(
                ManifestLockTimeout, match="manifest lock"
            ) as caught:
                with manifest_lock(root, timeout=0.1):
                    pass
            message = str(caught.value)
            assert "manifest.lock" in message
            assert "pid" in message  # the holder breadcrumb
        finally:
            holder.join()

    def test_env_var_overrides_default_timeout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "0.05")
        root = str(tmp_path / "corpus")
        with manifest_lock(root):  # uncontended: env timeout is inert
            pass

    def test_leftover_lock_file_never_blocks(self, template, tmp_path):
        # flock evaporates with its holder: a lock file left by a dead
        # process is inert and acquisition is immediate.
        root, _digest = template
        copy = str(tmp_path / "corpus")
        shutil.copytree(root, copy)
        with open(os.path.join(copy, "manifest.lock"), "w") as handle:
            handle.write("pid 999999")
        with manifest_lock(copy, timeout=0.5):
            pass


def _hold_and_signal(root, seconds, ready):
    from repro.corpus.manifest import manifest_lock as lock
    import time

    with lock(root, timeout=5.0):
        ready.set()
        time.sleep(seconds)
