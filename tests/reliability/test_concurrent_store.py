"""Concurrent corpus access: two processes racing on the same store."""

import glob
import multiprocessing
import os

from repro.corpus.store import CorpusStore
from repro.traces.registry import CORPUS

INSTRUCTIONS = 2_500
SCENARIOS = sorted(CORPUS)[:2]


def _spec(name):
    return CORPUS[name].scaled(INSTRUCTIONS)


def _ensure_in_child(root, name, start, out):
    """Process entry point: ensure one spec, report (digest, built)."""
    start.wait()  # maximise overlap between the racing builders
    resolved = CorpusStore(root).ensure(_spec(name))
    out.put((name, resolved.entry.digest, resolved.built))


def _race(root, names):
    start = multiprocessing.Event()
    out = multiprocessing.Queue()
    workers = [
        multiprocessing.Process(
            target=_ensure_in_child, args=(root, name, start, out)
        )
        for name in names
    ]
    for worker in workers:
        worker.start()
    start.set()
    results = [out.get(timeout=120) for _ in workers]
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0
    return results


class TestConcurrentEnsure:
    def test_same_spec_from_two_processes_converges(self, tmp_path):
        root = str(tmp_path / "corpus")
        name = SCENARIOS[0]
        results = _race(root, [name, name])
        digests = {digest for _name, digest, _built in results}
        assert len(digests) == 1  # deterministic recording converged
        store = CorpusStore(root)
        manifest = store.manifest()
        assert len(manifest.entries) == 1
        (entry,) = manifest.entries.values()
        assert entry.digest in digests
        assert os.path.exists(store.object_path(entry.digest))
        assert store.verify() == []
        # No half-written temp recordings survive the race.
        assert not glob.glob(
            os.path.join(root, "objects", "**", "*.recording"),
            recursive=True,
        )

    def test_different_specs_merge_atomically(self, tmp_path):
        """Two builders writing different entries must both land: the
        read-modify-write manifest update is lock-serialised."""
        root = str(tmp_path / "corpus")
        results = _race(root, SCENARIOS)
        assert all(built for _name, _digest, built in results)
        manifest = CorpusStore(root).manifest()
        assert sorted(
            entry.scenario for entry in manifest.entries.values()
        ) == SCENARIOS

    def test_rerace_after_convergence_is_pure_hits(self, tmp_path):
        root = str(tmp_path / "corpus")
        name = SCENARIOS[0]
        _race(root, [name, name])
        results = _race(root, [name, name])
        assert all(not built for _name, _digest, built in results)


class TestDeletedMidWalk:
    def test_object_deleted_between_resolution_and_replay_heals(
        self, tmp_path
    ):
        root = str(tmp_path / "corpus")
        store = CorpusStore(root)
        spec = _spec(SCENARIOS[0])
        resolved = store.ensure(spec)
        reader = CorpusStore(root)  # separate handle, e.g. another section
        hit = reader.ensure(spec)  # verified: digest now cached
        os.remove(hit.path)  # a third party deletes it mid-walk
        result = reader.run_result(spec)
        assert result.instructions > 0
        assert reader.healed == 1
        assert os.path.exists(resolved.path)  # healed back in place
        events = reader.heal_events()
        assert any("missing" in event["reason"] for event in events)

    def test_damage_surfacing_at_replay_time_heals(
        self, tmp_path, monkeypatch
    ):
        """The narrowest window: the object vanishes *after* ensure's
        verification, so only the replay itself can notice."""
        import repro.corpus.store as store_module

        root = str(tmp_path / "corpus")
        store = CorpusStore(root)
        spec = _spec(SCENARIOS[0])
        resolved = store.ensure(spec)
        real_replay = store_module.replay_timing
        deleted = {"done": False}

        def delete_then_replay(path):
            if not deleted["done"]:
                deleted["done"] = True
                os.remove(path)
            return real_replay(path)

        monkeypatch.setattr(
            store_module, "replay_timing", delete_then_replay
        )
        result = store.run_result(spec)
        assert result.instructions > 0
        assert store.healed == 1
        assert os.path.exists(resolved.path)
        events = store.heal_events()
        assert any(
            "replay failed" in event["reason"] for event in events
        )

    def test_heal_is_visible_to_concurrent_handles(self, tmp_path):
        root = str(tmp_path / "corpus")
        spec = _spec(SCENARIOS[0])
        first = CorpusStore(root)
        digest = first.ensure(spec).entry.digest
        os.remove(first.object_path(digest))
        healed = CorpusStore(root).run_result(spec)
        assert healed.instructions > 0
        # The first handle's next resolution sees the restored binding.
        resolved = first.ensure(spec)
        assert resolved.entry.digest == digest
