"""Fault-tolerant experiment runs: isolation, retry, structured failure."""

import json
import os

import pytest

from repro import cli
from repro.experiments.context import RunContext
from repro.experiments.registry import select
from repro.experiments.results import (
    FAILURE_SCHEMA,
    SectionFailure,
    SectionResult,
)
from repro.experiments.runner import (
    execute_report,
    write_report,
    write_results,
)
from repro.reliability.faults import FaultPlan, FaultSpec

#: Cheap, corpus-free sections the fault cases run against.
SECTIONS = ["table1", "table2"]


def _ctx(plan=None, jobs=1):
    return RunContext.create(
        profile="quick", no_corpus=True, jobs=jobs, faults=plan
    )


def _fail_plan(target="table2", stamp_dir=None):
    return FaultPlan(
        (FaultSpec(kind="fail-section", target=target),),
        stamp_dir=stamp_dir,
    )


class TestSectionIsolation:
    def test_failing_section_becomes_structured_failure(self):
        report = execute_report(select(SECTIONS), _ctx(_fail_plan()))
        ok, failed = report.outcomes
        assert isinstance(ok, SectionResult) and ok.name == "table1"
        assert isinstance(failed, SectionFailure) and failed.name == "table2"
        assert failed.kind == "exception"
        assert failed.attempts == 1  # deterministic: no retry
        assert "injected failure" in failed.error
        assert failed.traceback  # evidence travels with the record
        assert not report.ok

    def test_report_order_is_preserved_around_failures(self):
        report = execute_report(
            select(SECTIONS), _ctx(_fail_plan(target="table1"))
        )
        assert [outcome.name for outcome in report.outcomes] == SECTIONS

    def test_deterministic_failure_is_not_retried(self):
        report = execute_report(select(SECTIONS), _ctx(_fail_plan()))
        assert len(report.incidents) == 1
        incident = report.incidents[0]
        assert incident["section"] == "table2"
        assert incident["kind"] == "exception"
        assert incident["retried"] is False


class TestBoundedRetry:
    def test_inline_worker_crash_is_retried_once(self, tmp_path):
        plan = FaultPlan(
            (FaultSpec(kind="kill-section", target="table1", count=1),),
            stamp_dir=str(tmp_path / "stamps"),
        )
        report = execute_report(select(SECTIONS), _ctx(plan))
        assert report.ok  # the retry recovered the section
        crash = [i for i in report.incidents if i["section"] == "table1"]
        assert len(crash) == 1
        assert crash[0]["kind"] == "infrastructure"
        assert crash[0]["retried"] is True

    def test_persistent_infrastructure_failure_exhausts_attempts(self):
        # Unbounded plan (no stamp dir): the crash fires on the retry
        # too, so the section fails with both attempts on the ledger.
        plan = FaultPlan(
            (FaultSpec(kind="kill-section", target="table1"),)
        )
        report = execute_report(select(SECTIONS), _ctx(plan))
        (failure,) = report.failures
        assert failure.name == "table1"
        assert failure.attempts == 2
        assert len(report.incidents) == 2

    def test_killed_pool_worker_recovers(self, tmp_path):
        plan = FaultPlan(
            (FaultSpec(kind="kill-section", target="table1", count=1),),
            stamp_dir=str(tmp_path / "stamps"),
        )
        report = execute_report(select(SECTIONS), _ctx(plan, jobs=2))
        assert report.ok
        crash = [
            i for i in report.incidents if i["kind"] == "worker-crash"
        ]
        assert crash and all(i["retried"] for i in crash)


class TestArtifacts:
    def test_failed_section_renders_in_report(self, tmp_path):
        report = execute_report(select(SECTIONS), _ctx(_fail_plan()))
        path = str(tmp_path / "EXPERIMENTS.md")
        write_report(report.outcomes, path)
        text = open(path).read()
        assert "SECTION FAILED (exception, 1 attempt(s))" in text
        assert "injected failure" in text

    def test_results_record_failures_and_incidents(self, tmp_path):
        report = execute_report(select(SECTIONS), _ctx(_fail_plan()))
        write_results(
            report.outcomes,
            str(tmp_path),
            profile="quick",
            incidents=report.incidents,
        )
        index = json.load(open(tmp_path / "index.json"))
        statuses = {s["name"]: s["status"] for s in index["sections"]}
        assert statuses == {"table1": "ok", "table2": "failed"}
        (failure,) = index["failures"]
        assert failure["name"] == "table2"
        assert failure["kind"] == "exception"
        assert index["incidents"][0]["section"] == "table2"
        document = json.load(open(tmp_path / "table2.json"))
        assert document["schema"] == FAILURE_SCHEMA

    def test_clean_run_writes_empty_fault_fields(self, tmp_path):
        report = execute_report(select(SECTIONS), _ctx())
        write_results(
            report.outcomes,
            str(tmp_path),
            profile="quick",
            incidents=report.incidents,
        )
        index = json.load(open(tmp_path / "index.json"))
        assert index["failures"] == []
        assert index["incidents"] == []
        assert index["corpus_events"] == []


class TestCli:
    def _run(self, tmp_path, *extra):
        return cli.main(
            [
                "run",
                *SECTIONS,
                "--no-corpus",
                "--output",
                str(tmp_path / "E.md"),
                "--results-dir",
                str(tmp_path / "results"),
                *extra,
            ]
        )

    def test_faulted_run_completes_with_nonzero_exit(
        self, tmp_path, capsys
    ):
        code = self._run(
            tmp_path, "--faults", _fail_plan().to_json()
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED table2 (exception, 1 attempt(s))" in captured.err
        assert "1 of 2 section(s) failed" in captured.err
        index = json.load(open(tmp_path / "results" / "index.json"))
        assert index["failures"][0]["name"] == "table2"
        assert "SECTION FAILED" in open(tmp_path / "E.md").read()

    def test_recovered_fault_exits_zero_but_keeps_the_incident(
        self, tmp_path, capsys
    ):
        plan = FaultPlan(
            (FaultSpec(kind="kill-section", target="table1", count=1),),
            stamp_dir=str(tmp_path / "stamps"),
        )
        assert self._run(tmp_path, "--faults", plan.to_json()) == 0
        capsys.readouterr()
        index = json.load(open(tmp_path / "results" / "index.json"))
        assert index["failures"] == []
        assert index["incidents"][0]["retried"] is True

    def test_second_run_matches_an_unfaulted_run_byte_for_byte(
        self, tmp_path, capsys
    ):
        clean = tmp_path / "clean"
        faulted = tmp_path / "faulted"
        clean.mkdir()
        faulted.mkdir()
        assert self._run(clean) == 0
        assert self._run(
            faulted, "--faults", _fail_plan().to_json()
        ) == 1
        assert self._run(faulted) == 0  # the fault was one run's event
        capsys.readouterr()
        assert (
            (clean / "E.md").read_bytes() == (faulted / "E.md").read_bytes()
        )
        for name in ("table1.json", "table2.json", "index.json"):
            assert (
                (clean / "results" / name).read_bytes()
                == (faulted / "results" / name).read_bytes()
            )

    def test_rejects_malformed_plan(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            self._run(tmp_path, "--faults", "{broken")
        assert "not a valid fault plan" in capsys.readouterr().err
