"""The ``python -m repro faults`` command surface."""

import json

from repro import cli
from repro.corpus.store import CorpusStore
from repro.reliability import __main__ as faults_cli
from repro.reliability.faults import FAULT_KINDS, FaultPlan
from repro.reliability.matrix import _matrix_spec


class TestKindsAndPlan:
    def test_kinds_lists_every_kind(self, capsys):
        assert faults_cli.main(["kinds"]) == 0
        printed = capsys.readouterr().out.split()
        assert printed == list(FAULT_KINDS)

    def test_plan_prints_a_loadable_plan(self, capsys):
        assert (
            faults_cli.main(
                ["plan", "--kind", "bitflip", "--target", "fig/*", "--seed", "9"]
            )
            == 0
        )
        plan = FaultPlan.from_json(capsys.readouterr().out)
        (spec,) = plan.specs
        assert (spec.kind, spec.target, spec.seed) == ("bitflip", "fig/*", 9)


class TestInject:
    def test_inject_then_repair_round_trip(self, tmp_path, capsys):
        root = str(tmp_path / "corpus")
        digest = CorpusStore(root).ensure(_matrix_spec()).entry.digest
        assert (
            faults_cli.main(["inject", "--kind", "bitflip", "--root", root])
            == 0
        )
        assert "flipped bit" in capsys.readouterr().out
        assert CorpusStore(root).verify() != []
        healed = CorpusStore(root)
        healed.repair()
        assert healed.ensure(_matrix_spec()).entry.digest == digest

    def test_inject_on_empty_store_reports_no_match(self, tmp_path, capsys):
        root = str(tmp_path / "corpus")
        assert (
            faults_cli.main(["inject", "--kind", "delete", "--root", root])
            == 1
        )
        assert "nothing matched" in capsys.readouterr().err

    def test_inject_rejects_runner_kinds(self, tmp_path, capsys):
        assert (
            faults_cli.main(
                ["inject", "--kind", "fail-section", "--root", str(tmp_path)]
            )
            == 2
        )
        assert "not a corpus fault" in capsys.readouterr().err


class TestDispatch:
    def test_repro_front_door_delegates(self, capsys):
        assert cli.main(["faults", "kinds"]) == 0
        assert "bitflip" in capsys.readouterr().out

    def test_matrix_writes_json_results(self, tmp_path, capsys):
        # Corpus + lock cells only: the runner cells spin process pools
        # and belong to test_runner_faults/CI, not this unit sweep.
        out = tmp_path / "cases.json"
        code = faults_cli.main(
            [
                "matrix",
                "--root",
                str(tmp_path / "scratch"),
                "--no-runner",
                "--json",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out
        cases = json.load(open(out))
        assert all(case["ok"] for case in cases)
        assert any(case["case"] == "lock/timeout" for case in cases)
