"""Fault-injection layer: plans, budgets, seeded determinism."""

import json
import os

import pytest

from repro.reliability.faults import (
    CORPUS_FAULT_KINDS,
    ENV_FAULTS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedSectionError,
    InjectedWorkerCrash,
    MIN_TRUNCATED_BYTES,
    inject_object_fault,
    merged_plan,
    trip_section_fault,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="set-on-fire")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="bitflip", count=0)

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind

    def test_glob_matching(self):
        spec = FaultSpec(kind="delete", target="fig/*")
        assert spec.matches("fig/milc/full/b0")
        assert not spec.matches("server-churn")

    def test_stamp_key_is_stable_and_spec_sensitive(self):
        spec = FaultSpec(kind="bitflip", seed=3)
        assert spec.stamp_key() == FaultSpec(kind="bitflip", seed=3).stamp_key()
        assert spec.stamp_key() != FaultSpec(kind="bitflip", seed=4).stamp_key()


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            (
                FaultSpec(kind="bitflip", target="fig/*", seed=7),
                FaultSpec(kind="kill-section", target="table1", count=2),
            ),
            stamp_dir=str(tmp_path),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip(self):
        environ: dict[str, str] = {}
        plan = FaultPlan((FaultSpec(kind="delete"),))
        plan.to_env(environ)
        assert json.loads(environ[ENV_FAULTS])  # valid JSON payload
        assert FaultPlan.from_env(environ) == plan
        assert FaultPlan.from_env({}) is None

    def test_claim_budget_via_stamps(self, tmp_path):
        plan = FaultPlan(
            (FaultSpec(kind="fail-section", count=2),),
            stamp_dir=str(tmp_path / "stamps"),
        )
        spec = plan.specs[0]
        assert plan.claim(spec)
        assert plan.claim(spec)
        assert not plan.claim(spec)  # budget of 2 is spent
        # A fresh plan value sharing the stamp dir sees the spent budget.
        assert not FaultPlan.from_json(plan.to_json()).claim(spec)

    def test_no_stamp_dir_means_unbounded(self):
        plan = FaultPlan((FaultSpec(kind="fail-section"),))
        for _ in range(5):
            assert plan.claim(plan.specs[0])

    def test_merged_plan_concatenates_context_and_env(self, tmp_path):
        context = FaultPlan(
            (FaultSpec(kind="fail-section", target="a"),),
            stamp_dir=str(tmp_path / "ctx"),
        )
        environ: dict[str, str] = {}
        FaultPlan(
            (FaultSpec(kind="kill-section", target="b"),),
            stamp_dir=str(tmp_path / "env"),
        ).to_env(environ)
        merged = merged_plan(context.to_json(), environ)
        assert [spec.target for spec in merged.specs] == ["a", "b"]
        assert merged.stamp_dir == context.stamp_dir  # context wins
        assert merged_plan(None, {}) is None
        assert merged_plan(context.to_json(), {}) == context


class TestObjectInjection:
    def _write(self, path, payload=b"x" * 4096):
        path.write_bytes(payload)
        return str(path)

    def test_bitflip_is_deterministic_per_digest_and_seed(self, tmp_path):
        first = self._write(tmp_path / "a.trace")
        second = self._write(tmp_path / "b.trace")
        inject_object_fault(first, "deadbeef", "bitflip", seed=5)
        inject_object_fault(second, "deadbeef", "bitflip", seed=5)
        assert (
            (tmp_path / "a.trace").read_bytes()
            == (tmp_path / "b.trace").read_bytes()
        )
        # ... and exactly one byte differs from the pristine payload.
        damaged = (tmp_path / "a.trace").read_bytes()
        assert sum(byte != ord("x") for byte in damaged) == 1

    def test_truncate_keeps_a_sniffable_prefix(self, tmp_path):
        path = self._write(tmp_path / "a.trace")
        inject_object_fault(path, "deadbeef", "truncate", seed=1)
        size = os.path.getsize(path)
        assert MIN_TRUNCATED_BYTES <= size < 4096

    def test_delete_removes_the_object(self, tmp_path):
        path = self._write(tmp_path / "a.trace")
        inject_object_fault(path, "deadbeef", "delete", seed=0)
        assert not os.path.exists(path)

    def test_rejects_manifest_kinds(self, tmp_path):
        path = self._write(tmp_path / "a.trace")
        with pytest.raises(ValueError, match="not an object fault"):
            inject_object_fault(path, "deadbeef", "corrupt-entry", seed=0)


class TestSectionFaults:
    def test_fail_section_raises_injected_error(self):
        plan = FaultPlan((FaultSpec(kind="fail-section", target="table2"),))
        with pytest.raises(InjectedSectionError, match="table2"):
            trip_section_fault("table2", plan.to_json(), environ={})

    def test_kill_section_inline_degrades_to_worker_crash(self):
        # In the main process a hard exit would kill the run itself, so
        # the inline form raises the infrastructure-class stand-in.
        plan = FaultPlan((FaultSpec(kind="kill-section", target="*"),))
        with pytest.raises(InjectedWorkerCrash):
            trip_section_fault("table1", plan.to_json(), environ={})

    def test_non_matching_sections_run_clean(self):
        plan = FaultPlan((FaultSpec(kind="fail-section", target="table2"),))
        trip_section_fault("table1", plan.to_json(), environ={})

    def test_corpus_kinds_never_trip_sections(self):
        for kind in CORPUS_FAULT_KINDS:
            plan = FaultPlan((FaultSpec(kind=kind, target="*"),))
            trip_section_fault("table1", plan.to_json(), environ={})

    def test_budget_limits_firings(self, tmp_path):
        plan = FaultPlan(
            (FaultSpec(kind="fail-section", target="*", count=1),),
            stamp_dir=str(tmp_path / "stamps"),
        )
        with pytest.raises(InjectedSectionError):
            trip_section_fault("table1", plan.to_json(), environ={})
        trip_section_fault("table1", plan.to_json(), environ={})  # spent

    def test_env_var_activates_without_context(self, tmp_path):
        environ: dict[str, str] = {}
        FaultPlan((FaultSpec(kind="fail-section", target="*"),)).to_env(
            environ
        )
        with pytest.raises(InjectedSectionError):
            trip_section_fault("anything", None, environ=environ)
