"""Tests for the struct corpora behind the Figure 3 census."""

from repro.softstack.ctypes_model import Struct
from repro.softstack.layout import densities, fraction_with_padding, layout_struct
from repro.workloads.structs_corpus import (
    HEAP_TYPE_POOL,
    SPEC_HANDWRITTEN,
    SPEC_PROFILE,
    V8_HANDWRITTEN,
    V8_PROFILE,
    generate_corpus,
    generate_struct,
    spec_corpus,
    v8_corpus,
)
import random


class TestHandwrittenCorpora:
    def test_all_shapes_lay_out(self):
        for struct in SPEC_HANDWRITTEN + V8_HANDWRITTEN:
            layout = layout_struct(struct)
            assert layout.size >= struct.size or layout.size == struct.size
            assert 0 < layout.density <= 1.0

    def test_unique_names(self):
        names = [s.name for s in SPEC_HANDWRITTEN + V8_HANDWRITTEN]
        assert len(names) == len(set(names))

    def test_heap_pool_is_spec_subset(self):
        spec_names = {s.name for s in SPEC_HANDWRITTEN}
        assert all(s.name in spec_names for s in HEAP_TYPE_POOL)
        assert all(s.size <= 512 for s in HEAP_TYPE_POOL)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_corpus(SPEC_PROFILE, 20, seed=1)
        b = generate_corpus(SPEC_PROFILE, 20, seed=1)
        assert [s.fields for s in a] == [s.fields for s in b]

    def test_seeds_differ(self):
        a = generate_corpus(SPEC_PROFILE, 20, seed=1)
        b = generate_corpus(SPEC_PROFILE, 20, seed=2)
        assert [s.fields for s in a] != [s.fields for s in b]

    def test_generated_structs_are_valid(self):
        rng = random.Random(3)
        for index in range(50):
            struct = generate_struct(V8_PROFILE, rng, index)
            assert isinstance(struct, Struct)
            layout_struct(struct)  # must not raise

    def test_field_counts_in_range(self):
        for struct in generate_corpus(SPEC_PROFILE, 100, seed=4):
            assert 1 <= len(struct.fields) <= SPEC_PROFILE.max_fields


class TestFigure3Calibration:
    """The headline census numbers the corpora were calibrated against."""

    def test_spec_padded_fraction_near_paper(self):
        fraction = fraction_with_padding(spec_corpus())
        assert abs(fraction - 0.457) < 0.05  # paper: 45.7 %

    def test_v8_padded_fraction_near_paper(self):
        fraction = fraction_with_padding(v8_corpus())
        assert abs(fraction - 0.410) < 0.05  # paper: 41.0 %

    def test_density_histogram_has_dense_peak(self):
        """Figure 3's shape: the largest bin is full density (1.0)."""
        values = densities(spec_corpus())
        dense = sum(1 for v in values if v > 0.95)
        assert dense / len(values) > 0.4

    def test_corpus_sizes(self):
        assert len(spec_corpus()) > 400
        assert len(v8_corpus()) > 400
