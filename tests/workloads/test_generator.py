"""Tests for the benchmark profiles and the trace/timing engine."""

import pytest

from repro.memory.hierarchy import WESTMERE
from repro.softstack.insertion import Policy
from repro.workloads.generator import (
    Scenario,
    build_type_catalog,
    run_trace,
    slowdown,
)
from repro.workloads.specs import (
    FIG10_BENCHMARKS,
    FIG11_BENCHMARKS,
    SPEC_PROFILES,
    profile,
)

QUICK = 20_000  # instructions; tests favour speed over precision


class TestProfiles:
    def test_nineteen_benchmarks(self):
        assert len(FIG10_BENCHMARKS) == 19

    def test_fig11_excludes_three(self):
        assert len(FIG11_BENCHMARKS) == 16
        for name in ("dealII", "omnetpp", "gcc"):
            assert name not in FIG11_BENCHMARKS

    def test_lookup(self):
        assert profile("mcf").name == "mcf"
        with pytest.raises(KeyError):
            profile("quake")

    def test_profile_values_sane(self):
        for p in SPEC_PROFILES.values():
            assert p.heap_kb > 0
            assert 0 < p.mem_ratio < 1
            assert 0 < p.locality_skew <= 1
            assert 0 <= p.scan_fraction <= 1
            assert 0 <= p.stack_fraction < 1
            assert 0 <= p.struct_fraction <= 1
            assert 0 <= p.ptr_array_fraction <= 1
            assert p.overlap >= 1
            assert p.base_cpi > 0


class TestScenario:
    def test_describe(self):
        assert Scenario.baseline().describe() == "baseline"
        assert Scenario(policy=("fixed", 3)).describe() == "fixed-3B"
        text = Scenario(policy=Policy.FULL, with_cform=True).describe()
        assert "full" in text and "+CFORM" in text


class TestTypeCatalog:
    def test_protected_sizes_never_shrink(self):
        natural = build_type_catalog(Scenario.baseline())
        for policy in (Policy.OPPORTUNISTIC, Policy.FULL, Policy.INTELLIGENT):
            protected = build_type_catalog(Scenario(policy=policy))
            for base, var in zip(natural, protected):
                assert var.size >= base.size

    def test_baseline_never_hooks(self):
        assert all(not info.hooked for info in build_type_catalog(Scenario.baseline()))

    def test_opportunistic_hooks_every_type(self):
        catalog = build_type_catalog(Scenario(policy=Policy.OPPORTUNISTIC))
        assert all(info.hooked for info in catalog)

    def test_intelligent_hooks_only_span_types(self):
        catalog = build_type_catalog(Scenario(policy=Policy.INTELLIGENT))
        for info in catalog:
            assert info.hooked == (info.cform_lines > 0)


class TestRunTrace:
    def test_deterministic(self):
        p = SPEC_PROFILES["hmmer"]
        a = run_trace(p, Scenario.baseline(), instructions=QUICK)
        b = run_trace(p, Scenario.baseline(), instructions=QUICK)
        assert a.events == b.events
        assert a.instructions == b.instructions

    def test_seed_changes_events(self):
        p = SPEC_PROFILES["hmmer"]
        a = run_trace(p, Scenario.baseline(), instructions=QUICK, seed=0)
        b = run_trace(p, Scenario.baseline(), instructions=QUICK, seed=1)
        assert a.events != b.events

    def test_same_logical_work_across_scenarios(self):
        """Scenarios replay the same allocation events (fair comparison)."""
        p = SPEC_PROFILES["gobmk"]
        runs = [
            run_trace(p, scenario, instructions=QUICK)
            for scenario in (
                Scenario.baseline(),
                Scenario(policy=Policy.FULL),
                Scenario(policy=Policy.FULL, with_cform=True),
            )
        ]
        assert len({r.alloc_events for r in runs}) == 1

    def test_baseline_issues_no_cform(self):
        p = SPEC_PROFILES["perlbench"]
        result = run_trace(p, Scenario.baseline(), instructions=QUICK)
        assert result.cform_instructions == 0

    def test_cform_scenario_issues_cforms(self):
        p = SPEC_PROFILES["perlbench"]
        result = run_trace(
            p, Scenario(policy=Policy.FULL, with_cform=True), instructions=QUICK
        )
        assert result.cform_instructions > 0
        assert result.instructions > QUICK

    def test_event_counts_are_consistent(self):
        p = SPEC_PROFILES["astar"]
        events = run_trace(p, Scenario.baseline(), instructions=QUICK).events
        assert events.l1_accesses >= events.l1_misses
        assert events.l1_misses >= events.l2_misses
        assert events.l2_misses >= events.l3_misses


class TestSlowdowns:
    def test_padding_slows_struct_heavy_benchmarks(self):
        value = slowdown(
            SPEC_PROFILES["mcf"], Scenario(policy=Policy.FULL), instructions=50_000
        )
        assert value > 0.05  # mcf is the paper's padding-sensitive outlier

    def test_extra_latency_slows_everything(self):
        for name in ("hmmer", "mcf"):
            value = slowdown(
                SPEC_PROFILES[name],
                Scenario.baseline(),
                instructions=QUICK,
                variant_config=WESTMERE.with_extra_latency(1),
            )
            assert value > 0

    def test_compute_bound_benchmark_barely_notices_padding(self):
        value = slowdown(
            SPEC_PROFILES["lbm"], Scenario(policy=Policy.FULL), instructions=QUICK
        )
        assert abs(value) < 0.02  # raw-buffer heap: policies do not touch it

    def test_cform_adds_over_layout_only(self):
        p = SPEC_PROFILES["gobmk"]
        layout_only = slowdown(
            p, Scenario(policy=Policy.FULL), instructions=50_000
        )
        with_cform = slowdown(
            p, Scenario(policy=Policy.FULL, with_cform=True), instructions=50_000
        )
        assert with_cform > layout_only
