"""The span tracer and the environment-driven runtime switch."""

import json
import os

from repro.telemetry import runtime
from repro.telemetry.spans import (
    NULL_SPAN,
    SPAN_REQUIRED_KEYS,
    SpanTracer,
    validate_span_record,
)


def read_lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestSpanTracer:
    def test_finished_span_lands_as_one_json_line(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "spans.jsonl"))
        span = tracer.start("replay/timing", {"engine": "columnar"})
        span.set("touches", 42)
        tracer.finish(span)
        tracer.close()
        (record,) = read_lines(tracer.path)
        assert record["type"] == "span"
        assert record["name"] == "replay/timing"
        assert record["pid"] == os.getpid()
        assert record["attrs"] == {"engine": "columnar", "touches": 42}
        assert record["duration_s"] >= 0
        assert validate_span_record(record) == []

    def test_nested_spans_carry_parent_ids(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "spans.jsonl"))
        outer = tracer.start("outer", {})
        inner = tracer.start("inner", {})
        tracer.finish(inner)
        tracer.finish(outer)
        tracer.close()
        by_name = {r["name"]: r for r in read_lines(tracer.path)}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]

    def test_validate_rejects_malformed_records(self):
        problems = validate_span_record({"type": "span"})
        # every required key except "type" is reported missing
        assert len(problems) == len(SPAN_REQUIRED_KEYS) - 1
        assert validate_span_record({"type": "metrics"})  # wrong type
        bad_duration = {
            "type": "span", "name": "x", "pid": 1, "id": 1,
            "parent": None, "ts": 0.0, "duration_s": "fast", "attrs": {},
        }
        assert validate_span_record(bad_duration)

    def test_null_span_swallows_set(self):
        NULL_SPAN.set("anything", 1)  # must not raise


class TestRuntimeSwitch:
    def test_disabled_by_default(self):
        assert runtime.active() is None
        with runtime.span("replay/timing") as span:
            assert span is NULL_SPAN

    def test_configure_activates_and_shutdown_deactivates(self, tmp_path):
        handle = runtime.configure(str(tmp_path / "tel"))
        assert runtime.active() is handle
        assert os.environ[runtime.ENV_DIR] == handle.directory
        runtime.shutdown()
        assert runtime.active() is None
        assert runtime.ENV_DIR not in os.environ

    def test_active_resolves_env_changes_without_cache_invalidation(
        self, tmp_path
    ):
        first = runtime.configure(str(tmp_path / "a"))
        second = runtime.configure(str(tmp_path / "b"))
        assert first is not second
        assert runtime.active() is second

    def test_flush_writes_metric_snapshot_with_monotonic_seq(self, tmp_path):
        handle = runtime.configure(str(tmp_path / "tel"))
        handle.inc("hits_total", 3)
        handle.flush()
        handle.inc("hits_total", 2)
        handle.flush()
        handle.close()
        records = read_lines(
            os.path.join(handle.directory, runtime.SPAN_LOG_NAME)
        )
        snapshots = [r for r in records if r["type"] == "metrics"]
        assert [s["seq"] for s in snapshots] == sorted(
            s["seq"] for s in snapshots
        )
        # Snapshots are cumulative: the last one carries the full count.
        assert snapshots[-1]["metrics"]["counters"]["hits_total"] == 5

    def test_span_scope_writes_through_the_active_handle(self, tmp_path):
        handle = runtime.configure(str(tmp_path / "tel"))
        with runtime.span("corpus/record", scenario="server-churn") as span:
            span.set("records", 7)
        handle.close()
        records = read_lines(
            os.path.join(handle.directory, runtime.SPAN_LOG_NAME)
        )
        (record,) = [r for r in records if r["type"] == "span"]
        assert record["attrs"] == {"scenario": "server-churn", "records": 7}

    def test_fresh_configure_truncates_a_previous_log(self, tmp_path):
        directory = str(tmp_path / "tel")
        handle = runtime.configure(directory)
        with runtime.span("stale"):
            pass
        handle.close()
        runtime.configure(directory, fresh=True)
        runtime.shutdown()
        path = os.path.join(directory, runtime.SPAN_LOG_NAME)
        assert not os.path.exists(path) or not read_lines(path)
