"""Telemetry must never perturb the deterministic artifacts.

The contract this PR-level invariant pins: ``results/<name>.json`` and
``EXPERIMENTS.md`` are byte-identical whether a run carried a telemetry
sidecar or not.  Only ``index.json`` may differ — its observability
stanza (``timing``/``telemetry``) populates on telemetry runs and is
``null`` otherwise — and the ``--check`` gate ignores those keys.
"""

import json
import os

from repro.cli import main
from repro.experiments.runner import INDEX_SCHEMA
from repro.telemetry.export import (
    validate_metrics_document,
    validate_span_log,
)
from repro.telemetry.runtime import ENV_DIR

SECTIONS = ["fig03", "table1"]


def run(tmp_path, tag, *extra):
    base = tmp_path / tag
    base.mkdir(parents=True, exist_ok=True)
    output = base / "EXPERIMENTS.md"
    results = base / "results"
    code = main(
        [
            "run", *SECTIONS, "--no-corpus",
            "--output", str(output),
            "--results-dir", str(results),
            *extra,
        ]
    )
    assert code == 0
    return output, results


def test_results_identical_with_and_without_telemetry(tmp_path):
    output_off, results_off = run(tmp_path, "off")
    output_on, results_on = run(
        tmp_path, "on", "--telemetry", str(tmp_path / "on" / "telemetry"),
    )

    assert output_off.read_bytes() == output_on.read_bytes()
    for name in SECTIONS:
        off = (results_off / f"{name}.json").read_bytes()
        on = (results_on / f"{name}.json").read_bytes()
        assert off == on, f"{name}.json changed under telemetry"


def test_index_observability_stanza(tmp_path):
    _, results_off = run(tmp_path, "off")
    telemetry_dir = str(tmp_path / "on" / "telemetry")
    _, results_on = run(tmp_path, "on", "--telemetry", telemetry_dir)

    off = json.loads((results_off / "index.json").read_text())
    on = json.loads((results_on / "index.json").read_text())
    assert off["schema"] == on["schema"] == INDEX_SCHEMA
    assert off["timing"] is None and off["telemetry"] is None
    assert on["telemetry"] == telemetry_dir
    assert set(on["timing"]) == set(SECTIONS)
    assert all(seconds > 0 for seconds in on["timing"].values())


def test_default_runs_stay_byte_identical_across_invocations(tmp_path):
    _, first = run(tmp_path, "first")
    _, second = run(tmp_path, "second")
    assert (first / "index.json").read_bytes() == (
        second / "index.json"
    ).read_bytes()


def test_telemetry_artifacts_validate_and_env_does_not_leak(tmp_path):
    telemetry_dir = str(tmp_path / "on" / "telemetry")
    run(tmp_path, "on", "--telemetry", telemetry_dir)

    assert ENV_DIR not in os.environ  # the CLI restores the environment
    problems = validate_span_log(os.path.join(telemetry_dir, "spans.jsonl"))
    assert problems == []
    document = json.load(open(os.path.join(telemetry_dir, "metrics.json")))
    assert validate_metrics_document(document) == []
    assert document["spans"], "run produced no spans"
    assert any(
        name.startswith("section/") for name in document["spans"]
    )
    prom = open(os.path.join(telemetry_dir, "metrics.prom")).read()
    assert "# TYPE" in prom
    assert os.path.exists(os.path.join(telemetry_dir, "TELEMETRY.md"))


def test_no_telemetry_vetoes_the_flag(tmp_path):
    telemetry_dir = tmp_path / "veto" / "telemetry"
    _, results = run(
        tmp_path, "veto", "--telemetry", str(telemetry_dir), "--no-telemetry",
    )
    assert not telemetry_dir.exists()
    index = json.loads((results / "index.json").read_text())
    assert index["timing"] is None and index["telemetry"] is None


def test_profile_sections_dumps_pstats(tmp_path):
    telemetry_dir = tmp_path / "prof" / "telemetry"
    run(
        tmp_path, "prof", "--telemetry", str(telemetry_dir),
        "--profile-sections",
    )
    profiles = telemetry_dir / "profiles"
    dumped = {path.name for path in profiles.iterdir()}
    assert {f"{name}.pstats" for name in SECTIONS} <= dumped
    document = json.load(open(telemetry_dir / "metrics.json"))
    assert document["spans"]  # profile records ride the same log
