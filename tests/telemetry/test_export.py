"""Exporters: snapshot merging, metrics.json, Prometheus text, export_run."""

import json
import os

from repro.telemetry.export import (
    METRICS_SCHEMA,
    export_run,
    merge_snapshots,
    metrics_document,
    prometheus_text,
    read_span_log,
    summarize_spans,
    validate_metrics_document,
    validate_span_log,
)
from repro.telemetry.runtime import SPAN_LOG_NAME


def snapshot(pid, seq, counters=None, gauges=None, histograms=None):
    return {
        "type": "metrics",
        "pid": pid,
        "seq": seq,
        "ts": 0.0,
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


def span(name, duration, pid=1, sid=1):
    return {
        "type": "span", "name": name, "pid": pid, "id": sid,
        "parent": None, "ts": 0.0, "duration_s": duration, "attrs": {},
    }


def write_log(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestReadSpanLog:
    def test_keeps_only_the_highest_seq_snapshot_per_pid(self, tmp_path):
        path = str(tmp_path / SPAN_LOG_NAME)
        write_log(path, [
            snapshot(10, 1, {"hits_total": 1}),
            snapshot(10, 3, {"hits_total": 9}),
            snapshot(10, 2, {"hits_total": 5}),
            snapshot(20, 1, {"hits_total": 2}),
        ])
        log = read_span_log(path)
        assert log.snapshots[10]["metrics"]["counters"]["hits_total"] == 9
        assert log.snapshots[20]["metrics"]["counters"]["hits_total"] == 2

    def test_counts_malformed_lines_instead_of_raising(self, tmp_path):
        path = str(tmp_path / SPAN_LOG_NAME)
        with open(path, "w") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"type": "mystery"}) + "\n")
            handle.write(json.dumps(span("ok", 0.1)) + "\n")
        log = read_span_log(path)
        assert log.malformed == 2
        assert len(log.spans) == 1

    def test_missing_log_reads_as_empty(self, tmp_path):
        log = read_span_log(str(tmp_path / "absent.jsonl"))
        assert log.spans == [] and log.snapshots == {}


class TestMergeSnapshots:
    def test_counters_sum_across_processes(self):
        merged = merge_snapshots({
            10: snapshot(10, 1, {"hits_total": 3}),
            20: snapshot(20, 1, {"hits_total": 4}),
        })
        assert merged["counters"]["hits_total"] == 7

    def test_gauges_last_writer_wins_in_pid_order(self):
        merged = merge_snapshots({
            20: snapshot(20, 1, gauges={"jobs": 4}),
            10: snapshot(10, 1, gauges={"jobs": 2}),
        })
        assert merged["gauges"]["jobs"] == 4

    def test_histograms_merge_bucket_wise(self):
        histogram = lambda counts, total, count, low, high: {
            "buckets": [1.0, 5.0], "counts": counts,
            "sum": total, "count": count, "min": low, "max": high,
        }
        merged = merge_snapshots({
            10: snapshot(10, 1, histograms={
                "seconds": histogram([1, 0, 0], 0.5, 1, 0.5, 0.5),
            }),
            20: snapshot(20, 1, histograms={
                "seconds": histogram([0, 1, 1], 9.0, 2, 2.0, 7.0),
            }),
        })
        result = merged["histograms"]["seconds"]
        assert result["counts"] == [1, 1, 1]
        assert result["count"] == 3
        assert result["sum"] == 9.5
        assert (result["min"], result["max"]) == (0.5, 7.0)


class TestMetricsDocument:
    def test_document_validates_and_sorts_series(self, tmp_path):
        path = str(tmp_path / SPAN_LOG_NAME)
        write_log(path, [
            snapshot(10, 1, {"b_total": 1, "a_total": 2}),
            span("replay/timing", 0.25),
            span("replay/timing", 0.75, sid=2),
        ])
        document = metrics_document(read_span_log(path))
        assert validate_metrics_document(document) == []
        assert document["schema"] == METRICS_SCHEMA
        assert list(document["counters"]) == ["a_total", "b_total"]
        row = document["spans"]["replay/timing"]
        assert row["count"] == 2
        assert row["total_s"] == 1.0
        assert row["mean_s"] == 0.5
        assert row["max_s"] == 0.75

    def test_validation_reports_problems(self):
        assert validate_metrics_document({}) != []
        document = {
            "schema": METRICS_SCHEMA, "counters": {}, "gauges": {},
            "spans": {}, "processes": [],
            "histograms": {"h": {"buckets": [1.0], "counts": [1]}},
        }
        problems = validate_metrics_document(document)
        assert any("buckets + 1" in p for p in problems)


class TestPrometheusText:
    def test_counters_gauges_and_histograms_render(self):
        document = {
            "counters": {'decode_records_total{format="v1"}': 12.0},
            "gauges": {"runner_jobs": 4.0},
            "histograms": {
                "section_seconds": {
                    "buckets": [1.0], "counts": [2, 1],
                    "sum": 3.5, "count": 3, "min": 0.1, "max": 2.0,
                },
            },
        }
        text = prometheus_text(document)
        assert "# TYPE decode_records_total counter" in text
        assert 'decode_records_total{format="v1"} 12' in text
        assert "# TYPE runner_jobs gauge" in text
        assert "runner_jobs 4" in text
        assert "# TYPE section_seconds histogram" in text
        assert 'section_seconds_bucket{le="1"} 2' in text
        # cumulative: the +Inf bucket carries the full count
        assert 'section_seconds_bucket{le="+Inf"} 3' in text
        assert "section_seconds_sum 3.5" in text
        assert "section_seconds_count 3" in text

    def test_empty_document_renders_empty(self):
        assert prometheus_text({}) == ""


class TestExportRun:
    def test_writes_the_three_artifacts(self, tmp_path):
        directory = str(tmp_path / "tel")
        os.makedirs(directory)
        write_log(os.path.join(directory, SPAN_LOG_NAME), [
            snapshot(10, 1, {"hits_total": 1}),
            span("section/fig03", 0.01),
        ])
        paths = export_run(directory)
        document = json.load(open(paths["metrics"]))
        assert validate_metrics_document(document) == []
        assert "# TYPE hits_total counter" in open(paths["prometheus"]).read()
        summary = open(paths["summary"]).read()
        assert "section/fig03" in summary
        assert "hits_total" in summary

    def test_validate_span_log_flags_bad_records(self, tmp_path):
        path = str(tmp_path / SPAN_LOG_NAME)
        bad = span("x", 0.1)
        del bad["pid"]
        write_log(path, [bad])
        assert validate_span_log(path) != []


class TestSummarizeSpans:
    def test_empty_input_is_empty(self):
        assert summarize_spans([]) == {}
