"""End-to-end instrumentation: real decode/replay/corpus work under an
active telemetry sink produces the documented counters and spans."""

import os

from repro.corpus.store import CorpusStore
from repro.telemetry import runtime
from repro.telemetry.export import metrics_document, read_span_log
from repro.traces.recorder import record_spec
from repro.traces.registry import CORPUS
from repro.traces.replayer import replay_timing, resolve_engine

INSTRUCTIONS = 2000


def exported(handle):
    handle.flush()
    return metrics_document(
        read_span_log(os.path.join(handle.directory, runtime.SPAN_LOG_NAME))
    )


def test_replay_emits_decode_kernel_counters_and_spans(tmp_path):
    spec = CORPUS["server-churn"].scaled(INSTRUCTIONS)
    trace = str(tmp_path / "server-churn.trace")
    record_spec(spec, trace, compress=True)

    handle = runtime.configure(str(tmp_path / "tel"))
    replay_timing(trace)
    document = exported(handle)

    counters = document["counters"]
    if resolve_engine(None) == "columnar":
        assert counters["decode_frames_total"] > 0
        assert counters["decode_records_total"] > 0
        assert counters['kernel_accesses_total{level="l1"}'] > 0
        assert counters['kernel_rounds_total{level="l1"}'] > 0
    span_row = document["spans"]["replay/timing"]
    assert span_row["count"] == 1


def test_replay_span_carries_engine_and_touches(tmp_path):
    spec = CORPUS["server-churn"].scaled(INSTRUCTIONS)
    trace = str(tmp_path / "t.trace")
    record_spec(spec, trace)

    handle = runtime.configure(str(tmp_path / "tel"))
    replay_timing(trace)
    handle.flush()
    log = read_span_log(
        os.path.join(handle.directory, runtime.SPAN_LOG_NAME)
    )
    (record,) = [r for r in log.spans if r["name"] == "replay/timing"]
    assert record["attrs"]["engine"] in ("columnar", "records")
    assert record["attrs"]["touches"] > 0


def test_corpus_resolutions_count_recorded_then_hit(tmp_path):
    handle = runtime.configure(str(tmp_path / "tel"))
    store = CorpusStore(str(tmp_path / "corpus"))
    spec = CORPUS["server-churn"].scaled(INSTRUCTIONS)
    store.ensure(spec)  # cache miss: records
    store.ensure(spec)  # cache hit
    document = exported(handle)

    counters = document["counters"]
    assert counters['corpus_resolutions_total{outcome="recorded"}'] == 1
    assert counters['corpus_resolutions_total{outcome="hit"}'] == 1
    record_span = document["spans"]["corpus/record"]
    assert record_span["count"] == 1


def test_corpus_verify_counts_outcomes(tmp_path):
    handle = runtime.configure(str(tmp_path / "tel"))
    store = CorpusStore(str(tmp_path / "corpus"))
    store.ensure(CORPUS["server-churn"].scaled(INSTRUCTIONS))
    assert store.verify() == []
    document = exported(handle)
    assert (
        document["counters"]['corpus_verifications_total{outcome="ok"}'] == 1
    )


def test_disabled_run_writes_nothing(tmp_path):
    spec = CORPUS["server-churn"].scaled(INSTRUCTIONS)
    trace = str(tmp_path / "t.trace")
    record_spec(spec, trace, compress=True)
    assert runtime.active() is None
    replay_timing(trace)  # must not create any sink
    assert not os.path.exists(str(tmp_path / "tel"))
