"""Shared telemetry-test hygiene.

Telemetry activation is a process-global environment switch
(``$REPRO_TELEMETRY``), so every test starts and ends disabled —
a leaked sink would silently instrument unrelated tests.
"""

import pytest

from repro.telemetry import runtime


@pytest.fixture(autouse=True)
def clean_telemetry():
    runtime.shutdown()
    yield
    runtime.shutdown()
