"""The metrics registry: series keys, instruments, snapshots."""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    series_key,
)


class TestSeriesKey:
    def test_plain_name_without_labels(self):
        assert series_key("decode_records_total", None) == "decode_records_total"
        assert series_key("decode_records_total", {}) == "decode_records_total"

    def test_labels_render_prometheus_syntax(self):
        key = series_key("kernel_rounds_total", {"level": "l1"})
        assert key == 'kernel_rounds_total{level="l1"}'

    def test_label_order_is_canonical(self):
        forward = series_key("m", {"a": 1, "b": 2})
        backward = series_key("m", {"b": 2, "a": 1})
        assert forward == backward == 'm{a="1",b="2"}'


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits_total")
        registry.inc("hits_total", 4)
        assert registry.snapshot()["counters"] == {"hits_total": 5}

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.inc("rounds_total", 2, level="l1")
        registry.inc("rounds_total", 3, level="l2")
        counters = registry.snapshot()["counters"]
        assert counters['rounds_total{level="l1"}'] == 2
        assert counters['rounds_total{level="l2"}'] == 3


class TestGauges:
    def test_set_gauge_is_last_writer_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("jobs", 2)
        registry.set_gauge("jobs", 4)
        assert registry.snapshot()["gauges"] == {"jobs": 4}


class TestHistograms:
    def test_observation_lands_in_the_first_covering_bucket(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 0.003)  # <= 0.005 (third bound)
        histogram = registry.snapshot()["histograms"]["seconds"]
        assert histogram["buckets"] == list(DEFAULT_BUCKETS)
        assert len(histogram["counts"]) == len(DEFAULT_BUCKETS) + 1
        assert histogram["counts"][2] == 1
        assert sum(histogram["counts"]) == 1

    def test_overflow_lands_in_the_implicit_inf_bucket(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 10_000.0)
        histogram = registry.snapshot()["histograms"]["seconds"]
        assert histogram["counts"][-1] == 1

    def test_sum_count_min_max(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 2.0):
            registry.observe("seconds", value)
        histogram = registry.snapshot()["histograms"]["seconds"]
        assert histogram["count"] == 3
        assert histogram["sum"] == 4.0
        assert histogram["min"] == 0.5
        assert histogram["max"] == 2.0


class TestSnapshot:
    def test_empty_registry_is_falsy(self):
        registry = MetricsRegistry()
        assert not registry
        registry.inc("anything_total")
        assert registry

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("hits_total")
        snapshot = registry.snapshot()
        snapshot["counters"]["hits_total"] = 999
        assert registry.snapshot()["counters"]["hits_total"] == 1
