"""End-to-end tests of the Process runtime: the user-facing API."""

import pytest

from repro.core.exceptions import CaliformsError, SecurityByteAccess
from repro.softstack.allocator import HeapError
from repro.softstack.ctypes_model import (
    CHAR,
    INT,
    LISTING_1_STRUCT_A,
    LONG,
    Array,
    struct,
)
from repro.softstack.insertion import Policy
from repro.softstack.runtime import Process


def make_process(policy=Policy.FULL, **kwargs):
    kwargs.setdefault("heap_size", 1 << 14)
    kwargs.setdefault("seed", 9)
    return Process(policy=policy, **kwargs)


class TestTypedAccess:
    def test_write_read_field(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        process.write_field(handle, "i", (1234).to_bytes(4, "little"))
        assert int.from_bytes(process.read_field(handle, "i"), "little") == 1234

    def test_array_element_access(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        process.write_field(handle, "buf", b"Z", index=10)
        assert process.read_field(handle, "buf", size=1, index=10) == b"Z"

    def test_whole_array_read(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        process.write_field(handle, "buf", b"x" * 64)
        assert process.read_field(handle, "buf") == b"x" * 64

    def test_element_of_non_array_rejected(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        with pytest.raises(CaliformsError):
            process.field_address(handle, "i", index=2)

    def test_undeclared_struct_rejected(self):
        process = make_process()
        with pytest.raises(CaliformsError):
            process.layout_of("Ghost")


class TestOverflowDetection:
    def test_intra_object_overflow_detected(self):
        """The paper's headline: writing past buf into fp is caught."""
        process = make_process(policy=Policy.FULL)
        handle = process.new(LISTING_1_STRUCT_A)
        buf = process.field_address(handle, "buf")
        with pytest.raises(SecurityByteAccess):
            process.raw_write(buf, b"A" * 65)  # one byte past the array

    def test_intra_object_overread_detected(self):
        process = make_process(policy=Policy.FULL)
        handle = process.new(LISTING_1_STRUCT_A)
        buf = process.field_address(handle, "buf")
        with pytest.raises(SecurityByteAccess):
            process.raw_read(buf, 65)

    def test_inter_object_overflow_detected(self):
        process = make_process(policy=Policy.OPPORTUNISTIC)
        small = struct("Small", ("data", Array(CHAR, 16)))
        a = process.new(small)
        with pytest.raises(SecurityByteAccess):
            # Run off the end of the allocation into arena/quarantine bytes.
            process.raw_write(process.field_address(a, "data"), b"B" * 64)

    def test_use_after_free_detected(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        address = process.field_address(handle, "i")
        process.delete(handle)
        with pytest.raises(SecurityByteAccess):
            process.raw_read(address, 4)

    def test_runtime_double_free_detected(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        process.delete(handle)
        with pytest.raises(HeapError):
            process.delete(handle)


class TestIntelligentPolicyCoverage:
    def test_array_protected_but_scalars_not_padded(self):
        process = make_process(policy=Policy.INTELLIGENT)
        handle = process.new(LISTING_1_STRUCT_A)
        buf_end = process.field_address(handle, "buf") + 64
        with pytest.raises(SecurityByteAccess):
            process.raw_read(buf_end, 1)


class TestStackFrames:
    def test_dirty_before_use_lifecycle(self):
        process = make_process(policy=Policy.FULL)
        process.declare(LISTING_1_STRUCT_A)
        frame = process.push_frame({"local_a": "A"})
        layout, base = frame.locals["local_a"]
        span = layout.spans[0]
        with pytest.raises(SecurityByteAccess):
            process.raw_read(base + span.offset, 1)
        # Data bytes of the local are writable.
        process.raw_write(
            process.local_address(frame, "local_a", "i"), b"\x01\x02\x03\x04"
        )
        process.pop_frame()
        # After return the span bytes are plain stack memory again.
        assert process.raw_read(base + span.offset, 1) == b"\x00"

    def test_nested_frames(self):
        process = make_process(policy=Policy.FULL)
        process.declare(LISTING_1_STRUCT_A)
        outer = process.push_frame({"x": "A"})
        inner = process.push_frame({"y": "A"})
        assert inner.base < outer.base  # stack grows down
        process.pop_frame()
        process.pop_frame()

    def test_pop_without_push_rejected(self):
        process = make_process()
        with pytest.raises(CaliformsError):
            process.pop_frame()

    def test_stack_overflow_detected(self):
        process = make_process(stack_size=256)
        big = struct("Big", ("b", Array(CHAR, 512)))
        process.declare(big)
        with pytest.raises(CaliformsError):
            process.push_frame({"b": "Big"})


class TestWhitelistedOperations:
    def test_memcpy_copies_data_and_skips_spans(self):
        process = make_process(policy=Policy.FULL)
        source = process.new(LISTING_1_STRUCT_A)
        destination = process.new("A")
        process.write_field(source, "i", b"\x2a\x00\x00\x00")
        process.write_field(source, "buf", b"k" * 64)
        process.memcpy(destination.address, source.address, source.layout.size)
        assert process.read_field(destination, "i") == b"\x2a\x00\x00\x00"
        assert process.read_field(destination, "buf") == b"k" * 64
        # Destination spans remain blacklisted after the copy.
        span = destination.layout.spans[0]
        with pytest.raises(SecurityByteAccess):
            process.raw_read(destination.address + span.offset, 1)

    def test_io_write_materialises_zeros(self):
        process = make_process(policy=Policy.FULL)
        handle = process.new(LISTING_1_STRUCT_A)
        process.write_field(handle, "c", b"\xff")
        data = process.io_write(handle.address, handle.layout.size)
        span = handle.layout.spans[0]
        assert data[span.offset] == 0  # un-califormed view
        assert data[handle.layout.offset_of("c")] == 0xFF

    def test_no_exception_raised_inside_whitelisted_ops(self):
        process = make_process(policy=Policy.FULL)
        handle = process.new(LISTING_1_STRUCT_A)
        process.io_write(handle.address, handle.layout.size)
        assert process.cpu.counters.exceptions_raised == 0
        assert process.cpu.counters.exceptions_suppressed >= 0


class TestCformAccounting:
    def test_cform_count_grows_with_activity(self):
        process = make_process(policy=Policy.FULL)
        baseline = process.cform_instruction_count()
        handle = process.new(LISTING_1_STRUCT_A)
        after_alloc = process.cform_instruction_count()
        assert after_alloc > baseline
        process.delete(handle)
        assert process.cform_instruction_count() > after_alloc
