"""Tests for the compiler pass and its CFORM planning."""

import pytest

from repro.core import bitvector as bv
from repro.softstack.compiler import (
    CompilerConfig,
    CompilerPass,
    allocation_requests,
    blanket_requests,
    free_requests,
    stack_frame_requests,
)
from repro.softstack.ctypes_model import (
    CHAR,
    INT,
    LISTING_1_STRUCT_A,
    struct,
)
from repro.softstack.insertion import Policy


@pytest.fixture
def intelligent_pass():
    return CompilerPass(CompilerConfig(policy=Policy.INTELLIGENT, seed=42))


class TestTransform:
    def test_transform_is_deterministic_per_seed(self, intelligent_pass):
        a = intelligent_pass.transform(LISTING_1_STRUCT_A)
        b = intelligent_pass.transform(LISTING_1_STRUCT_A)
        assert a.field_offsets == b.field_offsets
        assert a.spans == b.spans

    def test_different_seeds_differ(self):
        one = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=1))
        two = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=2))
        assert one.transform(LISTING_1_STRUCT_A).field_offsets != two.transform(
            LISTING_1_STRUCT_A
        ).field_offsets

    def test_transform_all(self, intelligent_pass):
        corpus = [LISTING_1_STRUCT_A, struct("B", ("c", CHAR), ("i", INT))]
        layouts = intelligent_pass.transform_all(corpus)
        assert set(layouts) == {"A", "B"}

    def test_transform_fixed(self, intelligent_pass):
        layout = intelligent_pass.transform_fixed(LISTING_1_STRUCT_A, 3)
        assert layout.size > LISTING_1_STRUCT_A.size


class TestAllocationPlanning:
    def test_one_request_per_line(self, intelligent_pass):
        layout = intelligent_pass.transform(LISTING_1_STRUCT_A)
        requests = allocation_requests(layout, base_address=0x1000)
        lines_touched = (0x1000 + layout.size - 1) // 64 - 0x1000 // 64 + 1
        assert len(requests) == lines_touched

    def test_alloc_unsets_data_free_sets_it_back(self, intelligent_pass):
        layout = intelligent_pass.transform(LISTING_1_STRUCT_A)
        allocs = allocation_requests(layout, 0x1000)
        frees = free_requests(layout, 0x1000)
        for alloc, free in zip(allocs, frees):
            assert alloc.line_address == free.line_address
            assert alloc.mask == free.mask
            assert alloc.attributes == 0
            assert free.attributes == free.mask

    def test_masks_cover_exactly_data_bytes(self, intelligent_pass):
        layout = intelligent_pass.transform(LISTING_1_STRUCT_A)
        base = 0x1000
        covered = set()
        for request in allocation_requests(layout, base):
            for index in bv.iter_set_bits(request.mask):
                covered.add(request.line_address + index - base)
        assert covered == set(layout.data_byte_offsets)

    def test_unaligned_base_spans_extra_line(self, intelligent_pass):
        layout = intelligent_pass.transform(struct("S", ("x", INT)))
        aligned = allocation_requests(layout, 0x1000)
        unaligned = allocation_requests(layout, 0x1000 + 62)
        assert len(unaligned) == len(aligned) + 1


class TestBlanketPlanning:
    def test_blacklist_then_unblacklist_roundtrip(self):
        on = blanket_requests(0x2000, 100, blacklist=True)
        off = blanket_requests(0x2000, 100, blacklist=False)
        assert [r.line_address for r in on] == [r.line_address for r in off]
        total_bits = sum(bv.popcount(r.mask) for r in on)
        assert total_bits == 100

    def test_partial_first_line(self):
        requests = blanket_requests(0x2000 + 60, 8, blacklist=True)
        assert len(requests) == 2
        assert bv.popcount(requests[0].mask) == 4
        assert bv.popcount(requests[1].mask) == 4


class TestStackFramePlanning:
    def test_entry_sets_exit_unsets(self):
        compiler = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=3))
        layout = compiler.transform(LISTING_1_STRUCT_A)
        placed = [(layout, 0x7000)]
        entering = stack_frame_requests(placed, entering=True)
        leaving = stack_frame_requests(placed, entering=False)
        assert [r.line_address for r in entering] == [
            r.line_address for r in leaving
        ]
        for on, off in zip(entering, leaving):
            assert on.attributes == on.mask
            assert off.attributes == 0
            assert on.mask == off.mask

    def test_span_bytes_covered(self):
        compiler = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=3))
        layout = compiler.transform(LISTING_1_STRUCT_A)
        base = 0x7000
        covered = set()
        for request in stack_frame_requests([(layout, base)], entering=True):
            for index in bv.iter_set_bits(request.mask):
                covered.add(request.line_address + index - base)
        assert covered == layout.security_offsets_set()

    def test_empty_frame_no_requests(self):
        compiler = CompilerPass(CompilerConfig(policy=Policy.INTELLIGENT, seed=0))
        layout = compiler.transform(struct("Plain", ("a", INT), ("b", INT)))
        assert stack_frame_requests([(layout, 0x7000)], entering=True) == []
