"""Tests for the C struct-declaration parser."""

import pytest

from repro.softstack.ctypes_model import (
    CHAR,
    DOUBLE,
    FUNCTION_POINTER,
    INT,
    LISTING_1_STRUCT_A,
    LONG,
    POINTER,
    UNSIGNED_LONG,
    Array,
)
from repro.softstack.layout import layout_struct
from repro.softstack.parser import ParseError, parse_struct, parse_structs

LISTING_1_SOURCE = """
struct A {
    char c;
    int i;
    char buf[64];
    void (*fp)();
    double d;
};
"""


class TestListing1:
    def test_parses_listing_1(self):
        parsed = parse_struct(LISTING_1_SOURCE)
        assert parsed.name == "A"
        assert [f.name for f in parsed.fields] == ["c", "i", "buf", "fp", "d"]
        assert parsed.fields[0].ctype is CHAR
        assert parsed.fields[1].ctype is INT
        assert parsed.fields[2].ctype == Array(CHAR, 64)
        assert parsed.fields[3].ctype is FUNCTION_POINTER
        assert parsed.fields[4].ctype is DOUBLE

    def test_layout_matches_handbuilt(self):
        parsed = parse_struct(LISTING_1_SOURCE)
        ours = layout_struct(LISTING_1_STRUCT_A)
        theirs = layout_struct(parsed)
        assert theirs.size == ours.size
        assert [s.offset for s in theirs.slots] == [s.offset for s in ours.slots]


class TestTypeZoo:
    def test_qualified_scalars(self):
        parsed = parse_struct(
            "struct Q { unsigned long counter; signed char flag; "
            "unsigned short id; long long big; };"
        )
        assert parsed.field("counter").ctype is UNSIGNED_LONG
        assert parsed.field("big").ctype.size == 8

    def test_pointers_flatten_to_void_pointer(self):
        parsed = parse_struct("struct P { char *name; int **table; };")
        assert parsed.field("name").ctype is POINTER
        assert parsed.field("table").ctype is POINTER

    def test_multi_declarator_lines(self):
        parsed = parse_struct("struct M { int x, y, z; };")
        assert [f.name for f in parsed.fields] == ["x", "y", "z"]

    def test_multidimensional_arrays(self):
        parsed = parse_struct("struct G { double grid[4][8]; };")
        grid = parsed.field("grid").ctype
        assert grid.size == 4 * 8 * 8
        assert grid.element == Array(DOUBLE, 8)

    def test_size_t(self):
        parsed = parse_struct("struct S { size_t n; };")
        assert parsed.field("n").ctype is UNSIGNED_LONG

    def test_comments_stripped(self):
        parsed = parse_struct(
            "struct C { int a; /* padding here */ long b; // tail\n };"
        )
        assert parsed.field("b").ctype is LONG


class TestCrossReferences:
    def test_nested_struct_by_value(self):
        structs = parse_structs(
            "struct Inner { char c; long l; };"
            "struct Outer { char tag; struct Inner body; };"
        )
        outer = structs[1]
        assert outer.field("body").ctype is structs[0]
        assert layout_struct(outer).size == 24

    def test_struct_pointer_needs_no_definition(self):
        parsed = parse_struct("struct L { struct L *next; int v; };")
        assert parsed.field("next").ctype is POINTER

    def test_unknown_struct_value_rejected(self):
        with pytest.raises(ParseError):
            parse_struct("struct X { struct Ghost g; };")

    def test_known_namespace_is_extended(self):
        known = {}
        parse_structs("struct A1 { int x; };", known)
        parse_structs("struct B1 { struct A1 a; };", known)
        assert set(known) == {"A1", "B1"}


class TestErrors:
    def test_bitfields_rejected(self):
        with pytest.raises(ParseError, match="bit-field"):
            parse_struct("struct B { int flags : 3; };")

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_struct("struct U { widget w; };")

    def test_void_member_rejected(self):
        with pytest.raises(ParseError):
            parse_struct("struct V { void v; };")

    def test_empty_struct_rejected(self):
        with pytest.raises(ParseError):
            parse_struct("struct E { };")

    def test_no_structs_rejected(self):
        with pytest.raises(ParseError):
            parse_struct("int main(void) { return 0; }")

    def test_multiple_when_one_expected(self):
        with pytest.raises(ParseError):
            parse_struct("struct A2 { int x; }; struct B2 { int y; };")
