"""Tests for the clean-before-use, quarantining Califorms heap."""

import pytest

from repro.core.exceptions import SecurityByteAccess
from repro.memory.hierarchy import MemoryHierarchy
from repro.softstack.allocator import Allocation, CaliformsHeap, HeapError
from repro.softstack.compiler import CompilerConfig, CompilerPass
from repro.softstack.ctypes_model import CHAR, INT, LISTING_1_STRUCT_A, Array, struct
from repro.softstack.insertion import Policy


def make_heap(size=64 * 64, policy=Policy.FULL, quarantine=0.25):
    hierarchy = MemoryHierarchy()
    heap = CaliformsHeap(
        hierarchy, base=0x10000, size=size, quarantine_fraction=quarantine
    )
    compiler = CompilerPass(CompilerConfig(policy=policy, seed=5))
    return heap, compiler, hierarchy


class TestCleanBeforeUse:
    def test_fresh_arena_is_fully_blacklisted(self):
        heap, _, hierarchy = make_heap(size=4 * 64)
        for offset in (0, 63, 128, 255):
            with pytest.raises(SecurityByteAccess):
                hierarchy.load_or_raise(0x10000 + offset, 1)

    def test_allocated_data_bytes_become_usable(self):
        heap, compiler, hierarchy = make_heap()
        layout = compiler.transform(LISTING_1_STRUCT_A)
        allocation = heap.malloc(layout)
        offset = layout.offset_of("i")
        hierarchy.store_or_raise(allocation.address + offset, b"\x01\x02\x03\x04")
        value = hierarchy.load_or_raise(allocation.address + offset, 4)
        assert value == b"\x01\x02\x03\x04"

    def test_security_spans_stay_blacklisted(self):
        heap, compiler, hierarchy = make_heap()
        layout = compiler.transform(LISTING_1_STRUCT_A)
        allocation = heap.malloc(layout)
        span = layout.spans[0]
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(allocation.address + span.offset, 1)

    def test_memory_outside_allocations_stays_blacklisted(self):
        heap, compiler, hierarchy = make_heap()
        layout = compiler.transform(struct("S", ("x", INT)))
        allocation = heap.malloc(layout)
        # One byte past the carved region is still arena: blacklisted.
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(allocation.address + 16, 1)


class TestFreeSemantics:
    def test_freed_region_is_blacklisted_and_zeroed(self):
        heap, compiler, hierarchy = make_heap()
        layout = compiler.transform(struct("S", ("x", INT)))
        allocation = heap.malloc(layout)
        field = allocation.address + layout.offset_of("x")
        hierarchy.store_or_raise(field, b"\xde\xad\xbe\xef")
        heap.free(allocation)
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(field, 4)  # use-after-free
        # The data itself was zeroed (Section 7.2): even a whitelisted
        # reader sees zeros, not stale secrets.
        value, _records = hierarchy.load(field, 4)
        assert value == bytes(4)

    def test_double_free_detected(self):
        heap, compiler, _ = make_heap()
        layout = compiler.transform(struct("S", ("x", INT)))
        allocation = heap.malloc(layout)
        heap.free(allocation)
        with pytest.raises(HeapError):
            heap.free(allocation)

    def test_free_unknown_pointer_rejected(self):
        heap, _, _ = make_heap()
        with pytest.raises(HeapError):
            heap.free(Allocation(address=0xBAD0, size=16))


class TestQuarantine:
    def test_freed_region_not_immediately_reused(self):
        heap, compiler, _ = make_heap(size=64 * 64, quarantine=0.5)
        layout = compiler.transform(struct("S", ("x", INT)))
        first = heap.malloc(layout)
        first_address = first.address
        heap.free(first)
        second = heap.malloc(layout)
        assert second.address != first_address

    def test_quarantine_drains_under_pressure(self):
        heap, compiler, _ = make_heap(size=8 * 64, quarantine=0.9)
        layout = compiler.transform(struct("Buf", ("b", Array(CHAR, 300))))
        first = heap.malloc(layout)
        heap.free(first)
        # Arena only fits one such object at a time: the second malloc
        # must drain quarantine rather than dying.
        second = heap.malloc(layout)
        assert second.address == first.address
        assert heap.stats.quarantine_releases >= 1

    def test_out_of_memory_raises(self):
        heap, compiler, _ = make_heap(size=4 * 64)
        layout = compiler.transform(struct("Big", ("b", Array(CHAR, 1024))))
        with pytest.raises(HeapError):
            heap.malloc(layout)


class TestRawAllocations:
    def test_raw_buffer_usable_and_freed(self):
        heap, _, hierarchy = make_heap()
        allocation = heap.malloc_raw(100)
        hierarchy.store_or_raise(allocation.address, b"x" * 100)
        heap.free(allocation)
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(allocation.address, 1)

    def test_raw_rejects_nonpositive(self):
        heap, _, _ = make_heap()
        with pytest.raises(HeapError):
            heap.malloc_raw(0)


class TestStats:
    def test_cform_accounting(self):
        heap, compiler, _ = make_heap(size=16 * 64)
        arena_cforms = heap.stats.cform_instructions
        assert arena_cforms == 16  # one per arena line at init
        layout = compiler.transform(LISTING_1_STRUCT_A)
        allocation = heap.malloc(layout)
        lines = (allocation.address + layout.size - 1) // 64 - (
            allocation.address // 64
        ) + 1
        assert heap.stats.cform_instructions == arena_cforms + lines
        heap.free(allocation)
        assert heap.stats.cform_instructions == arena_cforms + 2 * lines

    def test_malloc_free_counters(self):
        heap, compiler, _ = make_heap()
        layout = compiler.transform(struct("S", ("x", INT)))
        allocation = heap.malloc(layout)
        heap.free(allocation)
        assert heap.stats.mallocs == 1
        assert heap.stats.frees == 1
        assert heap.stats.security_bytes_live == 0


class TestNonTemporalMode:
    def test_heap_works_with_streaming_cform(self):
        hierarchy = MemoryHierarchy()
        heap = CaliformsHeap(
            hierarchy, base=0x10000, size=16 * 64, use_non_temporal_cform=True
        )
        compiler = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=5))
        layout = compiler.transform(struct("S", ("x", INT)))
        allocation = heap.malloc(layout)
        field = allocation.address + layout.offset_of("x")
        hierarchy.store_or_raise(field, b"abcd")
        heap.free(allocation)
        with pytest.raises(SecurityByteAccess):
            hierarchy.load_or_raise(field, 1)
