"""Layout engine tests, cross-checked against CPython's ctypes ABI oracle."""

import ctypes

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.softstack.ctypes_model import (
    CHAR,
    DOUBLE,
    FLOAT,
    FUNCTION_POINTER,
    INT,
    LISTING_1_STRUCT_A,
    LONG,
    POINTER,
    SHORT,
    Array,
    Field,
    Struct,
    struct,
)
from repro.softstack.layout import (
    densities,
    describe,
    fraction_with_padding,
    layout_struct,
)

_CTYPES_MAP = {
    "char": ctypes.c_char,
    "short": ctypes.c_short,
    "int": ctypes.c_int,
    "long": ctypes.c_long,
    "float": ctypes.c_float,
    "double": ctypes.c_double,
    "void *": ctypes.c_void_p,
    "void (*)()": ctypes.c_void_p,
}


def to_ctypes(model_struct: Struct):
    """Build the equivalent ctypes.Structure as an ABI oracle."""
    fields = []
    for member in model_struct.fields:
        ctype = member.ctype
        if isinstance(ctype, Array):
            fields.append((member.name, _CTYPES_MAP[ctype.element.name] * ctype.length))
        else:
            fields.append((member.name, _CTYPES_MAP[ctype.name]))
    return type(f"C_{model_struct.name}", (ctypes.Structure,), {"_fields_": fields})


scalar_pool = [CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, POINTER, FUNCTION_POINTER]
member_types = st.one_of(
    st.sampled_from(scalar_pool),
    st.builds(Array, st.sampled_from(scalar_pool), st.integers(1, 8)),
)


class TestAgainstCtypesOracle:
    def check(self, model_struct: Struct):
        oracle = to_ctypes(model_struct)
        layout = layout_struct(model_struct)
        assert layout.size == ctypes.sizeof(oracle), model_struct
        assert layout.align == ctypes.alignment(oracle), model_struct
        for member in model_struct.fields:
            assert layout.offset_of(member.name) == getattr(
                oracle, member.name
            ).offset, (model_struct, member.name)

    def test_listing1(self):
        self.check(LISTING_1_STRUCT_A)

    def test_classic_shapes(self):
        self.check(struct("S1", ("c", CHAR), ("i", INT)))
        self.check(struct("S2", ("i", INT), ("c", CHAR)))
        self.check(struct("S3", ("c", CHAR), ("d", DOUBLE), ("s", SHORT)))
        self.check(struct("S4", ("a", Array(CHAR, 3)), ("p", POINTER)))
        self.check(struct("S5", ("s", SHORT), ("c", CHAR), ("l", LONG)))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(member_types, min_size=1, max_size=8))
    def test_random_structs_match_abi(self, types):
        model = Struct("R", tuple(Field(f"f{i}", t) for i, t in enumerate(types)))
        self.check(model)


class TestPaddingDiscovery:
    def test_listing1_paddings(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        spans = [(p.offset, p.size, p.after_field) for p in layout.paddings]
        # char c at 0 -> 3 bytes pad -> int i at 4; buf ends at 72 -> no pad
        # (72 % 8 == 0); fp at 72; d at 80; total 88 -> wait, trailing?
        assert (1, 3, "c") in spans

    def test_no_padding_struct_has_none(self):
        layout = layout_struct(struct("T", ("a", LONG), ("b", LONG)))
        assert layout.paddings == ()
        assert layout.density == 1.0

    def test_trailing_padding_found(self):
        layout = layout_struct(struct("U", ("l", LONG), ("c", CHAR)))
        assert layout.paddings[-1].offset == 9
        assert layout.paddings[-1].size == 7
        assert layout.paddings[-1].after_field == "c"

    def test_density(self):
        layout = layout_struct(struct("S", ("c", CHAR), ("i", INT)))
        assert layout.density == pytest.approx(5 / 8)
        assert layout.live_bytes == 5
        assert layout.padding_bytes == 3

    @settings(max_examples=100, deadline=None)
    @given(st.lists(member_types, min_size=1, max_size=10))
    def test_fields_never_overlap_and_cover_live_bytes(self, types):

        model = Struct("R", tuple(Field(f"f{i}", t) for i, t in enumerate(types)))
        layout = layout_struct(model)
        covered = set()
        for slot in layout.slots:
            span = set(range(slot.offset, slot.end))
            assert not span & covered  # no overlap
            covered |= span
        for padding in layout.paddings:
            span = set(range(padding.offset, padding.end))
            assert not span & covered
            covered |= span
        assert covered == set(range(layout.size))  # exact partition

    @settings(max_examples=50, deadline=None)
    @given(st.lists(member_types, min_size=1, max_size=10))
    def test_density_consistency(self, types):

        model = Struct("R", tuple(Field(f"f{i}", t) for i, t in enumerate(types)))
        layout = layout_struct(model)
        assert layout.live_bytes + layout.padding_bytes == layout.size
        assert 0 < layout.density <= 1.0


class TestCorpusHelpers:
    def test_densities_list(self):
        corpus = [
            struct("A", ("c", CHAR), ("i", INT)),
            struct("B", ("x", LONG)),
        ]
        values = densities(corpus)
        assert values == [pytest.approx(5 / 8), 1.0]

    def test_fraction_with_padding(self):
        corpus = [
            struct("A", ("c", CHAR), ("i", INT)),  # padded
            struct("B", ("x", LONG)),  # dense
        ]
        assert fraction_with_padding(corpus) == 0.5

    def test_fraction_empty_corpus(self):
        assert fraction_with_padding([]) == 0.0

    def test_describe_renders(self):
        text = describe(layout_struct(LISTING_1_STRUCT_A))
        assert "struct A {" in text
        assert "<3B padding>" in text
        assert "char[64] buf" in text
