"""Unit tests for the C-like type system."""

import pytest

from repro.softstack.ctypes_model import (
    CHAR,
    DOUBLE,
    FLOAT,
    FUNCTION_POINTER,
    INT,
    LISTING_1_STRUCT_A,
    LONG,
    POINTER,
    SHORT,
    Array,
    CUnion,
    Field,
    Scalar,
    ScalarKind,
    Struct,
    align_up,
    is_blacklist_target,
    struct,
)


class TestScalars:
    def test_lp64_sizes(self):
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4
        assert LONG.size == 8
        assert FLOAT.size == 4
        assert DOUBLE.size == 8
        assert POINTER.size == 8
        assert FUNCTION_POINTER.size == 8

    def test_natural_alignment(self):
        for scalar in (CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, POINTER):
            assert scalar.align == scalar.size

    def test_invalid_scalar_rejected(self):
        with pytest.raises(ValueError):
            Scalar("bad", 0, 1)
        with pytest.raises(ValueError):
            Scalar("bad", 3, 2)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(8, 4) == 8

    def test_rounds_up(self):
        assert align_up(5, 4) == 8
        assert align_up(1, 8) == 8

    def test_zero(self):
        assert align_up(0, 16) == 0


class TestArray:
    def test_size_and_align(self):
        array = Array(INT, 10)
        assert array.size == 40
        assert array.align == 4

    def test_name(self):
        assert Array(CHAR, 64).name == "char[64]"

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Array(CHAR, 0)

    def test_array_of_struct(self):
        inner = struct("P", ("x", INT), ("y", CHAR))
        array = Array(inner, 3)
        assert array.size == 3 * inner.size
        assert array.align == 4


class TestStruct:
    def test_listing1_size(self):
        # char c | 3 pad | int i at 4 | buf[64] at 8 | fp at 72 | d at 80
        assert LISTING_1_STRUCT_A.size == 88
        assert LISTING_1_STRUCT_A.align == 8

    def test_simple_struct(self):
        s = struct("S", ("c", CHAR), ("i", INT))
        assert s.size == 8  # 1 + 3 pad + 4
        assert s.align == 4

    def test_no_padding_struct(self):
        s = struct("T", ("a", INT), ("b", INT))
        assert s.size == 8

    def test_trailing_padding(self):
        s = struct("U", ("l", LONG), ("c", CHAR))
        assert s.size == 16  # 8 + 1 + 7 trailing

    def test_nested_struct(self):
        inner = struct("I", ("c", CHAR), ("l", LONG))  # size 16, align 8
        outer = struct("O", ("x", CHAR), ("in_", inner))
        assert inner.size == 16
        assert outer.size == 24
        assert outer.align == 8

    def test_empty_struct_rejected(self):
        with pytest.raises(ValueError):
            Struct("E", ())

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            struct("D", ("x", INT), ("x", CHAR))

    def test_field_lookup(self):
        assert LISTING_1_STRUCT_A.field("i").ctype is INT
        with pytest.raises(KeyError):
            LISTING_1_STRUCT_A.field("nope")


class TestUnion:
    def test_size_is_max_rounded(self):
        union = CUnion("U", (Field("c", CHAR), Field("l", LONG)))
        assert union.size == 8
        assert union.align == 8

    def test_union_with_odd_member(self):
        union = CUnion("U", (Field("a", Array(CHAR, 9)), Field("i", INT)))
        assert union.size == 12  # 9 rounded up to align 4

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            CUnion("E", ())


class TestBlacklistTargets:
    def test_arrays_and_pointers_are_targets(self):
        assert is_blacklist_target(Array(CHAR, 4))
        assert is_blacklist_target(POINTER)
        assert is_blacklist_target(FUNCTION_POINTER)

    def test_plain_scalars_are_not(self):
        assert not is_blacklist_target(INT)
        assert not is_blacklist_target(DOUBLE)
        assert not is_blacklist_target(CHAR)

    def test_nested_struct_is_not_a_direct_target(self):
        assert not is_blacklist_target(struct("S", ("i", INT)))

    def test_scalar_kind_classification(self):
        assert POINTER.kind is ScalarKind.POINTER
        assert FUNCTION_POINTER.kind is ScalarKind.FUNCTION_POINTER
        assert DOUBLE.kind is ScalarKind.FLOATING
