"""Tests for the three insertion policies and the Figure 4 fixed pass."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.softstack.ctypes_model import (
    CHAR,
    DOUBLE,
    INT,
    LISTING_1_STRUCT_A,
    LONG,
    POINTER,
    Array,
    Field,
    Struct,
    struct,
)
from repro.softstack.insertion import (
    Policy,
    apply_policy,
    fixed_full,
    full,
    intelligent,
    opportunistic,
)
from repro.softstack.layout import layout_struct

scalar_pool = [CHAR, INT, LONG, DOUBLE, POINTER]
member_types = st.one_of(
    st.sampled_from(scalar_pool),
    st.builds(Array, st.sampled_from([CHAR, INT]), st.integers(1, 8)),
)


def random_struct(types):
    return Struct("R", tuple(Field(f"f{i}", t) for i, t in enumerate(types)))


def spans_disjoint_from_fields(califormed):
    blacklisted = califormed.security_offsets_set()
    for name, offset in califormed.field_offsets.items():
        size = califormed.field_size(name)
        field_bytes = set(range(offset, offset + size))
        if field_bytes & blacklisted:
            return False
    return True


class TestOpportunistic:
    def test_listing1b(self):
        califormed = opportunistic(layout_struct(LISTING_1_STRUCT_A))
        # Exactly the 3 compiler padding bytes between c and i.
        assert califormed.security_bytes == 3
        assert califormed.spans[0].offset == 1
        assert califormed.spans[0].size == 3
        assert califormed.spans[0].source == "padding"

    def test_no_layout_change(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        califormed = opportunistic(layout)
        assert califormed.size == layout.size
        assert califormed.memory_overhead_bytes == 0
        for slot in layout.slots:
            assert califormed.offset_of(slot.name) == slot.offset

    def test_dense_struct_gets_no_spans(self):
        califormed = opportunistic(layout_struct(struct("D", ("a", LONG))))
        assert califormed.spans == ()


class TestFull:
    def test_listing1c_every_gap_protected(self):
        rng = random.Random(7)
        califormed = full(layout_struct(LISTING_1_STRUCT_A), rng, 1, 3)
        offsets = sorted(califormed.field_offsets.values())
        blacklisted = califormed.security_offsets_set()
        # A span before the first field.
        assert 0 in blacklisted
        # Between every adjacent pair of fields there is >= 1 security byte.
        names = sorted(califormed.field_offsets, key=califormed.offset_of)
        for first, second in zip(names, names[1:]):
            gap = range(
                califormed.offset_of(first) + califormed.field_size(first),
                califormed.offset_of(second),
            )
            assert any(o in blacklisted for o in gap), (first, second)
        # After the last field too.
        last = names[-1]
        tail = range(
            califormed.offset_of(last) + califormed.field_size(last),
            califormed.size,
        )
        assert any(o in blacklisted for o in tail)
        del offsets

    def test_random_sizes_within_range(self):
        rng = random.Random(1)
        califormed = full(layout_struct(LISTING_1_STRUCT_A), rng, 2, 5)
        inserted = [s for s in califormed.spans if s.source == "inserted"]
        # Merged spans can exceed max (span + adjacent padding), but no
        # inserted span is smaller than the minimum.
        assert all(s.size >= 2 for s in inserted)

    def test_seeds_change_layout(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        a = full(layout, random.Random(1), 1, 7)
        b = full(layout, random.Random(2), 1, 7)
        assert a.field_offsets != b.field_offsets  # randomised layouts

    def test_alignment_preserved(self):
        rng = random.Random(3)
        califormed = full(layout_struct(LISTING_1_STRUCT_A), rng, 1, 7)
        base = califormed.base.struct
        for member in base.fields:
            offset = califormed.offset_of(member.name)
            assert offset % member.ctype.align == 0, member.name

    def test_invalid_sizes_rejected(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        with pytest.raises(ConfigurationError):
            full(layout, random.Random(0), 0, 3)
        with pytest.raises(ConfigurationError):
            full(layout, random.Random(0), 3, 2)
        with pytest.raises(ConfigurationError):
            full(layout, random.Random(0), 1, 8)


class TestIntelligent:
    def test_listing1d_targets(self):
        rng = random.Random(11)
        califormed = intelligent(layout_struct(LISTING_1_STRUCT_A), rng, 1, 3)
        blacklisted = califormed.security_offsets_set()
        # buf (array) is protected on both sides.
        buf = califormed.offset_of("buf")
        assert (buf - 1) in blacklisted
        assert (buf + 64) in blacklisted
        # fp (function pointer) is protected after as well.
        fp = califormed.offset_of("fp")
        assert (fp + 8) in blacklisted
        # c..i natural padding is NOT harvested under intelligent.
        c_end = califormed.offset_of("c") + 1
        i_start = califormed.offset_of("i")
        for offset in range(c_end, i_start):
            assert offset not in blacklisted

    def test_scalar_only_struct_gets_nothing(self):
        rng = random.Random(0)
        califormed = intelligent(
            layout_struct(struct("S", ("a", INT), ("b", DOUBLE))), rng
        )
        assert califormed.security_bytes == 0
        assert califormed.memory_overhead_bytes == 0

    def test_pointer_heavy_struct_is_protected(self):
        rng = random.Random(0)
        califormed = intelligent(
            layout_struct(struct("P", ("p", POINTER), ("q", POINTER))), rng
        )
        assert califormed.security_bytes > 0


class TestFixedFull:
    def test_zero_padding_is_opportunistic(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        assert fixed_full(layout, 0).size == layout.size

    def test_padding_grows_with_size(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        sizes = [fixed_full(layout, n).size for n in range(1, 8)]
        assert sizes == sorted(sizes)
        assert sizes[0] > layout.size

    def test_rejects_out_of_range(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        with pytest.raises(ConfigurationError):
            fixed_full(layout, 8)


class TestApplyPolicy:
    def test_dispatch(self):
        layout = layout_struct(LISTING_1_STRUCT_A)
        rng = random.Random(0)
        assert apply_policy(layout, Policy.OPPORTUNISTIC, rng).policy is (
            Policy.OPPORTUNISTIC
        )
        assert apply_policy(layout, Policy.FULL, rng).policy is Policy.FULL
        assert apply_policy(layout, Policy.INTELLIGENT, rng).policy is (
            Policy.INTELLIGENT
        )


@settings(max_examples=150, deadline=None)
@given(
    st.lists(member_types, min_size=1, max_size=8),
    st.sampled_from(list(Policy)),
    st.integers(min_value=0, max_value=2**31),
)
def test_policy_invariants(types, policy, seed):
    """For every policy and struct: spans never overlap fields, spans stay
    in bounds, field alignment is preserved, data+security partition."""
    model = random_struct(types)
    layout = layout_struct(model)
    califormed = apply_policy(layout, policy, random.Random(seed))

    assert spans_disjoint_from_fields(califormed)
    blacklisted = califormed.security_offsets_set()
    assert all(0 <= o < califormed.size for o in blacklisted)
    for member in model.fields:
        assert califormed.offset_of(member.name) % member.ctype.align == 0
    # Data offsets and security offsets partition the object exactly.
    data = set(califormed.data_byte_offsets)
    assert data | blacklisted == set(range(califormed.size))
    assert not data & blacklisted


@settings(max_examples=60, deadline=None)
@given(st.lists(member_types, min_size=1, max_size=8), st.integers(0, 2**31))
def test_full_dominates_opportunistic_coverage(types, seed):
    """Full always blacklists at least as many bytes as opportunistic."""
    layout = layout_struct(random_struct(types))
    rng = random.Random(seed)
    assert (
        full(layout, rng).security_bytes
        >= opportunistic(layout).security_bytes
    )
