"""Tests for the randstruct baseline and the BROP simulation."""

from repro.analysis.attacks import run_attack_suite
from repro.baselines.randstruct import (
    RandstructModel,
    offset_bounds,
    simulate_brop,
)
from repro.softstack.ctypes_model import LISTING_1_STRUCT_A


class TestRandstructModel:
    def test_detects_nothing(self):
        report = run_attack_suite(RandstructModel())
        assert report.detection_rate == 0.0

    def test_traits_row(self):
        traits = RandstructModel.traits
        assert traits.intra_object == "probabilistic only"
        assert traits.metadata_overhead == "none"


class TestOffsetBounds:
    def test_bounds_bracket_actual_layouts(self):
        import random

        from repro.softstack.insertion import full
        from repro.softstack.layout import layout_struct

        low, high = offset_bounds(LISTING_1_STRUCT_A, "buf", 1, 7)
        natural = layout_struct(LISTING_1_STRUCT_A)
        for seed in range(20):
            layout = full(natural, random.Random(seed), 1, 7)
            assert low <= layout.offset_of("buf") <= high

    def test_alignment_quantizes_pointer_targets(self):
        # An 8-aligned field has far fewer reachable offsets than a
        # byte-aligned buffer: alignment eats randomization entropy.
        fp_low, fp_high = offset_bounds(LISTING_1_STRUCT_A, "fp", 1, 7)
        buf_low, buf_high = offset_bounds(LISTING_1_STRUCT_A, "buf", 1, 7)
        fp_candidates = (fp_high - fp_low) // 8 + 1
        buf_candidates = buf_high - buf_low + 1
        assert fp_candidates < buf_candidates


class TestBropSimulation:
    def test_fixed_layout_falls_to_enumeration(self):
        low, high = offset_bounds(LISTING_1_STRUCT_A, "buf", 1, 7)
        result = simulate_brop(
            LISTING_1_STRUCT_A, "buf", rerandomize_on_respawn=False,
            max_attempts=3000, seed=1,
        )
        assert result.succeeded
        # Systematic enumeration is bounded by the candidate-space size.
        assert result.attempts <= high - low + 1

    def test_rerandomization_is_memoryless(self):
        """Re-randomized respawns: attempts follow a geometric law, so
        some runs far exceed the enumeration bound of the fixed case."""
        low, high = offset_bounds(LISTING_1_STRUCT_A, "buf", 1, 7)
        bound = high - low + 1
        attempts = [
            simulate_brop(
                LISTING_1_STRUCT_A, "buf", rerandomize_on_respawn=True,
                max_attempts=3000, seed=seed,
            ).attempts
            for seed in range(10)
        ]
        assert max(attempts) > bound  # unbounded tail, unlike enumeration
        assert sum(attempts) / len(attempts) > bound / 2

    def test_narrow_span_range_is_weak(self):
        # With 1-1 spans there is nothing to guess: first try wins.
        result = simulate_brop(
            LISTING_1_STRUCT_A, "buf", rerandomize_on_respawn=True,
            span_min=1, span_max=1, max_attempts=5, seed=0,
        )
        assert result.succeeded
        assert result.attempts == 1

    def test_crash_counting(self):
        result = simulate_brop(
            LISTING_1_STRUCT_A, "buf", rerandomize_on_respawn=False,
            max_attempts=3000, seed=3,
        )
        assert result.crashes == result.attempts - 1

    def test_gives_up_at_max_attempts(self):
        result = simulate_brop(
            LISTING_1_STRUCT_A, "buf", rerandomize_on_respawn=True,
            max_attempts=1, seed=3,
        )
        if not result.succeeded:
            assert result.attempts == 1
