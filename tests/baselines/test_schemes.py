"""Tests for the baseline safety models: who detects what."""

import pytest

from repro.baselines.base import DetectionTime
from repro.baselines.califorms_model import CaliformsModel
from repro.baselines.tripwires import CanaryModel, RestModel, SafeMemModel
from repro.baselines.whitelisting import AdiModel, MpxModel

BASE = 0x10000


def overflowing_access(model, size=128, span=((20, 3),)):
    """Allocate an object and overflow one byte past its end."""
    allocation = model.on_alloc(BASE, size, intra_spans=span)
    return allocation, model.check_access(allocation, BASE + size, 8, True)


class TestRest:
    def test_adjacent_overflow_detected(self):
        model = RestModel(token_size=64)
        _, violation = overflowing_access(model)
        assert violation is not None
        assert violation.when is DetectionTime.IMMEDIATE

    def test_intra_object_overflow_missed(self):
        model = RestModel()
        allocation = model.on_alloc(BASE, 128, intra_spans=((20, 3),))
        # Write into the dead span inside the object: REST cannot see it.
        assert model.check_access(allocation, BASE + 20, 3, True) is None

    def test_use_after_free_detected(self):
        model = RestModel()
        allocation = model.on_alloc(BASE, 128)
        model.on_free(allocation)
        assert model.check_access(allocation, BASE + 10, 4, False) is not None

    def test_jump_over_token(self):
        # Skipping past the 64B token lands in unprotected memory.
        model = RestModel(token_size=8)
        allocation = model.on_alloc(BASE, 128)
        assert model.check_access(allocation, BASE + 128 + 8, 4, True) is None

    def test_token_size_validated(self):
        with pytest.raises(ValueError):
            RestModel(token_size=4)


class TestSafeMem:
    def test_line_granularity_detection(self):
        model = SafeMemModel()
        allocation = model.on_alloc(BASE, 128)
        assert model.check_access(allocation, BASE + 128, 1, True) is not None

    def test_speculative_bypass_misses_reads(self):
        model = SafeMemModel(speculative_bypass=True)
        allocation = model.on_alloc(BASE, 128)
        assert model.check_access(allocation, BASE + 128, 1, False) is None
        assert model.check_access(allocation, BASE + 128, 1, True) is not None


class TestCanary:
    def test_overwrite_detected_deferred(self):
        model = CanaryModel()
        allocation = model.on_alloc(BASE, 128)
        violation = model.check_access(allocation, BASE + 128, 8, True)
        assert violation is not None
        assert violation.when is DetectionTime.DEFERRED
        assert model.run_checks() == [BASE + 128]

    def test_overread_never_detected(self):
        model = CanaryModel()
        allocation = model.on_alloc(BASE, 128)
        assert model.check_access(allocation, BASE + 128, 8, False) is None
        assert model.run_checks() == []


class TestMpx:
    def test_overflow_detected(self):
        model = MpxModel()
        _, violation = overflowing_access(model)
        assert violation is not None

    def test_intra_object_missed_without_narrowing(self):
        model = MpxModel(bounds_narrowing=False)
        allocation = model.on_alloc(BASE, 128, intra_spans=((20, 3),))
        assert model.check_access(allocation, BASE + 20, 3, True) is None

    def test_intra_object_caught_with_narrowing(self):
        model = MpxModel(bounds_narrowing=True)
        allocation = model.on_alloc(BASE, 128, intra_spans=((20, 3),))
        # Accessing across the span boundary from below is out of the
        # narrowed bounds.
        assert model.check_access(allocation, BASE + 18, 4, True) is not None

    def test_laundered_pointer_unprotected(self):
        model = MpxModel()
        allocation = model.on_alloc(BASE, 128)
        model.launder(allocation)
        assert model.check_access(allocation, BASE + 4096, 8, True) is None

    def test_no_temporal_safety(self):
        model = MpxModel()
        allocation = model.on_alloc(BASE, 128)
        model.on_free(allocation)
        assert model.check_access(allocation, BASE + 8, 8, False) is None


class TestAdi:
    def test_overflow_into_differently_colored_neighbour(self):
        model = AdiModel()
        a = model.on_alloc(BASE, 128)
        model.on_alloc(BASE + 128, 128)  # neighbour gets the next colour
        assert model.check_access(a, BASE + 128, 8, True) is not None

    def test_color_collision_goes_undetected(self):
        model = AdiModel()
        first = model.on_alloc(BASE, 64)
        # Burn through the colour space so a later neighbour collides.
        for index in range(AdiModel.USABLE_COLORS - 1):
            model.on_alloc(BASE + 0x1000 + index * 64, 64)
        collider = model.on_alloc(BASE + 64, 64)
        assert collider.color == first.color
        # Overflow from `first` into `collider` is invisible.
        assert model.check_access(first, BASE + 64, 8, True) is None

    def test_use_after_free_detected(self):
        model = AdiModel()
        allocation = model.on_alloc(BASE, 64)
        model.on_free(allocation)
        assert model.check_access(allocation, BASE, 8, False) is not None


class TestCaliformsAdapter:
    def test_intra_object_detected(self):
        model = CaliformsModel()
        allocation = model.on_alloc(BASE, 128, intra_spans=((20, 3),))
        assert model.check_access(allocation, BASE + 20, 1, True) is not None

    def test_live_data_clean(self):
        model = CaliformsModel()
        allocation = model.on_alloc(BASE, 128, intra_spans=((20, 3),))
        assert model.check_access(allocation, BASE, 20, False) is None

    def test_use_after_free_detected(self):
        model = CaliformsModel()
        allocation = model.on_alloc(BASE, 128, intra_spans=((20, 3),))
        model.on_free(allocation)
        assert model.check_access(allocation, BASE + 50, 4, False) is not None
