"""Tests for the Tables 4/5/6 comparison machinery."""

from repro.baselines.comparison import (
    TABLE4,
    TABLE5,
    TABLE6,
    all_traits,
    implemented_models,
    render_table,
    table_rows,
)


class TestRows:
    def test_califorms_is_last_row(self):
        assert all_traits()[-1].name == "Califorms"

    def test_expected_schemes_present(self):
        names = {t.name for t in all_traits()}
        for required in (
            "Hardbound",
            "Watchdog",
            "PUMP",
            "CHERI",
            "Intel MPX",
            "SPARC ADI",
            "SafeMem",
            "REST",
            "Califorms",
        ):
            assert required in names

    def test_table4_headline_claims(self):
        rows = {row["Proposal"]: row for row in table_rows(TABLE4)}
        califorms = rows["Califorms"]
        assert califorms["Protection granularity"] == "byte"
        assert califorms["Intra-object"] == "yes"
        assert "yes" in califorms["Temporal safety"]
        # Only Califorms combines byte granularity + unconditional
        # intra-object protection (Table 4's point).
        unconditional = [
            name
            for name, row in rows.items()
            if row["Intra-object"] == "yes"
        ]
        assert unconditional == ["Califorms"]

    def test_each_table_has_all_rows(self):
        count = len(all_traits())
        for spec in (TABLE4, TABLE5, TABLE6):
            assert len(table_rows(spec)) == count


class TestRendering:
    def test_render_contains_all_names(self):
        text = render_table(TABLE4)
        for traits in all_traits():
            assert traits.name in text

    def test_render_aligned_header(self):
        text = render_table(TABLE5)
        lines = text.splitlines()
        assert lines[0].startswith("Table 5")
        assert set(lines[3]) <= {"-", " "}


class TestImplementedModels:
    def test_fresh_instances(self):
        first = implemented_models()
        second = implemented_models()
        assert all(a is not b for a, b in zip(first, second))

    def test_six_functional_schemes(self):
        assert len(implemented_models()) == 6
