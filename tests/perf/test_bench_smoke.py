"""Quick-mode perf smoke: the harness works and the codec stays fast.

Two guards run inside the tier-1 test session:

* the ``repro.perf`` CLI executes end-to-end in quick mode and emits a
  schema-valid ``BENCH_*.json`` report;
* the optimized codec is still decisively faster than the retained
  reference implementation.  The gate is *relative* (same machine, same
  process, same workload), so it does not flake with host speed — but if
  someone reverts or pessimises the fast paths, the ratio collapses to
  ~1× and this fails loudly.
"""

import json
import random
from time import perf_counter

from repro.core import bitvector as bv
from repro.core.line_formats import BitvectorLine
from repro.core.sentinel import (
    decode,
    decode_reference,
    encode,
    encode_reference,
)
from repro.perf.__main__ import main as perf_main
from repro.perf.report import SCHEMA_VERSION

#: The optimized codec must keep at least this edge over the reference.
#: Measured headroom is ~6-9x; 2x trips only on a genuine regression.
MIN_SPEEDUP = 2.0


def _workload(count=96, security_bytes=6, seed=5):
    rng = random.Random(seed)
    lines = []
    for _ in range(count):
        data = bytearray(rng.randrange(256) for _ in range(64))
        indices = rng.sample(range(64), security_bytes)
        lines.append(BitvectorLine(data, bv.mask_from_indices(indices)))
    return lines


def _best_of(func, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        func()
        best = min(best, perf_counter() - started)
    return best


def test_codec_fast_path_keeps_its_speedup():
    lines = _workload()
    encoded = [encode(line) for line in lines]

    def optimized():
        for line in lines:
            encode(line)
        for enc in encoded:
            decode(enc)

    def reference():
        for line in lines:
            encode_reference(line)
        for enc in encoded:
            decode_reference(enc)

    optimized()  # warm the codec-plan cache before timing
    fast = _best_of(optimized)
    slow = _best_of(reference)
    speedup = slow / fast
    assert speedup >= MIN_SPEEDUP, (
        f"codec fast path only {speedup:.2f}x the reference "
        f"(needs >= {MIN_SPEEDUP}x); a hot-path regression slipped in"
    )


def test_perf_cli_quick_run_writes_valid_report(tmp_path):
    exit_code = perf_main(
        [
            "--quick",
            "--scenario", "codec_encode",
            "--scenario", "codec_decode",
            "--scenario", "normalize",
            "--iterations", "2",
            "--warmup", "1",
            "--label", "smoke",
            "--output-dir", str(tmp_path),
        ]
    )
    assert exit_code == 0
    report_path = tmp_path / "BENCH_smoke.json"
    assert report_path.exists()
    report = json.loads(report_path.read_text())
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["label"] == "smoke"
    assert set(report["scenarios"]) == {"codec_encode", "codec_decode", "normalize"}
    for summary in report["scenarios"].values():
        assert summary["iterations"] == 2
        assert summary["ops_per_sec"] > 0
        assert summary["p50_s"] <= summary["p95_s"] * 1.0000001


def test_perf_cli_rejects_unknown_scenario(capsys):
    import pytest

    with pytest.raises(SystemExit):
        perf_main(["--scenario", "no_such_scenario", "--no-write"])
