"""Full-stack integration tests: runtime + hierarchy + allocator + OS.

These tie the layers together the way the examples do, and additionally
check that the *abstract* Califorms detection model used in the scheme
comparison agrees with what the simulated hardware actually raises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.califorms_model import CaliformsModel
from repro.core.exceptions import SecurityByteAccess
from repro.memory.swap import SwapManager
from repro.softstack.ctypes_model import (
    CHAR,
    INT,
    LISTING_1_STRUCT_A,
    Array,
    struct,
)
from repro.softstack.insertion import Policy
from repro.softstack.runtime import Process


def make_process(**kwargs):
    kwargs.setdefault("policy", Policy.FULL)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("heap_size", 1 << 14)
    return Process(**kwargs)


class TestHardwareVsAbstractModel:
    """The RegionSet-based CaliformsModel and the real simulator must make
    the same detection decisions for the same object layout."""

    def test_agreement_on_probe_grid(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        layout = handle.layout
        model = CaliformsModel()
        tracked = model.on_alloc(
            handle.address,
            layout.size,
            intra_spans=tuple((s.offset, s.size) for s in layout.spans),
        )
        for offset in range(0, layout.size - 1):
            address = handle.address + offset
            abstract = model.check_access(tracked, address, 1, False) is not None
            try:
                process.raw_read(address, 1)
                hardware = False
            except SecurityByteAccess:
                hardware = True
            assert hardware == abstract, f"disagreement at offset {offset}"


class TestSwapIntegration:
    def test_protection_survives_page_swap(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        span = handle.layout.spans[0]
        span_address = handle.address + span.offset

        # Push everything to DRAM, swap the page out and back in.
        hierarchy = process.cpu.hierarchy
        hierarchy.flush_all()
        swap = SwapManager(hierarchy.dram)
        swap.swap_out(handle.address)
        assert swap.is_swapped(handle.address)
        swap.swap_in(handle.address)

        with pytest.raises(SecurityByteAccess):
            process.raw_read(span_address, 1)

    def test_data_survives_page_swap(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        process.write_field(handle, "i", b"\x11\x22\x33\x44")
        hierarchy = process.cpu.hierarchy
        hierarchy.flush_all()
        swap = SwapManager(hierarchy.dram)
        swap.swap_out(handle.address)
        swap.swap_in(handle.address)
        assert process.read_field(handle, "i") == b"\x11\x22\x33\x44"


class TestEvictionPressure:
    def test_protection_survives_cache_thrashing(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        span = handle.layout.spans[0]
        # Thrash the hierarchy with unrelated traffic.
        for index in range(2048):
            process.cpu.hierarchy.store(0x500000 + index * 64, b"x")
        with pytest.raises(SecurityByteAccess):
            process.raw_read(handle.address + span.offset, 1)

    def test_field_data_survives_thrashing(self):
        process = make_process()
        handle = process.new(LISTING_1_STRUCT_A)
        process.write_field(handle, "d", b"12345678")
        for index in range(2048):
            process.cpu.hierarchy.store(0x500000 + index * 64, b"x")
        assert process.read_field(handle, "d") == b"12345678"


class TestWhitelistedCopySemantics:
    def test_struct_assignment_via_memcpy(self):
        process = make_process()
        source = process.new(LISTING_1_STRUCT_A)
        target = process.new("A")
        process.write_field(source, "c", b"\x41")
        process.write_field(source, "d", b"\x01" * 8)
        process.memcpy(target.address, source.address, source.layout.size)
        assert process.read_field(target, "c") == b"\x41"
        assert process.read_field(target, "d") == b"\x01" * 8
        # No privileged exception escaped to the program.
        assert process.cpu.counters.exceptions_raised == 0


@settings(max_examples=15, deadline=None)
@given(
    operations=st.lists(
        st.sampled_from(["alloc", "free", "read", "write"]),
        min_size=5,
        max_size=40,
    ),
    data=st.data(),
)
def test_allocator_fuzz_invariants(operations, data):
    """Random malloc/free/access interleavings preserve the safety
    invariants: live fields are accessible, span bytes and freed objects
    always trap."""
    process = make_process(heap_size=1 << 13)
    small = struct("Node", ("next", INT), ("payload", Array(CHAR, 24)))
    process.declare(small)
    live = []
    for operation in operations:
        if operation == "alloc":
            try:
                live.append(process.new("Node"))
            except Exception:
                pass  # heap exhaustion is fine under fuzz
        elif operation == "free" and live:
            victim = live.pop(data.draw(st.integers(0, len(live) - 1)))
            address = victim.address
            process.delete(victim)
            with pytest.raises(SecurityByteAccess):
                process.raw_read(
                    address + victim.layout.offset_of("next"), 4
                )
        elif operation == "read" and live:
            handle = live[data.draw(st.integers(0, len(live) - 1))]
            process.read_field(handle, "payload")
        elif operation == "write" and live:
            handle = live[data.draw(st.integers(0, len(live) - 1))]
            process.write_field(handle, "payload", b"z" * 24)
    # All remaining live objects still work and their spans still trap.
    for handle in live:
        process.read_field(handle, "next")
        for span in handle.layout.spans:
            with pytest.raises(SecurityByteAccess):
                process.raw_read(handle.address + span.offset, 1)
