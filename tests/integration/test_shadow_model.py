"""Differential fuzzing: the full hierarchy vs a flat shadow model.

The shadow model is the trivially-correct specification: a byte array
plus a set of blacklisted addresses.  Random interleavings of CFORM,
store and load operations — over a hierarchy small enough that lines
constantly spill through the sentinel codec and back — must behave
identically: same data, same security decisions, same K-map faults.
This is the strongest end-to-end statement that the format conversions
never lose or corrupt state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.cform import CformRequest
from repro.core.exceptions import CformUsageError
from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

_SPAN = 16 * 64  # the fuzzed address range: 16 lines


def tiny_hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        HierarchyConfig(
            l1_geometry=CacheGeometry(2 * 64, 1),  # evicts constantly
            l2_geometry=CacheGeometry(4 * 64, 2),
            l3_geometry=CacheGeometry(8 * 64, 2),
        )
    )


class ShadowModel:
    """Flat-memory specification of the Califorms semantics."""

    def __init__(self):
        self.data = bytearray(_SPAN)
        self.blacklist: set[int] = set()

    def cform(self, request: CformRequest) -> bool:
        """Apply the K-map; returns True when it must fault."""
        base = request.line_address
        changes = []
        for index in bv.iter_set_bits(request.mask):
            address = base + index
            want = bv.test_bit(request.attributes, index)
            have = address in self.blacklist
            if want == have:
                return True  # set-on-security or unset-on-regular
            changes.append((address, want))
        for address, want in changes:
            self.data[address] = 0
            if want:
                self.blacklist.add(address)
            else:
                self.blacklist.discard(address)
        return False

    def store(self, address: int, payload: bytes) -> bool:
        """Returns True when the store must fault (and not commit)."""
        span = range(address, address + len(payload))
        if any(a in self.blacklist for a in span):
            return True
        self.data[address : address + len(payload)] = payload
        return False

    def load(self, address: int, size: int) -> tuple[bytes, bool]:
        span = range(address, address + size)
        faulted = any(a in self.blacklist for a in span)
        value = bytes(
            0 if a in self.blacklist else self.data[a] for a in span
        )
        return value, faulted


def _random_operations(rng: random.Random, count: int):
    for _ in range(count):
        kind = rng.choice(("cform", "store", "load", "load", "store"))
        if kind == "cform":
            line = rng.randrange(_SPAN // 64) * 64
            attributes = rng.getrandbits(64)
            mask = rng.getrandbits(64) & rng.getrandbits(64)  # sparse-ish
            yield ("cform", CformRequest(line, attributes=attributes, mask=mask))
        else:
            address = rng.randrange(_SPAN - 8)
            size = rng.randint(1, 8)
            if address + size > _SPAN:
                size = _SPAN - address
            if kind == "store":
                payload = bytes(rng.randrange(256) for _ in range(size))
                yield ("store", address, payload)
            else:
                yield ("load", address, size)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_hierarchy_matches_shadow_model(seed):
    rng = random.Random(seed)
    hierarchy = tiny_hierarchy()
    shadow = ShadowModel()
    for operation in _random_operations(rng, 120):
        if operation[0] == "cform":
            request = operation[1]
            expected_fault = shadow.cform(request)
            if expected_fault:
                with pytest.raises(CformUsageError):
                    hierarchy.cform(request)
            else:
                hierarchy.cform(request)
        elif operation[0] == "store":
            _, address, payload = operation
            expected_fault = shadow.store(address, payload)
            records = hierarchy.store(address, payload)
            assert bool(records) == expected_fault, (seed, operation)
        else:
            _, address, size = operation
            expected_value, expected_fault = shadow.load(address, size)
            value, records = hierarchy.load(address, size)
            assert bool(records) == expected_fault, (seed, operation)
            assert value == expected_value, (seed, operation)

    # Final sweep: after all the churn, every line agrees byte-for-byte.
    for line_base in range(0, _SPAN, 64):
        expected_value, expected_fault = shadow.load(line_base, 64)
        value, records = hierarchy.load(line_base, 64)
        assert value == expected_value
        assert bool(records) == expected_fault


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_shadow_agreement_survives_flush(seed):
    """Same as above but with periodic full flushes to DRAM."""
    rng = random.Random(seed)
    hierarchy = tiny_hierarchy()
    shadow = ShadowModel()
    for step, operation in enumerate(_random_operations(rng, 60)):
        if step % 13 == 0:
            hierarchy.flush_all()
        if operation[0] == "cform":
            request = operation[1]
            if shadow.cform(request):
                with pytest.raises(CformUsageError):
                    hierarchy.cform(request)
            else:
                hierarchy.cform(request)
        elif operation[0] == "store":
            _, address, payload = operation
            assert bool(hierarchy.store(address, payload)) == shadow.store(
                address, payload
            )
        else:
            _, address, size = operation
            expected_value, expected_fault = shadow.load(address, size)
            value, records = hierarchy.load(address, size)
            assert value == expected_value
            assert bool(records) == expected_fault
