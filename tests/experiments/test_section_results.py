"""SectionResult: JSON normalisation and exact serialisation round-trips."""

from dataclasses import dataclass

import pytest

from repro.experiments.results import RESULT_SCHEMA, SectionResult, jsonable


@dataclass(frozen=True)
class _Point:
    x: int
    label: str


class TestJsonable:
    def test_dataclasses_become_dicts_at_any_depth(self):
        value = jsonable({"points": [_Point(1, "a")], "top": _Point(2, "b")})
        assert value == {
            "points": [{"x": 1, "label": "a"}],
            "top": {"x": 2, "label": "b"},
        }

    def test_int_keys_and_tuples_normalise(self):
        assert jsonable({1: (2, 3)}) == {"1": [2, 3]}

    def test_sets_become_sorted_lists(self):
        assert jsonable({"tags": {"b", "a"}}) == {"tags": ["a", "b"]}

    def test_unencodable_values_fail_loudly(self):
        with pytest.raises(TypeError, match="non-JSON"):
            jsonable({"handle": object()})


class TestRoundTrip:
    def make(self):
        return SectionResult(
            name="fig04",
            title="Figure 4 — fixed padding sweep",
            data={"per_size": {1: _Point(3, "one")}, "sizes": (1, 2)},
            markdown="body text",
            tags=("figure", "trace"),
        )

    def test_data_is_normalised_at_construction(self):
        result = self.make()
        assert result.data == {
            "per_size": {"1": {"x": 3, "label": "one"}},
            "sizes": [1, 2],
        }

    def test_json_round_trip_is_exact(self):
        result = self.make()
        assert SectionResult.from_json(result.to_json()) == result

    def test_dict_round_trip_is_exact(self):
        result = self.make()
        assert SectionResult.from_dict(result.to_dict()) == result

    def test_schema_is_stamped_and_checked(self):
        document = self.make().to_dict()
        assert document["schema"] == RESULT_SCHEMA
        document["schema"] = "repro-section-result/v999"
        with pytest.raises(ValueError, match="unsupported results schema"):
            SectionResult.from_dict(document)
