"""Corpus-resolved experiment sections: identical numbers, zero re-recording."""

import pytest

from repro.corpus.store import CorpusStore
from repro.experiments import (
    fig04_padding_sweep,
    fig10_extra_latency,
    mc_contention,
    trace_checks,
)

QUICK = 6_000
SMALL_SET = ["hmmer", "mcf"]


@pytest.fixture()
def store(tmp_path):
    return CorpusStore(str(tmp_path / "corpus"))


class TestFiguresThroughTheCorpus:
    def test_fig10_equals_live(self, store):
        live = fig10_extra_latency.run(instructions=QUICK, benchmarks=SMALL_SET)
        corpus = fig10_extra_latency.run(
            instructions=QUICK, benchmarks=SMALL_SET, store=store
        )
        assert corpus == live

    def test_fig04_equals_live_and_second_run_replays(self, store):
        live = fig04_padding_sweep.run(
            instructions=QUICK, benchmarks=SMALL_SET, sizes=(1, 3)
        )
        first = fig04_padding_sweep.run(
            instructions=QUICK, benchmarks=SMALL_SET, sizes=(1, 3), store=store
        )
        assert first == live
        built = store.built
        again = fig04_padding_sweep.run(
            instructions=QUICK, benchmarks=SMALL_SET, sizes=(1, 3), store=store
        )
        assert again == live
        assert store.built == built  # zero re-recording on the second run

    def test_figures_share_recorded_baselines(self, store):
        fig10_extra_latency.run(
            instructions=QUICK, benchmarks=SMALL_SET, store=store
        )
        built = store.built
        # Figure 4's baselines are the same recorded objects.
        fig04_padding_sweep.run(
            instructions=QUICK, benchmarks=SMALL_SET, sizes=(1,), store=store
        )
        # Only the fixed-padding variants are new; the baselines hit.
        assert store.built == built + len(SMALL_SET)


class TestTraceChecksSection:
    def test_records_then_hits(self, store):
        first = trace_checks.run(instructions=QUICK, store=store)
        assert all(check.source == "recorded" for check in first)
        assert all(check.bit_identical for check in first)
        second = trace_checks.run(instructions=QUICK, store=store)
        assert all(check.source == "corpus hit" for check in second)
        assert [c.trace_slowdown for c in second] == [
            c.trace_slowdown for c in first
        ]

    def test_render_reports_source(self, store):
        text = trace_checks.render(trace_checks.run(QUICK, store=store))
        assert "recorded" in text
        assert "replay==recorded" in text

    def test_standalone_uses_ephemeral_store(self):
        checks = trace_checks.run(instructions=QUICK)
        assert all(check.bit_identical for check in checks)


class TestMulticoreSection:
    def test_corpus_and_ephemeral_agree(self, store):
        quick = 2_000
        via_store = mc_contention.run(instructions=quick, store=store)
        ephemeral = mc_contention.run(instructions=quick)
        assert [
            (row.scenario, row.solo_l3_misses, row.contended_l3_misses)
            for row in via_store
        ] == [
            (row.scenario, row.solo_l3_misses, row.contended_l3_misses)
            for row in ephemeral
        ]
        built = store.built
        mc_contention.run(instructions=quick, store=store)
        assert store.built == built  # replayed from the corpus
