"""The experiment registry: completeness, selection, ordering, errors."""

import pytest

from repro.experiments.context import RunContext
from repro.experiments.registry import (
    KNOWN_NEEDS,
    UnknownExperimentError,
    all_experiments,
    all_tags,
    experiment,
    get,
    registry,
    section,
    select,
)
from repro.experiments.results import SectionResult

#: The pre-registry runner's section list, in report order.  The
#: registry must cover exactly these titles — EXPERIMENTS.md's section
#: set is a compatibility surface.
LEGACY_SECTIONS = (
    ("fig03", "Figure 3 — struct density census"),
    ("fig04", "Figure 4 — fixed padding sweep"),
    ("table1", "Table 1 — CFORM K-map"),
    ("table2", "Table 2 — VLSI costs"),
    ("table3", "Table 3 — simulated system"),
    ("fig10", "Figure 10 — +1-cycle L2/L3 latency"),
    ("fig11", "Figure 11 — opportunistic & full policies"),
    ("fig12", "Figure 12 — intelligent policy"),
    ("tables456", "Tables 4/5/6 — related-work comparison"),
    ("sec7", "Section 7.3 — derandomization"),
    ("table7", "Table 7 — L1 variants"),
    ("traces", "Trace engine — figures from recorded traces"),
    ("multicore", "Multi-core — shared-L3 contention under extra latency"),
    (
        "loadgen_contention",
        "Load generator — multi-tenant contention vs solo tenants",
    ),
)


class TestCompleteness:
    def test_every_legacy_section_is_registered(self):
        names_and_titles = [
            (exp.name, exp.title) for exp in all_experiments()
        ]
        assert names_and_titles == list(LEGACY_SECTIONS)

    def test_registry_mapping_matches(self):
        mapping = registry()
        assert set(mapping) == {name for name, _ in LEGACY_SECTIONS}
        for name, exp in mapping.items():
            assert exp.name == name

    def test_needs_are_declared_from_the_known_vocabulary(self):
        for exp in all_experiments():
            assert exp.needs <= KNOWN_NEEDS

    def test_trace_consuming_sections_declare_corpus(self):
        for name in ("fig04", "fig10", "fig11", "traces", "multicore"):
            assert "corpus" in get(name).needs

    def test_tags_cover_the_documented_axes(self):
        assert {"figure", "table", "trace", "multicore"} <= all_tags()


class TestSelection:
    def test_empty_selection_is_everything_in_order(self):
        assert select() == all_experiments()

    def test_selection_by_name_works(self):
        chosen = select(["fig10"])
        assert [exp.name for exp in chosen] == ["fig10"]

    def test_selection_preserves_report_order(self):
        chosen = select(["sec7", "fig04", "table1"])
        assert [exp.name for exp in chosen] == ["fig04", "table1", "sec7"]

    def test_selection_by_tag(self):
        chosen = select(tags=["table"])
        assert [exp.name for exp in chosen] == [
            "table1", "table2", "table3", "tables456", "table7"
        ]

    def test_names_and_tags_union_without_duplicates(self):
        chosen = select(["fig04"], tags=["trace"])
        names = [exp.name for exp in chosen]
        assert names.count("fig04") == 1
        assert "traces" in names and "multicore" in names

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(UnknownExperimentError, match="fig03"):
            select(["fig99"])

    def test_unknown_tag_lists_known_tags(self):
        with pytest.raises(UnknownExperimentError, match="figure"):
            select(tags=["nope"])


class TestRegistration:
    def test_duplicate_name_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            experiment(name="fig03", title="clone")(lambda ctx: None)

    def test_unknown_needs_are_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="unknown needs"):
            experiment(name="x-bad", title="x", needs=("gpu",))

    def test_run_type_checks_the_result(self):
        exp = get("fig03")
        bad = type(exp)(
            name=exp.name, title=exp.title, fn=lambda ctx: "not a result"
        )
        with pytest.raises(TypeError, match="SectionResult"):
            bad.run(RunContext())

    def test_section_helper_stamps_registry_identity(self):
        result = section("fig10", {"x": 1}, "body")
        assert isinstance(result, SectionResult)
        assert result.title == get("fig10").title
        assert set(result.tags) == get("fig10").tags
