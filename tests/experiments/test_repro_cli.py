"""`python -m repro`: subcommand smoke tests and report determinism.

Everything runs ``repro.cli.main`` in-process (no subprocesses) on the
cheap, trace-free sections, so the tier-1 suite stays fast; the full
quick-profile pipeline (all sections, corpus-backed, twice) lives behind
the ``slow`` marker with the other minutes-scale figure checks.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.results import SectionResult
from repro.experiments.runner import run_all

#: Sections with no trace recording and sub-second runtimes.
CHEAP = ["fig03", "table1", "table2", "table3", "sec7", "table7"]


def run_cli(tmp_path, *extra: str, sections: list[str] | None = None) -> str:
    sections = CHEAP if sections is None else sections
    tmp_path.mkdir(parents=True, exist_ok=True)
    output = tmp_path / "EXPERIMENTS.md"
    code = main(
        [
            "run", *sections,
            "--no-corpus",
            "--output", str(output),
            "--results-dir", str(tmp_path / "results"),
            *extra,
        ]
    )
    assert code == 0
    return output.read_text()


class TestRunSubcommand:
    def test_writes_report_with_selected_sections(self, tmp_path):
        text = run_cli(tmp_path, sections=["fig03", "table1"])
        assert "## Figure 3 — struct density census" in text
        assert "## Table 1 — CFORM K-map" in text
        assert "## Figure 10" not in text

    def test_writes_json_results_that_round_trip(self, tmp_path):
        run_cli(tmp_path, sections=["fig03", "table3"])
        results_dir = tmp_path / "results"
        for name in ("fig03", "table3"):
            document = json.loads((results_dir / f"{name}.json").read_text())
            result = SectionResult.from_dict(document)
            assert result.name == name
            assert result.markdown in run_cli(
                tmp_path, sections=[name]
            )
        index = json.loads((results_dir / "index.json").read_text())
        assert index["profile"] == "quick"

    def test_fig03_json_carries_structured_data(self, tmp_path):
        run_cli(tmp_path, sections=["fig03"])
        document = json.loads((tmp_path / "results" / "fig03.json").read_text())
        census = document["data"]["census"]["spec"]
        assert census["struct_count"] > 0
        assert 0.0 < census["padded_fraction"] < 1.0

    def test_no_results_flag_skips_json(self, tmp_path):
        run_cli(tmp_path, "--no-results", sections=["table1"])
        assert not (tmp_path / "results").exists()

    def test_tag_selection(self, tmp_path):
        output = tmp_path / "tables.md"
        code = main(
            [
                "run", "--tag", "table", "--no-corpus",
                "--output", str(output), "--no-results",
            ]
        )
        assert code == 0
        text = output.read_text()
        for title in ("Table 1", "Table 2", "Table 3", "Tables 4/5/6", "Table 7"):
            assert f"## {title}" in text

    def test_unknown_name_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig99", "--no-corpus", "--no-results"])
        assert excinfo.value.code == 2
        assert "unknown experiment 'fig99'" in capsys.readouterr().err

    def test_unknown_tag_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--tag", "nope", "--no-corpus", "--no-results"])
        assert excinfo.value.code == 2
        assert "unknown tag" in capsys.readouterr().err

    def test_partial_selection_defaults_to_partial_artifacts(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "table1", "--no-corpus"]) == 0
        assert (tmp_path / "EXPERIMENTS.partial.md").exists()
        assert not (tmp_path / "EXPERIMENTS.md").exists()
        assert (tmp_path / "results" / "partial" / "table1.json").exists()
        assert not (tmp_path / "results" / "index.json").exists()

    def test_explicit_output_beats_partial_defaulting(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["run", "table1", "--no-corpus", "--no-results",
             "--output", "EXPERIMENTS.md"]
        )
        assert code == 0
        assert (tmp_path / "EXPERIMENTS.md").exists()

    def test_nonpositive_jobs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "table1", "--no-corpus", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_list_prints_every_experiment(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig03", "fig10", "tables456", "traces", "multicore"):
            assert name in out


class TestDeterminism:
    def test_two_quick_runs_are_byte_identical(self, tmp_path):
        first = run_cli(tmp_path / "a")
        second = run_cli(tmp_path / "b")
        assert first == second

    def test_results_json_is_byte_identical_across_runs(self, tmp_path):
        run_cli(tmp_path / "a")
        run_cli(tmp_path / "b")
        for name in CHEAP + ["index"]:
            a = (tmp_path / "a" / "results" / f"{name}.json").read_bytes()
            b = (tmp_path / "b" / "results" / f"{name}.json").read_bytes()
            assert a == b, name


class TestDelegation:
    def test_trace_subcommand_delegates(self, capsys):
        assert main(["trace", "list"]) == 0
        assert "server-churn" in capsys.readouterr().out

    def test_corpus_subcommand_delegates(self, capsys):
        assert main(["corpus", "key"]) == 0
        out = capsys.readouterr().out.strip()
        assert len(out) == 64 and int(out, 16) >= 0

    def test_perf_subcommand_delegates(self, capsys):
        assert main(["perf", "--list"]) == 0
        assert "codec_encode" in capsys.readouterr().out

    def test_loadgen_subcommand_delegates(self, capsys):
        assert main(["loadgen", "list"]) == 0
        assert "uniform-churn" in capsys.readouterr().out

    def test_serve_subcommand_delegates(self, capsys):
        with pytest.raises(SystemExit) as outcome:
            main(["serve", "--help"])
        assert outcome.value.code == 0
        assert "--results-dir" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_reports_package_version(self, capsys):
        from repro import package_version

        with pytest.raises(SystemExit) as outcome:
            main(["--version"])
        assert outcome.value.code == 0
        assert capsys.readouterr().out.strip() == (
            f"repro {package_version()}"
        )

    def test_version_matches_dunder_in_source_runs(self):
        import repro

        # Source-tree runs fall back to __version__; an installed
        # package must agree with it (pyproject is the other copy).
        assert repro.package_version() == repro.__version__


class TestSetSelection:
    def run_set(self, tmp_path, tag: str) -> dict:
        output = tmp_path / f"EXPERIMENTS.{tag}.md"
        results_dir = tmp_path / f"results-{tag}"
        code = main(
            [
                "run", "--set", "uniform-churn",
                "--corpus", str(tmp_path / "corpus"),
                "--output", str(output),
                "--results-dir", str(results_dir),
            ]
        )
        assert code == 0
        assert "## Load generator" in output.read_text()
        return json.loads(
            (results_dir / "loadgen_contention.json").read_text()
        )

    def test_set_selects_the_loadgen_section(self, tmp_path):
        document = self.run_set(tmp_path, "first")
        rows = document["data"]["rows"]
        assert [row["scenario"] for row in rows] == ["uniform-churn"]
        assert document["data"]["sets"] == ["uniform-churn"]
        assert rows[0]["source"] == "recorded"

    def test_second_invocation_is_a_pure_corpus_hit(self, tmp_path):
        self.run_set(tmp_path, "first")
        document = self.run_set(tmp_path, "second")
        rows = document["data"]["rows"]
        assert all(row["source"] == "corpus hit" for row in rows)

    def test_unknown_set_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--set", "no-such-set", "--no-corpus"])
        assert excinfo.value.code == 2
        assert "--set" in capsys.readouterr().err


class TestLegacyShims:
    def test_run_all_returns_titles_to_bodies(self, tmp_path):
        # The legacy dict API rides on the registry now; spot-check via
        # a direct executor call on a cheap selection instead of a full
        # run (which the slow suite covers).
        from repro.experiments.context import RunContext
        from repro.experiments.registry import select
        from repro.experiments.runner import execute

        ctx = RunContext()  # quick, no corpus
        results = execute(select(["fig03", "table1"]), ctx)
        legacy_shape = {r.title: r.markdown for r in results}
        assert list(legacy_shape) == [
            "Figure 3 — struct density census",
            "Table 1 — CFORM K-map",
        ]
        assert all(isinstance(body, str) for body in legacy_shape.values())

    def test_run_all_signature_unchanged(self):
        import inspect

        parameters = inspect.signature(run_all).parameters
        assert list(parameters) == ["full", "jobs", "corpus_root"]


@pytest.mark.slow
class TestFullPipeline:
    def test_full_quick_run_is_deterministic_and_corpus_backed(self, tmp_path):
        corpus = str(tmp_path / "corpus")

        def run_once(tag: str) -> tuple[str, bytes]:
            output = tmp_path / f"EXPERIMENTS.{tag}.md"
            results_dir = tmp_path / f"results-{tag}"
            code = main(
                [
                    "run", "--jobs", "2", "--corpus", corpus,
                    "--output", str(output),
                    "--results-dir", str(results_dir),
                ]
            )
            assert code == 0
            return (
                output.read_text(),
                (results_dir / "traces.json").read_bytes(),
            )

        first_text, _ = run_once("first")
        second_text, second_traces = run_once("second")
        # First run records; the second replays pure corpus hits and is
        # the stable fixed point (recorded/corpus-hit labels settle).
        data = json.loads(second_traces)["data"]
        checks = data["checks"]
        assert checks and all(
            check["source"] == "corpus hit" for check in checks
        )
        assert data["all_bit_identical"] is True
        third_text, third_traces = run_once("third")
        assert second_text == third_text
        assert second_traces == third_traces
