"""Shape tests for every experiment driver (quick scales)."""

import pytest

from repro.experiments import (
    fig03_struct_density,
    fig04_padding_sweep,
    fig10_extra_latency,
    fig11_policies,
    fig12_intelligent,
    sec7_derandomization,
    tables,
)

QUICK = 30_000
SMALL_SET = ["hmmer", "gobmk", "mcf", "perlbench"]


class TestFig3:
    def test_padded_fractions_near_paper(self):
        results = fig03_struct_density.run()
        assert abs(results["spec"].padded_fraction - 0.457) < 0.05
        assert abs(results["v8"].padded_fraction - 0.410) < 0.05

    def test_histograms_normalised(self):
        results = fig03_struct_density.run()
        for census in results.values():
            assert sum(census.histogram) == pytest.approx(1.0)

    def test_render(self):
        text = fig03_struct_density.render(fig03_struct_density.run())
        assert "paper 0.457" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_padding_sweep.run(
            instructions=QUICK, benchmarks=SMALL_SET, sizes=(1, 4, 7)
        )

    def test_positive_slowdowns(self, result):
        for average in result.averages().values():
            assert average > 0

    def test_larger_padding_costs_more(self, result):
        averages = result.averages()
        assert averages[7] > averages[1]

    def test_render(self, result):
        assert "Figure 4" in fig04_padding_sweep.render(result)


class TestFig10:
    def test_all_positive_and_small(self):
        result = fig10_extra_latency.run(instructions=QUICK, benchmarks=SMALL_SET)
        for entry in result.per_benchmark:
            assert 0 < entry.mean < 0.06

    def test_compute_bound_least_affected(self):
        result = fig10_extra_latency.run(
            instructions=QUICK, benchmarks=["hmmer", "mcf"]
        )
        assert result.benchmark("hmmer").mean < result.benchmark("mcf").mean


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_policies.run(instructions=QUICK, benchmarks=SMALL_SET)

    def test_seven_configurations(self, result):
        assert len(result.configurations) == 7

    def test_cform_costs_more_than_layout_alone(self, result):
        averages = result.averages()
        assert averages["full 1-7B +CFORM"] > averages["full 1-7B"]

    def test_render_mentions_outliers(self, result):
        assert "outliers" in fig11_policies.render(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_intelligent.run(instructions=QUICK, benchmarks=SMALL_SET)

    def test_intelligent_cheaper_than_full(self, result):
        fig11_result = fig11_policies.run(instructions=QUICK, benchmarks=SMALL_SET)
        assert (
            result.averages()["intelligent 1-7B"]
            < fig11_result.averages()["full 1-7B"]
        )

    def test_gobmk_is_the_cform_outlier(self, result):
        suite = result.configurations["intelligent 1-7B +CFORM"]
        gobmk = suite.benchmark("gobmk").mean
        assert gobmk == max(entry.mean for entry in suite.per_benchmark)


class TestTables:
    def test_table1_matches_kmap(self):
        rows = tables.table1_kmap()
        outcomes = {
            (row["initial"], row["operation"]): row["outcome"] for row in rows
        }
        assert outcomes[("Regular Byte", "Set, Allow")] == "Security Byte"
        assert outcomes[("Regular Byte", "Unset, Allow")] == "Exception"
        assert outcomes[("Security Byte", "Set, Allow")] == "Exception"
        assert outcomes[("Security Byte", "Unset, Allow")] == "Regular Byte"
        assert outcomes[("Security Byte", "X, Disallow")] == "Security Byte"
        assert outcomes[("Regular Byte", "X, Disallow")] == "Regular Byte"

    def test_renders(self):
        assert "Table 1" in tables.render_table1()
        assert "Table 2" in tables.render_table2()
        assert "32KB" in tables.render_table3()
        assert "Table 7" in tables.render_table7()
        combined = tables.render_tables456()
        assert "Table 4" in combined and "Califorms" in combined
        assert "DETECT" in combined


class TestSection7:
    def test_analytic_curves(self):
        result = sec7_derandomization.run(trials=50)
        assert result.scan_curve[250] < 1e-11
        assert result.guess_curve[3] == pytest.approx(1 / 343)

    def test_simulations_bounded(self):
        result = sec7_derandomization.run(trials=50)
        assert 0 <= result.simulated_scan_success <= 1
        assert 0 <= result.simulated_guess_success <= 0.05

    def test_render(self):
        assert "derandomization" in sec7_derandomization.render(
            sec7_derandomization.run(trials=20)
        )
