"""RunContext: profile defaulting, corpus resolution, RNG namespaces."""

import pickle

import pytest

from repro.corpus.store import CorpusStore
from repro.experiments.context import PROFILES, RunContext


class TestDefaults:
    def test_quick_profile_is_the_default(self):
        ctx = RunContext()
        assert ctx.profile == "quick"
        assert (ctx.instructions, ctx.seeds) == PROFILES["quick"]
        assert ctx.jobs == 1
        assert ctx.store is None

    def test_create_full_profile(self, tmp_path):
        ctx = RunContext.create(
            "full", corpus=str(tmp_path / "corpus"), jobs=4
        )
        assert (ctx.instructions, ctx.seeds) == (200_000, (0, 1, 2))
        assert ctx.jobs == 4

    def test_create_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            RunContext.create("medium")

    def test_create_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            RunContext.create("quick", no_corpus=True, jobs=0)

    def test_piecemeal_overrides_beat_the_profile(self):
        ctx = RunContext.create(
            "quick", no_corpus=True, instructions=1234, seeds=(7, 8)
        )
        assert ctx.instructions == 1234
        assert ctx.seeds == (7, 8)

    def test_with_overrides_returns_a_new_frozen_copy(self):
        ctx = RunContext()
        other = ctx.with_overrides(jobs=3)
        assert other.jobs == 3 and ctx.jobs == 1
        with pytest.raises(Exception):
            ctx.jobs = 2  # frozen


class TestCorpusResolution:
    def test_no_corpus_means_no_store(self):
        ctx = RunContext.create("quick", no_corpus=True)
        assert ctx.corpus_root is None
        assert ctx.store is None

    def test_explicit_corpus_root_wins(self, tmp_path):
        root = str(tmp_path / "corpus")
        ctx = RunContext.create("quick", corpus=root)
        assert ctx.corpus_root == root
        assert isinstance(ctx.store, CorpusStore)
        assert ctx.store.root == root

    def test_default_resolution_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "env-corpus"))
        ctx = RunContext.create("quick")
        assert ctx.corpus_root == str(tmp_path / "env-corpus")

    def test_store_handle_is_cached(self, tmp_path):
        ctx = RunContext.create("quick", corpus=str(tmp_path))
        assert ctx.store is ctx.store

    def test_context_pickles_for_worker_processes(self, tmp_path):
        ctx = RunContext.create("quick", corpus=str(tmp_path), jobs=2)
        _ = ctx.store  # populate the cache; must not break pickling
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert clone.store.root == ctx.store.root


class TestRngNamespace:
    def test_namespaces_are_deterministic(self):
        ctx = RunContext()
        assert ctx.seed_for("fig10") == ctx.seed_for("fig10")
        assert ctx.rng("fig10").random() == ctx.rng("fig10").random()

    def test_namespaces_are_independent(self):
        ctx = RunContext()
        assert ctx.seed_for("fig10") != ctx.seed_for("fig11")

    def test_base_seed_shifts_every_namespace(self):
        base = RunContext()
        shifted = RunContext(rng_seed=1)
        assert base.seed_for("fig10") != shifted.seed_for("fig10")
