"""The ``repro run --check`` regression gate (repro.experiments.check)."""

import json
import os

import pytest

from repro.experiments.check import (
    DEFAULT_IGNORE_KEYS,
    TOLERANCES_FILE,
    CheckReport,
    Drift,
    Tolerances,
    check_outcomes,
    diff_data,
    update_reference,
)
from repro.experiments.results import SectionFailure, SectionResult


def result(name="fig", data=None):
    return SectionResult(
        name=name,
        title=f"Title of {name}",
        data={"metric": 1.0, "rows": [1, 2, 3]} if data is None else data,
        markdown="body",
        tags=("test",),
    )


class TestDiffData:
    def test_identical_payloads_have_no_drift(self):
        data = {"a": 1, "b": [1.5, {"c": "x"}], "d": None}
        assert diff_data(data, data, Tolerances(), "s") == []

    def test_numeric_change_is_reported_with_its_path(self):
        drifts = diff_data(
            {"outer": [{"metric": 2.0}]},
            {"outer": [{"metric": 3.0}]},
            Tolerances(),
            "s",
        )
        assert [d.path for d in drifts] == ["data.outer[0].metric"]
        assert drifts[0].kind == "changed"
        assert (drifts[0].reference, drifts[0].measured) == (2.0, 3.0)

    def test_ignored_provenance_keys_may_move_freely(self):
        assert "source" in DEFAULT_IGNORE_KEYS
        drifts = diff_data(
            {"source": "recorded", "metric": 5},
            {"source": "corpus hit", "metric": 5},
            Tolerances(),
            "s",
        )
        assert drifts == []

    def test_timing_and_telemetry_keys_are_ignored_by_default(self):
        # The observability stanza (wall-clock + sink path) must never
        # gate a run: a telemetry-enabled run drifts on every timing
        # key by construction.
        for key in ("timing", "telemetry", "seconds", "duration_s",
                    "elapsed_s", "wall_s"):
            assert key in DEFAULT_IGNORE_KEYS
        drifts = diff_data(
            {"metric": 5, "timing": {"fig03": 0.01}, "telemetry": None,
             "seconds": 1.0},
            {"metric": 5, "timing": {"fig03": 9.99},
             "telemetry": "results/telemetry", "seconds": 2.0},
            Tolerances(),
            "s",
        )
        assert drifts == []

    def test_per_metric_tolerance_budget_is_honoured(self):
        tolerances = Tolerances(metrics={"noisy": {"rel_tol": 0.10}})
        within = diff_data({"noisy": 100.0}, {"noisy": 109.0}, tolerances, "s")
        beyond = diff_data({"noisy": 100.0}, {"noisy": 112.0}, tolerances, "s")
        exact = diff_data({"other": 100.0}, {"other": 100.5}, tolerances, "s")
        assert within == []
        assert [d.path for d in beyond] == ["data.noisy"]
        assert [d.path for d in exact] == ["data.other"]

    def test_metric_name_reaches_through_lists(self):
        # The budget is addressed by the nearest enclosing dict key even
        # when the values sit inside a list.
        tolerances = Tolerances(metrics={"noisy": {"abs_tol": 1.0}})
        drifts = diff_data(
            {"noisy": [10.0, 20.0]}, {"noisy": [10.5, 20.5]}, tolerances, "s"
        )
        assert drifts == []

    def test_structure_changes_are_drift(self):
        gone = diff_data({"a": 1, "b": 2}, {"a": 1}, Tolerances(), "s")
        new = diff_data({"a": 1}, {"a": 1, "b": 2}, Tolerances(), "s")
        length = diff_data({"rows": [1, 2]}, {"rows": [1]}, Tolerances(), "s")
        assert [d.kind for d in gone] == ["missing"]
        assert [d.kind for d in new] == ["added"]
        assert [(d.path, d.kind) for d in length] == [
            ("data.rows.length", "changed")
        ]

    def test_bool_int_type_flip_is_drift_despite_equal_value(self):
        assert diff_data({"flag": True}, {"flag": 1}, Tolerances(), "s")
        assert diff_data({"flag": 1}, {"flag": True}, Tolerances(), "s")

    def test_nan_matches_only_nan(self):
        nan = float("nan")
        assert diff_data({"v": nan}, {"v": nan}, Tolerances(), "s") == []
        assert diff_data({"v": nan}, {"v": 1.0}, Tolerances(), "s")


class TestTolerancesSchema:
    def test_round_trips_through_its_document(self):
        tolerances = Tolerances(
            ignore_keys=frozenset({"source", "host"}),
            rel_tol=1e-9,
            metrics={"noisy": {"rel_tol": 0.05, "abs_tol": 0.1}},
        )
        again = Tolerances.from_dict(tolerances.to_dict())
        assert again == tolerances
        assert again.budget("noisy") == (0.05, 0.1)
        assert again.budget("other") == (1e-9, 0.0)

    def test_load_falls_back_to_defaults_without_a_file(self, tmp_path):
        assert Tolerances.load(str(tmp_path)) == Tolerances()

    def test_load_reads_the_committed_schema(self, tmp_path):
        path = tmp_path / TOLERANCES_FILE
        path.write_text(
            json.dumps(
                Tolerances(ignore_keys=frozenset({"host"})).to_dict()
            )
        )
        assert Tolerances.load(str(tmp_path)).ignore_keys == {"host"}

    def test_rejects_unknown_schema_tags(self):
        with pytest.raises(ValueError, match="unsupported tolerance schema"):
            Tolerances.from_dict({"schema": "something/v9"})


class TestCheckOutcomes:
    def test_clean_run_matches_its_own_reference(self, tmp_path):
        outcomes = [result("a"), result("b")]
        update_reference(outcomes, str(tmp_path))
        report = check_outcomes(outcomes, str(tmp_path))
        assert report.ok
        assert report.sections == 2
        assert report.to_index()["status"] == "ok"
        assert report.summary() == [
            f"check: 2 section(s) match {tmp_path}/"
        ]

    def test_metric_drift_fails_the_gate(self, tmp_path):
        update_reference([result("a")], str(tmp_path))
        moved = result("a", data={"metric": 2.0, "rows": [1, 2, 3]})
        report = check_outcomes([moved], str(tmp_path))
        assert not report.ok
        index = report.to_index()
        assert index["status"] == "drift"
        assert index["drifts"][0]["path"] == "data.metric"
        assert any("data.metric" in line for line in report.summary())

    def test_missing_reference_document_is_drift(self, tmp_path):
        report = check_outcomes([result("unseeded")], str(tmp_path))
        assert [d.kind for d in report.drifts] == ["missing-reference"]

    def test_failed_section_is_drift(self, tmp_path):
        failure = SectionFailure(name="a", title="A", error="boom")
        report = check_outcomes([failure], str(tmp_path))
        assert [d.kind for d in report.drifts] == ["section-failed"]
        assert "boom" in report.drifts[0].describe()

    def test_check_uses_the_committed_tolerances(self, tmp_path):
        update_reference([result("a")], str(tmp_path))
        schema = tmp_path / TOLERANCES_FILE
        schema.write_text(
            json.dumps(
                Tolerances(metrics={"metric": {"abs_tol": 5.0}}).to_dict()
            )
        )
        moved = result("a", data={"metric": 4.0, "rows": [1, 2, 3]})
        assert check_outcomes([moved], str(tmp_path)).ok


class TestUpdateReference:
    def test_writes_documents_and_schema_once(self, tmp_path):
        paths = update_reference([result("a")], str(tmp_path))
        assert sorted(os.path.basename(p) for p in paths) == [
            "a.json", TOLERANCES_FILE,
        ]
        # The reference documents are full SectionResult files.
        reloaded = SectionResult.from_json((tmp_path / "a.json").read_text())
        assert reloaded == result("a")
        # A second update rewrites documents but keeps the schema.
        again = update_reference([result("a")], str(tmp_path))
        assert [os.path.basename(p) for p in again] == ["a.json"]

    def test_refuses_to_seed_from_a_failed_run(self, tmp_path):
        failure = SectionFailure(name="a", title="A", error="boom")
        with pytest.raises(ValueError, match="failed section"):
            update_reference([result("b"), failure], str(tmp_path))
        assert not (tmp_path / "b.json").exists()


class TestCommittedReference:
    """The repo's own committed gate artifacts stay loadable."""

    REFERENCE = os.path.join(
        os.path.dirname(__file__), "..", "..", "results", "reference"
    )

    def test_committed_schema_parses(self):
        tolerances = Tolerances.load(self.REFERENCE)
        assert "source" in tolerances.ignore_keys

    def test_committed_documents_parse_and_cover_the_registry(self):
        from repro.experiments.registry import all_experiments

        names = {
            name[: -len(".json")]
            for name in os.listdir(self.REFERENCE)
            if name.endswith(".json") and name != TOLERANCES_FILE
        }
        assert names == {e.name for e in all_experiments()}
        for name in sorted(names):
            path = os.path.join(self.REFERENCE, f"{name}.json")
            document = SectionResult.from_json(open(path).read())
            assert document.name == name

    def test_reference_matches_reference(self):
        # Self-consistency: the committed documents pass their own gate.
        outcomes = [
            SectionResult.from_json(
                open(os.path.join(self.REFERENCE, name)).read()
            )
            for name in sorted(os.listdir(self.REFERENCE))
            if name.endswith(".json") and name != TOLERANCES_FILE
        ]
        assert check_outcomes(outcomes, self.REFERENCE).ok


class TestDriftRendering:
    def test_describe_covers_every_kind(self):
        cases = [
            Drift("s", "data.x", "changed", 1, 2),
            Drift("s", "data.x", "missing", 1, None),
            Drift("s", "data.x", "added", None, 2),
            Drift("s", "section", "section-failed", None, "boom"),
            Drift("s", "section", "missing-reference"),
        ]
        for drift in cases:
            assert "s" in drift.describe()

    def test_report_summary_lists_each_drift(self):
        report = CheckReport(
            reference_dir="ref",
            sections=3,
            drifts=(Drift("s", "data.x", "changed", 1, 2),),
        )
        assert len(report.summary()) == 2
