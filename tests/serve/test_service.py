"""repro.serve end-to-end: a live service over real sockets.

One module-scoped server runs over a tiny recorded corpus, a pack file
and a results directory; every test talks to it through
:class:`~repro.serve.client.RemoteStore` or a raw HTTP connection.  The
load-bearing assertions are the identity ones — fetched bytes equal the
server's on-disk bytes, and a replay through the remote store equals a
replay through a local store record-for-record.
"""

import http.client
import json
import os
import threading

import pytest

from repro.corpus.packs import read_pack, write_pack
from repro.corpus.store import CorpusStore
from repro.experiments.results import RESULT_SCHEMA
from repro.serve.client import (
    RemoteError,
    RemoteIntegrityError,
    RemoteStore,
)
from repro.traces.registry import CORPUS

INSTRUCTIONS = 2_000
SCENARIO = "server-churn"


def _spec(name=SCENARIO):
    return CORPUS[name].scaled(INSTRUCTIONS)


class LiveServer:
    """The app served from a daemon thread on an ephemeral port."""

    def __init__(self, corpus_root: str, results_dir: str):
        import asyncio

        from repro.serve.app import ServeApp

        self.app = ServeApp(corpus_root, results_dir)
        ready = threading.Event()
        bound = {}

        def run() -> None:
            async def serve() -> None:
                server = await self.app.start("127.0.0.1", 0)
                bound["port"] = server.sockets[0].getsockname()[1]
                ready.set()
                async with server:
                    await server.serve_forever()

            asyncio.run(serve())

        threading.Thread(target=run, daemon=True, name="test-serve").start()
        assert ready.wait(timeout=30), "server failed to start"
        self.port = bound["port"]

    def request(self, method, path, body=None, headers=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=30
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                response.read(),
            )
        finally:
            connection.close()


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """(server, local CorpusStore, corpus root, results dir)."""
    root = tmp_path_factory.mktemp("serve")
    corpus_root = str(root / "corpus")
    results_dir = str(root / "results")
    os.makedirs(results_dir)
    store = CorpusStore(corpus_root)
    store.ensure(_spec())
    write_pack(store)
    document = {
        "schema": RESULT_SCHEMA,
        "section": "fig_smoke",
        "title": "serve e2e section",
        "data": {"value": 2.5},
    }
    with open(os.path.join(results_dir, "fig_smoke.json"), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    server = LiveServer(corpus_root, results_dir)
    return server, store, corpus_root, results_dir


@pytest.fixture()
def remote(served, tmp_path):
    server = served[0]
    return RemoteStore(
        f"http://127.0.0.1:{server.port}", cache_dir=str(tmp_path / "cache")
    )


class TestLiveness:
    def test_healthz(self, served):
        server = served[0]
        status, _headers, body = server.request("GET", "/healthz")
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["corpus"]["entries"] == 1
        assert document["results"]["sections"] == 1

    def test_server_header_carries_version(self, served):
        from repro import package_version

        server = served[0]
        _status, headers, _body = server.request("GET", "/healthz")
        assert headers["server"] == f"repro-serve/{package_version()}"

    def test_metrics_is_prometheus_text(self, served):
        server = served[0]
        server.request("GET", "/healthz")
        status, headers, body = server.request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        lines = body.decode().splitlines()
        assert any(line.startswith("# TYPE ") for line in lines)
        for line in lines:
            if line.startswith("#"):
                kind = line.split()[-1]
                assert kind in ("counter", "gauge", "histogram")
            else:
                name_part, value = line.rsplit(" ", 1)
                float(value)  # every sample line must parse

    def test_unknown_route_is_404_and_unknown_method_405(self, served):
        server = served[0]
        assert server.request("GET", "/nope")[0] == 404
        assert server.request("PUT", "/objects/" + "a" * 64)[0] == 405


class TestObjects:
    def test_fetched_bytes_match_local_store(self, served, remote):
        _server, store, _corpus, _results = served
        entry = next(iter(store.manifest().entries.values()))
        outcome = remote.fetch(entry.digest)
        with open(store.object_path(entry.digest), "rb") as handle:
            local_bytes = handle.read()
        with open(outcome.path, "rb") as handle:
            assert handle.read() == local_bytes

    def test_refetch_is_a_local_cache_hit(self, served, remote):
        _server, store, _corpus, _results = served
        entry = next(iter(store.manifest().entries.values()))
        assert not remote.fetch(entry.digest).from_cache
        assert remote.fetch(entry.digest).from_cache
        assert (remote.hits, remote.fetched) == (1, 1)

    def test_digest_etag_revalidation(self, served):
        server, store = served[0], served[1]
        digest = next(iter(store.manifest().entries.values())).digest
        status, headers, body = server.request("GET", f"/objects/{digest}")
        assert status == 200
        assert headers["etag"] == f'"{digest}"'
        status, _headers, body = server.request(
            "GET", f"/objects/{digest}",
            headers={"If-None-Match": f'"{digest}"'},
        )
        assert (status, body) == (304, b"")

    def test_bad_digest_400_unknown_digest_404(self, served):
        server = served[0]
        assert server.request("GET", "/objects/nope")[0] == 400
        assert server.request("GET", "/objects/" + "0" * 64)[0] == 404

    def test_remote_fetch_unknown_digest_raises(self, remote):
        with pytest.raises(RemoteError) as outcome:
            remote.fetch("0" * 64)
        assert outcome.value.status == 404


class TestResults:
    def test_second_get_is_304(self, served):
        server = served[0]
        status, headers, body = server.request("GET", "/results/fig_smoke")
        assert status == 200
        assert json.loads(body)["schema"] == RESULT_SCHEMA
        etag = headers["etag"]
        status, _headers, body = server.request(
            "GET", "/results/fig_smoke", headers={"If-None-Match": etag}
        )
        assert (status, body) == (304, b"")

    def test_client_revalidation(self, remote):
        status, etag, body = remote.result_document("fig_smoke")
        assert status == 200 and body
        status, _etag, body = remote.result_document("fig_smoke", etag=etag)
        assert (status, body) == (304, b"")

    def test_missing_section_404_lists_available(self, served):
        server = served[0]
        status, _headers, body = server.request("GET", "/results/nope")
        assert status == 404
        assert "fig_smoke" in json.loads(body)["error"]

    def test_path_escapes_rejected(self, served):
        server = served[0]
        status, _h, _b = server.request("GET", "/results/..%2fsecret")
        assert status == 404


class TestPacks:
    def test_pack_roundtrip_is_digest_identical(self, served, remote, tmp_path):
        server, store = served[0], served[1]
        status, _headers, body = server.request("GET", "/packs")
        packs = json.loads(body)["packs"]
        assert status == 200 and len(packs) == 1
        identifier = packs[0]["id"]
        fetched = remote.fetch_pack(identifier, str(tmp_path / "got.pack"))
        other = CorpusStore(str(tmp_path / "other"))
        from repro.corpus.packs import unpack

        installed, skipped = unpack(fetched, other)
        assert len(installed) == 1 and skipped == []
        assert other.manifest().entries.keys() == store.manifest().entries.keys()
        for entry in other.manifest().entries.values():
            assert os.path.exists(other.object_path(entry.digest))

    def test_pack_etag_revalidation(self, served):
        server = served[0]
        _s, _h, body = server.request("GET", "/packs")
        identifier = json.loads(body)["packs"][0]["id"]
        status, _headers, _body = server.request(
            "GET", f"/packs/{identifier}",
            headers={"If-None-Match": f'"{identifier}"'},
        )
        assert status == 304

    def test_pack_members_readable(self, served, remote, tmp_path):
        server = served[0]
        _s, _h, body = server.request("GET", "/packs")
        identifier = json.loads(body)["packs"][0]["id"]
        fetched = remote.fetch_pack(identifier, str(tmp_path / "p.pack"))
        info = read_pack(fetched)
        assert [m.entry.scenario for m in info.members] == [SCENARIO]


class TestJobs:
    def test_posted_job_streams_progress_and_completes(self, served):
        server = served[0]
        spec = {"kind": "record", "scenario": SCENARIO,
                "instructions": INSTRUCTIONS}
        status, headers, body = server.request(
            "POST", "/jobs", body=json.dumps(spec).encode()
        )
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        events = [json.loads(line) for line in body.splitlines() if line]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert "running" in kinds
        assert kinds[-1] == "done"
        # The corpus already holds this spec: a pure hit, no recording.
        assert "corpus-hit" in kinds
        assert events[-1]["result"]["built"] is False

    def test_replay_job_carries_run_statistics(self, served):
        server = served[0]
        spec = {"kind": "replay", "scenario": SCENARIO,
                "instructions": INSTRUCTIONS}
        _status, _headers, body = server.request(
            "POST", "/jobs", body=json.dumps(spec).encode()
        )
        done = json.loads(body.splitlines()[-1])
        replay = done["result"]["replay"]
        assert replay["benchmark"] == SCENARIO
        assert replay["instructions"] > 0
        assert "l1_accesses" in replay["events"]

    def test_nowait_returns_202_and_job_is_queryable(self, served):
        server = served[0]
        spec = {"kind": "record", "scenario": SCENARIO,
                "instructions": INSTRUCTIONS}
        status, headers, body = server.request(
            "POST", "/jobs?wait=0", body=json.dumps(spec).encode()
        )
        assert status == 202
        job_id = json.loads(body)["job"]
        assert headers["location"] == f"/jobs/{job_id}"
        deadline = 50
        while deadline:
            _s, _h, job_body = server.request("GET", f"/jobs/{job_id}")
            document = json.loads(job_body)
            if document["state"] in ("done", "failed"):
                break
            deadline -= 1
            import time

            time.sleep(0.1)
        assert document["state"] == "done"

    def test_bad_job_spec_is_400(self, served):
        server = served[0]
        for bad in (
            b"not json",
            json.dumps({"kind": "nope", "scenario": SCENARIO}).encode(),
            json.dumps({"kind": "record"}).encode(),
            json.dumps({"kind": "record", "scenario": "nope"}).encode(),
        ):
            status, _headers, _body = server.request("POST", "/jobs", body=bad)
            assert status == 400, bad


class TestRemoteReplayIdentity:
    def test_remote_replay_equals_local_replay(self, served, remote):
        _server, store, _corpus, _results = served
        remote_run = remote.run_result(_spec())
        local_run = store.run_result(_spec())
        assert remote_run.events == local_run.events
        assert remote_run.instructions == local_run.instructions
        assert remote_run.cform_instructions == local_run.cform_instructions
        assert remote_run.alloc_events == local_run.alloc_events

    def test_ensure_miss_records_remotely(self, served, remote):
        _server, store, _corpus, _results = served
        spec = CORPUS["pointer-chase"].scaled(INSTRUCTIONS)
        before = set(store.manifest().entries)
        resolved = remote.ensure(spec)
        assert resolved.built
        assert os.path.exists(resolved.path)
        # The recording happened on the service's store, not ours.
        assert set(store.manifest().entries) > before

    def test_corrupt_cache_entry_is_refetched(self, served, remote):
        _server, store, _corpus, _results = served
        entry = next(iter(store.manifest().entries.values()))
        outcome = remote.fetch(entry.digest)
        with open(outcome.path, "wb") as handle:
            handle.write(b"corrupted")
        fresh = RemoteStore(remote.base_url, cache_dir=remote.root)
        redone = fresh.fetch(entry.digest)
        assert not redone.from_cache
        with open(store.object_path(entry.digest), "rb") as handle:
            local_bytes = handle.read()
        with open(redone.path, "rb") as handle:
            assert handle.read() == local_bytes


class TestClientValidation:
    def test_https_rejected(self):
        with pytest.raises(ValueError):
            RemoteStore("https://example.org")

    def test_integrity_error_is_remote_error(self):
        assert issubclass(RemoteIntegrityError, RemoteError)
