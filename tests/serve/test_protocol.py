"""Unit tests of the serve wire layer (no sockets)."""

import asyncio

import pytest

from repro.serve.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    read_request,
)


def parse(raw: bytes) -> Request | None:
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_basic_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.header("host") == "x"

    def test_query_and_percent_decoding(self):
        request = parse(b"GET /jobs?wait=0&x=1 HTTP/1.1\r\n\r\n")
        assert request.query == {"wait": ["0"], "x": ["1"]}
        request = parse(b"GET /results/fig%2010 HTTP/1.1\r\n\r\n")
        assert request.path == "/results/fig 10"

    def test_body_via_content_length(self):
        request = parse(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.body == b"abcd"

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_truncated_request_line_raises(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /healthz")

    def test_oversized_body_is_413(self):
        raw = (
            f"POST /jobs HTTP/1.1\r\nContent-Length: "
            f"{MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError) as outcome:
            parse(raw)
        assert outcome.value.status == 413

    def test_chunked_request_body_rejected(self):
        with pytest.raises(ProtocolError):
            parse(
                b"POST /jobs HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"GARBAGE\r\n\r\n")


class TestRequestHelpers:
    def test_if_none_match_strips_quotes_and_splits(self):
        request = Request(
            method="GET", target="/", path="/", query={},
            headers={"if-none-match": '"abc", "def"'},
        )
        assert request.if_none_match == {"abc", "def"}

    def test_json_error_is_protocol_error(self):
        request = Request(
            method="POST", target="/", path="/", query={}, headers={},
            body=b"{nope",
        )
        with pytest.raises(ProtocolError):
            request.json()


class TestResponse:
    def test_json_body_is_stable(self):
        first = Response.json({"b": 1, "a": 2}).body
        second = Response.json({"a": 2, "b": 1}).body
        assert first == second

    def test_error_carries_status_in_body(self):
        response = Response.error(404, "gone")
        assert response.status == 404
        assert b"gone" in response.body

    def test_not_modified_has_no_body(self):
        response = Response.not_modified("abc")
        assert response.status == 304
        assert response.body == b""
        assert response.headers["ETag"] == '"abc"'
