"""Benchmark sets: resolution, counted aliases, file discovery."""

import json

import pytest

from repro.loadgen.schema import LoadScenario
from repro.loadgen.sets import (
    BENCHMARK_SETS,
    load_scenarios,
    resolve,
    scenario_dir,
)


class TestDiscovery:
    def test_committed_directory_is_found(self):
        scenarios = load_scenarios()
        assert set(BENCHMARK_SETS["all"]) <= set(scenarios)

    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
        assert scenario_dir() == tmp_path
        assert load_scenarios() == {}

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="REPRO_SCENARIO_DIR"):
            load_scenarios(tmp_path / "nope")

    def test_name_must_match_the_file_stem(self, tmp_path):
        document = load_scenarios()["uniform-churn"].to_dict()
        (tmp_path / "wrong-name.json").write_text(json.dumps(document))
        with pytest.raises(ValueError, match="wrong-name"):
            load_scenarios(tmp_path)


class TestResolve:
    def test_set_name_expands_to_members(self):
        members = resolve(["synthetic"])
        assert [m.name for m in members] == sorted(
            BENCHMARK_SETS["synthetic"]
        )

    def test_all_is_the_union(self):
        assert [m.name for m in resolve(["all"])] == list(
            BENCHMARK_SETS["all"]
        )

    def test_scenario_name_resolves_to_itself(self):
        (member,) = resolve(["uniform-churn"])
        assert member == load_scenarios()["uniform-churn"]

    def test_selection_deduplicates(self):
        assert [m.name for m in resolve(["synthetic", "uniform-churn"])] == [
            m.name for m in resolve(["synthetic"])
        ]

    def test_counted_scenario_alias_retenants(self):
        (member,) = resolve(["3x uniform-churn"])
        assert member.name == "3x-uniform-churn"
        assert member.tenants == 3
        base = load_scenarios()["uniform-churn"]
        assert member.arrival == base.arrival
        assert member.mix == base.mix

    def test_counted_corpus_profile_alias_is_adhoc(self):
        (member,) = resolve(["4x server-churn"])
        assert isinstance(member, LoadScenario)
        assert member.tenants == 4
        assert member.mix[0].profile == "server-churn"
        assert member.arrival.lambda_per_s == pytest.approx(800.0)

    def test_zero_count_is_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve(["0x server-churn"])

    def test_unknown_token_names_the_known_universe(self):
        with pytest.raises(KeyError, match="synthetic"):
            resolve(["no-such-thing"])

    def test_unknown_counted_profile_propagates(self):
        with pytest.raises(KeyError):
            resolve(["4x no-such-profile"])
