"""``python -m repro.loadgen``: subcommand smoke and determinism."""

import pytest

from repro.loadgen.__main__ import main


class TestListing:
    def test_list_names_every_committed_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("poisson-baseline", "uniform-churn", "tenant-attack"):
            assert name in out

    def test_sets_lists_members(self, capsys):
        assert main(["sets"]) == 0
        out = capsys.readouterr().out
        assert "synthetic" in out and "uniform-churn" in out


class TestShow:
    def test_show_prints_document_and_plan(self, capsys):
        assert main(["show", "uniform-churn"]) == 0
        out = capsys.readouterr().out
        assert '"scenario_version": 1' in out
        assert "composition plan" in out
        assert "tenant 0" in out and "tenant 1" in out

    def test_show_counted_alias(self, capsys):
        assert main(["show", "3x server-churn"]) == 0
        assert "tenant 2" in capsys.readouterr().out


class TestGenerate:
    def test_generate_is_deterministic(self, tmp_path, capsys):
        first = tmp_path / "a.trace"
        second = tmp_path / "b.trace"
        for out in (first, second):
            assert main([
                "generate", "uniform-churn",
                "--duration-scale", "0.2", "--out", str(out),
            ]) == 0
        assert first.read_bytes() == second.read_bytes()
        outputs = capsys.readouterr().out
        digests = [
            line.split()[-1]
            for line in outputs.splitlines()
            if "canonical digest" in line
        ]
        assert len(digests) == 2 and digests[0] == digests[1]

    def test_generated_trace_replays_with_verification(self, tmp_path):
        from repro.traces.replayer import replay_timing

        out = tmp_path / "uc.trace"
        assert main([
            "generate", "uniform-churn",
            "--duration-scale", "0.2", "--out", str(out),
        ]) == 0
        result = replay_timing(str(out))
        assert result.events.l1_accesses > 0

    def test_spec_file_overrides_the_name(self, tmp_path, capsys):
        from repro.loadgen.sets import load_scenarios

        document = tmp_path / "custom.json"
        document.write_text(
            load_scenarios()["uniform-churn"].scaled(0.2).to_json()
        )
        out = tmp_path / "custom.trace"
        assert main([
            "generate", "--spec", str(document), "--out", str(out),
        ]) == 0
        assert out.exists()


class TestErrors:
    def test_set_token_refuses_to_generate_many(self):
        with pytest.raises(SystemExit):
            main(["generate", "synthetic"])

    def test_unknown_scenario_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["generate", "no-such-scenario"])

    def test_name_and_spec_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["show", "uniform-churn", "--spec", str(tmp_path / "x")])
