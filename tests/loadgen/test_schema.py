"""LoadScenario documents: validation, exact JSON round-trip, files."""

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen.schema import (
    ARRIVAL_KINDS,
    SCENARIO_VERSION,
    ArrivalSpec,
    LoadScenario,
    MixEntry,
    load_scenario,
)

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "scenarios"

#: Trace-corpus profile names the strategies may draw from.
PROFILES = ("server-churn", "allocator-stress", "scan-heavy")


def make(**overrides) -> LoadScenario:
    base = dict(
        name="unit",
        description="unit-test scenario",
        arrival=ArrivalSpec(kind="poisson", lambda_per_s=100.0),
        mix=(MixEntry(profile="server-churn", weight=1.0),),
        tenants=2,
        duration_s=1.0,
        warmup_s=0.25,
        seed=3,
    )
    base.update(overrides)
    return LoadScenario(**base)


class TestValidation:
    def test_valid_document_constructs(self):
        scenario = make()
        assert scenario.total_weight() == 1.0
        assert "2 tenant(s)" in scenario.describe()

    def test_unknown_arrival_kind_is_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            ArrivalSpec(kind="zipf", lambda_per_s=10.0)

    @pytest.mark.parametrize("field,value", [
        ("lambda_per_s", 0.0),
        ("lambda_per_s", -5.0),
        ("jitter", -0.1),
        ("jitter", 1.5),
        ("burst_size", 0),
    ])
    def test_arrival_ranges_are_enforced(self, field, value):
        kwargs = dict(kind="poisson", lambda_per_s=10.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            ArrivalSpec(**kwargs)

    def test_mix_weight_must_be_positive(self):
        with pytest.raises(ValueError, match="weight"):
            MixEntry(profile="server-churn", weight=0.0)

    def test_unknown_profile_is_rejected_eagerly(self):
        with pytest.raises(KeyError, match="server-churn"):
            MixEntry(profile="no-such-profile", weight=1.0)

    def test_duplicate_mix_profiles_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make(mix=(
                MixEntry(profile="server-churn", weight=0.5),
                MixEntry(profile="server-churn", weight=0.5),
            ))

    def test_empty_mix_is_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            make(mix=())

    @pytest.mark.parametrize("field,value", [
        ("tenants", 0),
        ("duration_s", 0.0),
        ("warmup_s", -0.1),
        ("warmup_s", 1.0),  # == duration_s
        ("name", ""),
    ])
    def test_scenario_ranges_are_enforced(self, field, value):
        with pytest.raises(ValueError):
            make(**{field: value})

    def test_scaled_preserves_warm_fraction(self):
        scenario = make().scaled(0.5)
        assert scenario.duration_s == 0.5
        assert scenario.warmup_s == 0.125
        with pytest.raises(ValueError):
            make().scaled(0.0)


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        scenario = make()
        assert LoadScenario.from_dict(scenario.to_dict()) == scenario
        document = scenario.to_dict()
        assert LoadScenario.from_dict(document).to_dict() == document

    def test_json_round_trip_is_exact(self):
        scenario = make()
        assert LoadScenario.from_json(scenario.to_json()) == scenario

    def test_version_is_stamped_and_checked(self):
        document = make().to_dict()
        assert document["scenario_version"] == SCENARIO_VERSION
        document["scenario_version"] = 99
        with pytest.raises(ValueError, match="version"):
            LoadScenario.from_dict(document)

    def test_unknown_keys_are_rejected(self):
        document = make().to_dict()
        document["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            LoadScenario.from_dict(document)

    def test_missing_keys_are_rejected(self):
        document = make().to_dict()
        del document["duration_s"]
        with pytest.raises(ValueError, match="duration_s"):
            LoadScenario.from_dict(document)

    def test_unknown_arrival_keys_are_rejected(self):
        document = make().to_dict()
        document["arrival"]["rate"] = 5
        with pytest.raises(ValueError, match="rate"):
            LoadScenario.from_dict(document)

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(ARRIVAL_KINDS),
        lam=st.floats(min_value=1.0, max_value=1e4),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        burst=st.integers(min_value=1, max_value=32),
        profiles=st.lists(
            st.sampled_from(PROFILES), min_size=1, max_size=3, unique=True
        ),
        weights=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=3, max_size=3
        ),
        tenants=st.integers(min_value=1, max_value=12),
        duration=st.floats(min_value=0.01, max_value=100.0),
        warm_fraction=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_every_valid_document_round_trips_exactly(
        self, kind, lam, jitter, burst, profiles, weights, tenants,
        duration, warm_fraction, seed,
    ):
        scenario = LoadScenario(
            name="prop",
            description="property-generated",
            arrival=ArrivalSpec(
                kind=kind, lambda_per_s=lam, jitter=jitter, burst_size=burst
            ),
            mix=tuple(
                MixEntry(profile=profile, weight=weight)
                for profile, weight in zip(profiles, weights)
            ),
            tenants=tenants,
            duration_s=duration,
            warmup_s=duration * warm_fraction,
            seed=seed,
        )
        assert LoadScenario.from_json(scenario.to_json()) == scenario
        assert (
            json.loads(scenario.to_json())
            == LoadScenario.from_json(scenario.to_json()).to_dict()
        )


class TestCommittedFiles:
    def test_every_committed_scenario_loads_and_round_trips(self):
        paths = sorted(SCENARIO_DIR.glob("*.json"))
        assert paths, "no committed scenario documents found"
        for path in paths:
            scenario = load_scenario(str(path))
            assert scenario.name == path.stem
            assert LoadScenario.from_json(scenario.to_json()) == scenario
