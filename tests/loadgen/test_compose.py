"""The open-loop composer: merge order, namespaces, determinism, replay."""

from io import BytesIO

import pytest

from repro.loadgen.arrivals import timelines
from repro.loadgen.compose import (
    TENANT_ADDRESS_STRIDE,
    _tenant_chunks,
    apportion_tenants,
    compose_spec,
    run_composed,
    tenant_spec,
)
from repro.loadgen.schema import ArrivalSpec, LoadScenario, MixEntry
from repro.loadgen.sets import load_scenarios
from repro.memory.hierarchy import WESTMERE
from repro.traces.format import EV_EPOCH, TraceReader
from repro.traces.recorder import record_spec
from repro.traces.replayer import replay_timing
from repro.workloads.generator import (
    EV_ALLOC,
    EV_CFORM,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
)

MEMORY_EVENTS = (EV_LOAD, EV_STORE, EV_CFORM)


def make(tenants=3, duration_s=0.2, warmup_s=0.0, **overrides) -> LoadScenario:
    base = dict(
        name="compose-unit",
        description="composer unit scenario",
        arrival=ArrivalSpec(kind="poisson", lambda_per_s=150.0),
        mix=(MixEntry(profile="server-churn", weight=1.0),),
        tenants=tenants,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=17,
    )
    base.update(overrides)
    return LoadScenario(**base)


def record_bytes(load: LoadScenario, compress=False) -> bytes:
    buffer = BytesIO()
    record_spec(compose_spec(load), buffer, compress=compress)
    return buffer.getvalue()


class TestApportionment:
    def test_largest_remainder_matches_the_paper_mix(self):
        scenario = load_scenarios()["multi-tenant-server"]
        names = apportion_tenants(scenario)
        assert len(names) == 6
        assert names.count("server-churn") == 3
        assert names.count("scan-heavy") == 2
        assert names.count("pointer-chase") == 1
        # Tenant 0 carries the first (heaviest) mix entry.
        assert names[0] == "server-churn"

    def test_single_entry_mix_fills_every_tenant(self):
        assert apportion_tenants(make(tenants=5)) == ("server-churn",) * 5

    def test_every_tenant_gets_a_profile(self):
        for scenario in load_scenarios().values():
            assert len(apportion_tenants(scenario)) == scenario.tenants


class _ChunkSink:
    def __init__(self):
        self.chunks = []
        self._current = []

    def append(self, kind, address, arg):
        self._current.append((kind, address, arg))

    def burst(self):
        self.chunks.append(self._current)
        self._current = []


class TestMerge:
    def test_chunks_are_merged_in_arrival_time_order(self):
        load = make()
        sink = _ChunkSink()
        run_composed(load, sink=sink)
        expected = sorted(
            (time_s, tenant, index)
            for tenant, times in enumerate(timelines(load))
            for index, time_s in enumerate(times)
        )
        assert len(sink.chunks) == len(expected)
        for chunk, (_, tenant, _) in zip(sink.chunks, expected):
            bins = {
                address >> 33
                for kind, address, arg in chunk
                if kind in MEMORY_EVENTS
            }
            assert bins == {tenant}

    def test_tenant_namespaces_are_disjoint(self):
        load = make()
        raw = record_bytes(load)
        populated = {
            tenant
            for tenant, times in enumerate(timelines(load))
            if times
        }
        bins = set()
        for kind, address, arg in TraceReader(BytesIO(raw)).records():
            if kind in MEMORY_EVENTS:
                bins.add(address >> 33)
                if kind == EV_CFORM:  # expansion stays inside the bin
                    assert (address + arg * 64) >> 33 == address >> 33
        assert bins == populated

    def test_no_arrivals_is_an_explicit_error(self):
        load = make(
            tenants=1,
            duration_s=1e-6,
            arrival=ArrivalSpec(kind="poisson", lambda_per_s=0.001),
        )
        with pytest.raises(ValueError, match="no arrivals"):
            run_composed(load)


class TestSingleTenantEquivalence:
    def test_composed_records_equal_the_plain_tenant_capture(self):
        # With one tenant there is nothing to merge: the composed trace
        # must be exactly the tenant stream, truncated to its arrivals
        # (offset 0, EPOCH markers aside).
        load = make(tenants=1, duration_s=0.3)
        (times,) = timelines(load)
        spec = tenant_spec(load, 0, "server-churn", len(times))
        expected = [
            record
            for chunk in _tenant_chunks(spec, WESTMERE, len(times))
            for record in chunk
        ]
        composed = [
            record
            for record in TraceReader(BytesIO(record_bytes(load))).records()
            if record[0] not in (EV_EPOCH, EV_WARM)
        ]
        assert composed == expected


class TestDeterminismAndReplay:
    def test_double_generation_is_byte_identical(self):
        from repro.corpus.store import canonical_digest

        load = load_scenarios()["uniform-churn"].scaled(0.2)
        first = record_bytes(load, compress=True)
        second = record_bytes(load, compress=True)
        assert first == second
        assert canonical_digest(BytesIO(first)) == canonical_digest(
            BytesIO(second)
        )

    def test_replay_verifies_and_reproduces_the_live_run(self):
        load = make(warmup_s=0.05)
        buffer = BytesIO()
        live = record_spec(compose_spec(load), buffer)
        replayed, footer = replay_timing(
            BytesIO(buffer.getvalue()), with_footer=True
        )
        assert replayed.events == live.events
        assert replayed.instructions == live.instructions
        assert replayed.cform_instructions == live.cform_instructions
        assert replayed.alloc_events == live.alloc_events
        assert footer["records"] > 0

    def test_recording_does_not_change_the_result(self):
        load = make()
        unrecorded = run_composed(load)
        sink = _ChunkSink()
        recorded = run_composed(load, sink=sink)
        assert recorded == unrecorded

    def test_warmup_resets_the_counters(self):
        cold = run_composed(make())
        warmed = run_composed(make(warmup_s=0.1))
        assert warmed.events.l1_accesses < cold.events.l1_accesses


class TestComposeSpec:
    def test_spec_round_trips_through_the_registry(self):
        from repro.traces.registry import TraceScenarioSpec

        spec = compose_spec(make())
        assert spec.driver == "loadgen"
        restored = TraceScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_driver_config_is_the_scenario_document(self):
        load = make()
        assert LoadScenario.from_json(
            compose_spec(load).driver_config
        ) == load

    def test_dominant_mix_entry_prices_the_trace(self):
        load = make(mix=(
            MixEntry(profile="server-churn", weight=0.2),
            MixEntry(profile="scan-heavy", weight=0.8),
        ))
        from repro.traces.registry import corpus_spec

        assert compose_spec(load).profile == corpus_spec("scan-heavy").profile
