"""Arrival timelines: determinism, bounds, per-tenant independence."""

from dataclasses import replace

import pytest

from repro.loadgen.arrivals import tenant_timeline, timelines
from repro.loadgen.schema import ArrivalSpec, LoadScenario, MixEntry


def make(kind="poisson", **arrival_overrides) -> LoadScenario:
    arrival = dict(kind=kind, lambda_per_s=400.0)
    arrival.update(arrival_overrides)
    return LoadScenario(
        name="arrivals-unit",
        description="arrival unit scenario",
        arrival=ArrivalSpec(**arrival),
        mix=(MixEntry(profile="server-churn", weight=1.0),),
        tenants=4,
        duration_s=1.0,
        seed=11,
    )


@pytest.mark.parametrize("kind", ["poisson", "uniform", "bursty"])
class TestEveryKind:
    def test_identical_calls_are_identical(self, kind):
        load = make(kind, jitter=0.2)
        assert timelines(load) == timelines(load)

    def test_times_are_sorted_and_within_duration(self, kind):
        for times in timelines(make(kind, jitter=0.3)):
            assert list(times) == sorted(times)
            assert all(0.0 <= t < 1.0 for t in times)

    def test_rate_is_split_across_tenants(self, kind):
        load = make(kind)
        total = sum(len(times) for times in timelines(load))
        # Aggregate 400/s over 1s: the total is rate-shaped, not exact
        # for the stochastic processes.
        assert 200 <= total <= 600

    def test_different_seeds_differ(self, kind):
        # Jittered: an unjittered uniform grid is seed-independent by
        # design (the gaps are exact).
        load = make(kind, jitter=0.25)
        assert timelines(load) != timelines(replace(load, seed=load.seed + 1))

    def test_tenant_streams_are_independent(self, kind):
        load = make(kind, jitter=0.25)
        per_tenant = timelines(load)
        assert len(per_tenant) == load.tenants
        assert len({tuple(times) for times in per_tenant}) == load.tenants

    def test_adding_a_tenant_scales_rates_not_streams(self, kind):
        # Tenant k's stream depends only on (seed, k, arrival, duration):
        # with the same per-tenant rate, growing the population leaves
        # existing tenants' timelines untouched.
        load = make(kind)
        grown = replace(
            load,
            tenants=load.tenants + 1,
            arrival=replace(
                load.arrival,
                lambda_per_s=load.arrival.lambda_per_s
                * (load.tenants + 1) / load.tenants,
            ),
        )
        for tenant in range(load.tenants):
            assert tenant_timeline(load, tenant) == tenant_timeline(
                grown, tenant
            )


class TestShapes:
    def test_uniform_without_jitter_is_an_even_grid(self):
        load = make("uniform", jitter=0.0)
        times = tenant_timeline(load, 0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # rate = 400/4 per tenant -> 10ms gaps, quantised.
        assert all(abs(gap - 0.01) < 1e-9 for gap in gaps)

    def test_bursty_clusters_arrivals(self):
        load = make("bursty", burst_size=8)
        times = tenant_timeline(load, 0)
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        # Intra-burst spacing is 5% of the mean gap: the small gaps are
        # an order of magnitude tighter than the burst-start gaps.
        assert gaps[0] < 0.001
        assert gaps[-1] > 0.01

    def test_tenant_index_is_range_checked(self):
        with pytest.raises(ValueError, match="tenant"):
            tenant_timeline(make(), 4)
