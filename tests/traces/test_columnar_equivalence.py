"""Columnar vs per-record replay: whole-registry differential suite.

The acceptance gate for the columnar engine: over every registry
scenario in both container versions — plus a loadgen-composed trace —
the columnar engine's statistics are **bit-identical** to the
per-record oracle's, for timing replay (footer stats), hierarchy replay
(counters, violations, cycles), sharded merges, and multi-core per-core
attribution.  The per-record path is the retained reference, the same
differential-testing pattern as ``tests/core/test_fastpath_equivalence``.
"""

import io

import pytest

np = pytest.importorskip("numpy")

from repro.loadgen.compose import compose_spec
from repro.loadgen.schema import ArrivalSpec, LoadScenario, MixEntry
from repro.memory import kernel
from repro.traces import CORPUS, record_spec, replay_timing
from repro.traces.format import TraceReader
from repro.traces.replayer import (
    replay_hierarchy,
    replay_multicore,
    replay_shards,
    resolve_engine,
    shard_trace,
)

INSTRUCTIONS = 5_000

ALL_SCENARIOS = sorted(CORPUS)

CONTAINERS = ("v1", "v2")


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """Every registry scenario in both containers, plus a loadgen mix."""
    workdir = tmp_path_factory.mktemp("columnar")
    traces = {}
    for name in ALL_SCENARIOS:
        spec = CORPUS[name].scaled(INSTRUCTIONS)
        for container in CONTAINERS:
            path = str(workdir / f"{name}.{container}.trace")
            live = record_spec(spec, path, compress=container == "v2")
            traces[name, container] = (path, live)
    load = LoadScenario(
        name="columnar-mix",
        description="loadgen stream for the columnar differential suite",
        arrival=ArrivalSpec(kind="poisson", lambda_per_s=150.0),
        mix=(
            MixEntry(profile="server-churn", weight=2.0),
            MixEntry(profile="scan-heavy", weight=1.0),
        ),
        tenants=3,
        duration_s=0.2,
        warmup_s=0.05,
        seed=23,
    )
    for container in CONTAINERS:
        path = str(workdir / f"loadgen.{container}.trace")
        live = record_spec(
            compose_spec(load), path, compress=container == "v2"
        )
        traces["loadgen", container] = (path, live)
    return traces


ALL_TRACES = [
    (name, container)
    for name in ALL_SCENARIOS + ["loadgen"]
    for container in CONTAINERS
]


# -- decode layer -------------------------------------------------------------


@pytest.mark.parametrize("name,container", ALL_TRACES)
def test_column_batches_reproduce_the_record_stream(name, container, recorded):
    path, _ = recorded[name, container]
    with TraceReader(path) as tuples, TraceReader(path) as columns:
        stream = tuples.records()
        for batch in columns.column_batches():
            for row in zip(
                batch.kind.tolist(), batch.address.tolist(), batch.arg.tolist()
            ):
                assert row == next(stream)
        assert next(stream, None) is None
        assert columns.footer == tuples.footer


def test_column_batches_rejects_mixed_iteration(recorded):
    path, _ = recorded["server-churn", "v1"]
    with TraceReader(path) as reader:
        next(iter(reader.records()))
        with pytest.raises(RuntimeError, match="records\\(\\)"):
            reader.column_batches()


# -- single-trace replay ------------------------------------------------------


@pytest.mark.parametrize("name,container", ALL_TRACES)
def test_timing_replay_is_engine_agnostic(name, container, recorded):
    path, live = recorded[name, container]
    from_records = replay_timing(path, engine="records")
    from_columns = replay_timing(path, engine="columnar")
    assert from_columns == from_records == live


@pytest.mark.parametrize(
    "name,container",
    [
        (name, container)
        for name, container in ALL_TRACES
        # The data-carrying hierarchy models one 8 GB address space;
        # multi-tenant loadgen traces stride tenants beyond it, so
        # hierarchy mode covers the registry scenarios only.
        if name != "loadgen"
    ],
)
def test_hierarchy_replay_is_engine_agnostic(name, container, recorded):
    path, _ = recorded[name, container]
    # Full ShardStats equality: counters, violations, AMAT cycles.
    assert replay_hierarchy(path, engine="columnar") == replay_hierarchy(
        path, engine="records"
    )


# -- sharded merge ------------------------------------------------------------


@pytest.mark.parametrize("container", CONTAINERS)
@pytest.mark.parametrize("mode", ["timing", "hierarchy"])
def test_sharded_merge_is_engine_agnostic(container, mode, recorded, tmp_path):
    path, _ = recorded["server-churn", container]
    shards = shard_trace(path, str(tmp_path / "shards"), shards=3)
    from_records = replay_shards(shards, jobs=1, mode=mode, engine="records")
    from_columns = replay_shards(shards, jobs=2, mode=mode, engine="columnar")
    assert from_columns == from_records


# -- multi-core ---------------------------------------------------------------


@pytest.mark.parametrize("container", CONTAINERS)
def test_multicore_attribution_is_engine_agnostic(container, recorded):
    sources = [
        recorded["server-churn", container][0],
        recorded["scan-heavy", container][0],
        recorded["pointer-chase", container][0],
    ]
    from_records = replay_multicore(sources, engine="records")
    from_columns = replay_multicore(sources, jobs=2, engine="columnar")
    assert from_columns.per_core == from_records.per_core
    assert from_columns.merged == from_records.merged


def test_multicore_shard_streams_are_engine_agnostic(recorded, tmp_path):
    # Concatenated shard files per core: region semantics (warm markers
    # ignored) must match across engines too.
    churn, _ = recorded["server-churn", "v1"]
    scan, _ = recorded["scan-heavy", "v2"]
    churn_shards = shard_trace(churn, str(tmp_path / "churn"), shards=2)
    scan_shards = shard_trace(scan, str(tmp_path / "scan"), shards=2)
    sources = [churn_shards, scan_shards]
    assert replay_multicore(sources, engine="columnar") == replay_multicore(
        sources, engine="records"
    )


# -- engine selection ---------------------------------------------------------


class TestEngineSelection:
    def test_default_is_columnar_with_numpy(self):
        assert resolve_engine() == "columnar"
        assert resolve_engine("records") == "records"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown replay engine"):
            resolve_engine("simd")

    def test_numpy_less_default_falls_back_to_records(self, monkeypatch):
        from repro.traces import replayer

        monkeypatch.setattr(replayer, "HAVE_NUMPY", False)
        assert replayer.resolve_engine() == "records"

    def test_explicit_columnar_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(kernel, "_np", None)
        with pytest.raises(ImportError, match="--engine records"):
            resolve_engine("columnar")

    def test_records_engine_runs_without_numpy(self, monkeypatch, recorded):
        path, live = recorded["server-churn", "v1"]
        monkeypatch.setattr(kernel, "_np", None)
        assert replay_timing(path, engine="records") == live
