"""Unit tests for the binary trace format's streaming writer/reader."""

import io

import pytest

from repro.traces.format import (
    EV_CFORM,
    EV_LOAD,
    EV_STORE,
    MAGIC,
    RECORD_SIZE,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    read_header,
)


def _write_sample(target, records, header=None, footer=None):
    with TraceWriter(target, header or {"kind": "test"}) as writer:
        for kind, address, arg in records:
            writer.append(kind, address, arg)
        writer.set_footer(footer or {"records": len(records)})


class TestRoundTrip:
    def test_records_survive(self):
        records = [
            (EV_LOAD, 0x1000, 8),
            (EV_STORE, 0x7FFF_0000, 8),
            (EV_CFORM, 0xDEAD_BEEF_0000, 3),
        ]
        buffer = io.BytesIO()
        _write_sample(buffer, records)
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert reader.header == {"kind": "test"}
        assert list(reader.records()) == records
        assert reader.footer == {"records": 3}

    def test_empty_trace(self):
        buffer = io.BytesIO()
        _write_sample(buffer, [])
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert list(reader.records()) == []
        assert reader.footer == {"records": 0}

    def test_path_based_io(self, tmp_path):
        path = str(tmp_path / "sample.trace")
        _write_sample(path, [(EV_LOAD, 64, 8)])
        assert read_header(path) == {"kind": "test"}
        with TraceReader(path) as reader:
            assert reader.read_footer() == {"records": 1}

    def test_streaming_across_flush_boundaries(self):
        # More records than one writer flush and one reader chunk.
        count = TraceWriter.FLUSH_RECORDS * 2 + 17
        records = [(EV_LOAD, index * 64, 8) for index in range(count)]
        buffer = io.BytesIO()
        _write_sample(buffer, records)
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert sum(1 for _ in reader.records()) == count

    def test_read_footer_after_partial_iteration(self):
        """read_footer continues the shared records iterator — breaking
        out of an iteration must not lose the buffered chunk."""
        records = [(EV_LOAD, index * 64, 8) for index in range(100)]
        buffer = io.BytesIO()
        _write_sample(buffer, records)
        buffer.seek(0)
        reader = TraceReader(buffer)
        consumed = []
        for record in reader.records():
            consumed.append(record)
            if len(consumed) == 5:
                break
        assert reader.read_footer() == {"records": 100}
        # The shared iterator was drained, not restarted.
        assert consumed == records[:5]

    def test_u64_address_and_u32_arg_bounds(self):
        records = [(EV_LOAD, 2**64 - 1, 2**32 - 1)]
        buffer = io.BytesIO()
        _write_sample(buffer, records)
        buffer.seek(0)
        assert list(TraceReader(buffer).records()) == records


class TestMalformedFiles:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            TraceReader(io.BytesIO(b"NOTATRACE" * 4))

    def test_truncated_header(self):
        buffer = io.BytesIO(MAGIC + (99).to_bytes(4, "little") + b"{}")
        with pytest.raises(TraceFormatError, match="header"):
            TraceReader(buffer)

    def test_missing_terminator(self):
        buffer = io.BytesIO()
        _write_sample(buffer, [(EV_LOAD, 0, 8)])
        # Chop the footer and terminator off.
        raw = buffer.getvalue()[: -(RECORD_SIZE + 2)]
        reader = TraceReader(io.BytesIO(raw))
        with pytest.raises(TraceFormatError):
            list(reader.records())

    def test_truncated_footer(self):
        buffer = io.BytesIO()
        _write_sample(buffer, [], footer={"long": "x" * 100})
        raw = buffer.getvalue()[:-50]
        reader = TraceReader(io.BytesIO(raw))
        with pytest.raises(TraceFormatError, match="footer"):
            list(reader.records())

    def test_path_based_errors_name_file_and_offset(self, tmp_path):
        """Failures must be attributable to one file and one position —
        a multi-shard replay's error is useless without them."""
        path = str(tmp_path / "truncated.trace")
        _write_sample(path, [(EV_LOAD, 0, 8)] * 10)
        size = len(open(path, "rb").read())
        with open(path, "r+b") as handle:
            handle.truncate(size - (RECORD_SIZE + 20))
        with pytest.raises(TraceFormatError) as caught:
            with TraceReader(path) as reader:
                list(reader.records())
        assert caught.value.path == path
        assert caught.value.offset is not None
        assert path in str(caught.value)
        assert "byte offset" in str(caught.value)

    def test_bad_magic_reports_offset_zero(self, tmp_path):
        path = tmp_path / "bogus.trace"
        path.write_bytes(b"NOTATRACE" * 4)
        with pytest.raises(TraceFormatError) as caught:
            TraceReader(str(path))
        assert caught.value.offset == 0
        assert str(path) in str(caught.value)

    def test_located_decorates_once(self):
        bare = TraceFormatError("boom", offset=7)
        located = bare.located("/a/file.trace")
        assert located.path == "/a/file.trace"
        assert located.offset == 7
        # Already-located errors keep their original attribution.
        assert located.located("/elsewhere.trace") is located

    def test_record_size_is_stable(self):
        # The format spec in BENCHMARKS.md documents 13-byte records.
        assert RECORD_SIZE == 13
