"""The round-trip invariant: recorded traces replay bit-identically.

This is the trace engine's acceptance gate: for every scenario in the
registry, (a) attaching the recorder does not perturb the live run,
(b) replaying the recorded trace reproduces the live run's cycle and
event statistics exactly, and (c) sharded replay merges to the same
accounting at any worker count.
"""

import io

import pytest

from repro.memory.hierarchy import WESTMERE
from repro.traces import (
    CORPUS,
    record_spec,
    replay_shards,
    replay_timing,
    shard_trace,
)
from repro.traces.recorder import live_run

#: Short traces keep the whole-corpus sweep fast; the invariant is
#: length-independent.
INSTRUCTIONS = 5_000

ALL_SCENARIOS = sorted(CORPUS)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """Record every corpus scenario once; share across tests."""
    workdir = tmp_path_factory.mktemp("corpus-traces")
    results = {}
    for name in ALL_SCENARIOS:
        spec = CORPUS[name].scaled(INSTRUCTIONS)
        path = str(workdir / f"{name}.trace")
        live = record_spec(spec, path)
        results[name] = (spec, path, live)
    return results


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_recording_does_not_perturb_the_run(name, recorded):
    spec, _, live = recorded[name]
    # live_run dispatches on the spec's driver (generator or attacks).
    plain = live_run(spec)
    assert plain.events == live.events
    assert plain.instructions == live.instructions
    assert plain.cform_instructions == live.cform_instructions
    assert plain.alloc_events == live.alloc_events


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_replay_is_bit_identical_to_live(name, recorded):
    spec, path, live = recorded[name]
    replayed = replay_timing(path)  # verify=True checks the footer too
    assert replayed.events == live.events
    assert replayed.instructions == live.instructions
    assert replayed.cform_instructions == live.cform_instructions
    assert replayed.alloc_events == live.alloc_events
    assert replayed.benchmark == live.benchmark
    # The derived figure quantity — pipeline-model cycles — is therefore
    # byte-identical as well.
    assert replayed.cycles(WESTMERE, spec.profile) == live.cycles(
        WESTMERE, spec.profile
    )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_sharded_replay_matches_single_process(name, recorded, tmp_path):
    _, path, _ = recorded[name]
    shards = shard_trace(path, str(tmp_path / name), shards=3)
    serial = replay_shards(shards, jobs=1)
    parallel = replay_shards(shards, jobs=3)
    assert serial == parallel


def test_recording_twice_yields_identical_bytes():
    spec = CORPUS["allocator-stress"].scaled(3_000)
    first, second = io.BytesIO(), io.BytesIO()
    record_spec(spec, first)
    record_spec(spec, second)
    assert first.getvalue() == second.getvalue()


def test_shard_merge_covers_all_records(tmp_path):
    """Shards partition the record stream: merged state-free counts
    equal the whole-stream region replay's counts (cache events differ —
    each shard replays against a cold ladder)."""
    spec = CORPUS["server-churn"].scaled(4_000)
    path = str(tmp_path / "whole.trace")
    record_spec(spec, path)
    shards = shard_trace(path, str(tmp_path / "shards"), shards=4)
    merged = replay_shards(shards, jobs=1).stats
    single = replay_shards([path], jobs=1).stats
    assert merged.touches == single.touches
    assert merged.cform_lines == single.cform_lines
    assert merged.alloc_events == single.alloc_events


def test_merged_counts_are_partition_independent(tmp_path):
    """Region replay ignores the warmup marker, so the counted records —
    and hence the merged touch/CFORM/alloc totals — depend only on the
    trace, never on the shard count (even for warmup-carrying traces)."""
    spec = CORPUS["server-churn"].scaled(4_000)  # warmup_fraction=1.0
    path = str(tmp_path / "warm.trace")
    record_spec(spec, path)
    two = replay_shards(shard_trace(path, str(tmp_path / "n2"), 2), jobs=1).stats
    four = replay_shards(shard_trace(path, str(tmp_path / "n4"), 4), jobs=1).stats
    assert two.touches == four.touches
    assert two.cform_lines == four.cform_lines
    assert two.alloc_events == four.alloc_events
