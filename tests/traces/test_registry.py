"""Tests for the declarative scenario registry."""

import dataclasses
import json

import pytest

from repro.softstack.insertion import Policy
from repro.traces.registry import (
    CORPUS,
    TraceScenarioSpec,
    corpus_spec,
    load_spec,
    policy_from_str,
    policy_to_str,
)


class TestPolicyStrings:
    @pytest.mark.parametrize(
        "policy",
        [None, Policy.OPPORTUNISTIC, Policy.FULL, Policy.INTELLIGENT, ("fixed", 3)],
    )
    def test_round_trip(self, policy):
        assert policy_from_str(policy_to_str(policy)) == policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            policy_from_str("paranoid")


class TestCorpus:
    def test_eight_named_mixes(self):
        assert set(CORPUS) == {
            "server-churn",
            "allocator-stress",
            "scan-heavy",
            "pointer-chase",
            "quarantine-pressure",
            "dma-mixed",
            "fragmentation-heavy",
            "attack-replay",
        }

    def test_lookup(self):
        assert corpus_spec("scan-heavy").name == "scan-heavy"
        with pytest.raises(KeyError, match="unknown trace scenario"):
            corpus_spec("no-such-mix")

    def test_specs_build_generator_scenarios(self):
        for spec in CORPUS.values():
            scenario = spec.build_scenario()
            assert scenario.with_cform == spec.with_cform
            assert scenario.describe()  # renders without error

    def test_profiles_are_sane(self):
        for spec in CORPUS.values():
            profile = spec.profile
            assert profile.heap_kb > 0
            assert 0 < profile.mem_ratio < 1
            assert 0 < profile.locality_skew <= 1
            assert profile.overlap >= 1
            assert profile.base_cpi > 0

    def test_seeds_are_distinct(self):
        seeds = [spec.seed for spec in CORPUS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_quarantine_pressure_deepens_quarantine(self):
        assert CORPUS["quarantine-pressure"].quarantine_delay > 16

    def test_fragmentation_heavy_deepens_quarantine(self):
        assert CORPUS["fragmentation-heavy"].quarantine_delay > 16

    def test_attack_replay_uses_the_attacks_driver(self):
        assert CORPUS["attack-replay"].driver == "attacks"
        assert all(
            spec.driver == "generator"
            for name, spec in CORPUS.items()
            if name != "attack-replay"
        )

    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError, match="unknown driver"):
            dataclasses.replace(CORPUS["server-churn"], driver="fuzzer")


class TestSpecDocuments:
    def test_json_round_trip(self):
        for spec in CORPUS.values():
            document = json.loads(json.dumps(spec.to_dict()))
            assert TraceScenarioSpec.from_dict(document) == spec

    def test_profile_by_spec_name(self):
        document = CORPUS["server-churn"].to_dict()
        document["profile"] = "mcf"  # named SPEC profile instead of inline
        spec = TraceScenarioSpec.from_dict(document)
        assert spec.profile.name == "mcf"

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(CORPUS["dma-mixed"].to_dict()))
        assert load_spec(str(path)) == CORPUS["dma-mixed"]

    def test_unsupported_version_rejected(self):
        document = CORPUS["server-churn"].to_dict()
        document["spec_version"] = 99
        with pytest.raises(ValueError, match="version"):
            TraceScenarioSpec.from_dict(document)

    def test_unknown_keys_rejected_with_names(self):
        document = CORPUS["server-churn"].to_dict()
        document["instuctions"] = 100  # typo'd key
        with pytest.raises(ValueError, match="unknown spec key.*instuctions"):
            TraceScenarioSpec.from_dict(document)

    def test_missing_profile_rejected(self):
        document = CORPUS["server-churn"].to_dict()
        del document["profile"]
        with pytest.raises(ValueError, match="profile"):
            TraceScenarioSpec.from_dict(document)

    def test_validation(self):
        spec = CORPUS["server-churn"]
        with pytest.raises(ValueError):
            dataclasses.replace(spec, instructions=0)
        with pytest.raises(ValueError):
            dataclasses.replace(spec, policy="bogus")
        with pytest.raises(ValueError):
            dataclasses.replace(spec, epoch_bursts=0)

    def test_scaled(self):
        assert corpus_spec("server-churn").scaled(123).instructions == 123
