"""Smoke tests for the ``python -m repro.traces`` CLI."""

import glob
import json

import pytest

from repro.traces.__main__ import main
from repro.traces.registry import CORPUS


def test_list_shows_whole_corpus(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in CORPUS:
        assert name in out


def test_record_info_replay_shard_pipeline(tmp_path, capsys):
    trace = str(tmp_path / "cli.trace")
    assert main(
        ["record", "--scenario", "server-churn",
         "--instructions", "3000", "--out", trace]
    ) == 0
    assert "recorded server-churn" in capsys.readouterr().out

    assert main(["info", trace]) == 0
    out = capsys.readouterr().out
    assert "CALTRC01" in out
    assert "server-churn" in out

    assert main(["replay", trace]) == 0
    assert "verified bit-identical" in capsys.readouterr().out

    assert main(["replay", trace, "--mode", "hierarchy"]) == 0
    assert "hierarchy replay" in capsys.readouterr().out

    shard_dir = str(tmp_path / "shards")
    assert main(["shard", trace, "--out-dir", shard_dir, "-n", "3"]) == 0
    capsys.readouterr()
    shards = sorted(glob.glob(shard_dir + "/*.trace"))
    assert len(shards) == 3

    assert main(["replay-shards", *shards, "--jobs", "2"]) == 0
    assert "merged over 3 shards" in capsys.readouterr().out

    # Replaying a single shard file routes to the region engine instead
    # of crashing on the missing whole-run footer.
    assert main(["replay", shards[0]]) == 0
    assert "region replay of shard 1/3" in capsys.readouterr().out


def test_compressed_record_info_replay(tmp_path, capsys):
    trace = str(tmp_path / "cli.v2.trace")
    assert main(
        ["record", "--scenario", "scan-heavy", "--instructions", "3000",
         "--compress", "--out", trace]
    ) == 0
    assert "CALTRC02 compressed" in capsys.readouterr().out

    assert main(["info", trace, "--frames"]) == 0
    out = capsys.readouterr().out
    assert "CALTRC02" in out
    assert "compression" in out
    assert "frame    0" in out

    assert main(["replay", trace]) == 0
    assert "verified bit-identical" in capsys.readouterr().out

    shard_dir = str(tmp_path / "shards")
    assert main(["shard", trace, "--out-dir", shard_dir, "-n", "2"]) == 0
    capsys.readouterr()
    shards = sorted(glob.glob(shard_dir + "/*.trace"))
    assert main(["replay-shards", *shards]) == 0
    assert "merged over 2 shards" in capsys.readouterr().out

    assert main(["replay-mc", trace, "--cores", "2"]) == 0
    assert "merged over 2 cores" in capsys.readouterr().out


def test_info_on_truncated_file_fails_clearly(tmp_path, capsys):
    for compress in (False, True):
        trace = str(tmp_path / f"trunc-{compress}.trace")
        assert main(
            ["record", "--scenario", "server-churn", "--instructions", "2000",
             *(["--compress"] if compress else []), "--out", trace]
        ) == 0
        capsys.readouterr()
        with open(trace, "rb") as handle:
            raw = handle.read()
        for cut in (3, 10, len(raw) // 2, len(raw) - 4):
            with open(trace, "wb") as handle:
                handle.write(raw[:cut])
            assert main(["info", trace]) == 1
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert "struct" not in err


def test_info_on_corrupted_header_fails_clearly(tmp_path, capsys):
    trace = str(tmp_path / "corrupt.trace")
    assert main(
        ["record", "--scenario", "server-churn", "--instructions", "2000",
         "--compress", "--out", trace]
    ) == 0
    capsys.readouterr()
    with open(trace, "r+b") as handle:
        handle.seek(500)  # inside the header JSON
        handle.write(b"\x9a")
    assert main(["info", trace]) == 1
    err = capsys.readouterr().err
    assert "corrupt trace header" in err
    assert trace in err  # the message names the damaged file
    assert "byte offset" in err  # ... and where the damage sits


def test_record_from_spec_file(tmp_path, capsys):
    spec_path = tmp_path / "custom.json"
    document = CORPUS["dma-mixed"].scaled(2000).to_dict()
    spec_path.write_text(json.dumps(document))
    trace = str(tmp_path / "custom.trace")
    assert main(["record", "--spec", str(spec_path), "--out", trace]) == 0
    assert "recorded dma-mixed" in capsys.readouterr().out


def test_unknown_scenario_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["record", "--scenario", "nope", "--out", str(tmp_path / "x")])


def test_mistyped_spec_key_is_a_usage_error(tmp_path, capsys):
    spec_path = tmp_path / "typo.json"
    document = CORPUS["scan-heavy"].to_dict()
    document["instuctions"] = 100  # sic
    spec_path.write_text(json.dumps(document))
    with pytest.raises(SystemExit):
        main(["record", "--spec", str(spec_path), "--out", str(tmp_path / "x")])
    assert "unknown spec key" in capsys.readouterr().err


def test_replay_missing_file_is_a_runtime_error(tmp_path, capsys):
    assert main(["replay", str(tmp_path / "does-not-exist.trace")]) == 1
    assert "error:" in capsys.readouterr().err


def test_no_verify_does_not_claim_verification(tmp_path, capsys):
    trace = str(tmp_path / "nv.trace")
    assert main(
        ["record", "--scenario", "scan-heavy",
         "--instructions", "2000", "--out", trace]
    ) == 0
    capsys.readouterr()
    assert main(["replay", trace, "--no-verify"]) == 0
    out = capsys.readouterr().out
    assert "verification skipped" in out
    assert "bit-identical" not in out
