"""Tests for the replay engines: integrity checking, sharding, hierarchy."""

import io

import pytest

from repro.traces import (
    CORPUS,
    TraceIntegrityError,
    TraceReader,
    TraceWriter,
    record_spec,
    replay_hierarchy,
    replay_shards,
    replay_timing,
    shard_trace,
)
from repro.traces.format import EV_EPOCH, EV_LOAD


@pytest.fixture(scope="module")
def small_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("replayer") / "small.trace")
    spec = CORPUS["allocator-stress"].scaled(4_000)
    live = record_spec(spec, path)
    return path, live


class TestIntegrity:
    def test_tampered_footer_is_caught(self, small_trace, tmp_path):
        path, _ = small_trace
        with TraceReader(path) as reader:
            header = reader.header
            records = list(reader.records())
            footer = dict(reader.footer)
        footer["events"] = dict(footer["events"], l1_misses=12345)
        tampered = str(tmp_path / "tampered.trace")
        with TraceWriter(tampered, header) as writer:
            for record in records:
                writer.append(*record)
            writer.set_footer(footer)
        with pytest.raises(TraceIntegrityError, match="cache events"):
            replay_timing(tampered)
        # Opting out of verification still replays.
        result = replay_timing(tampered, verify=False)
        assert result.events.l1_accesses > 0

    def test_dropped_records_are_caught(self, small_trace, tmp_path):
        path, _ = small_trace
        with TraceReader(path) as reader:
            header = reader.header
            records = list(reader.records())
            footer = reader.footer
        truncated = str(tmp_path / "truncated.trace")
        with TraceWriter(truncated, header) as writer:
            for record in records[: len(records) // 2]:
                writer.append(*record)
            writer.set_footer(footer)
        with pytest.raises(TraceIntegrityError):
            replay_timing(truncated)


class TestSharding:
    def test_shard_count_and_validity(self, small_trace, tmp_path):
        path, _ = small_trace
        shards = shard_trace(path, str(tmp_path / "s"), shards=4)
        assert len(shards) == 4
        total = 0
        for index, shard_path in enumerate(shards):
            with TraceReader(shard_path) as reader:
                assert reader.header["shard"] == {"index": index, "of": 4}
                footer = reader.read_footer()
                assert footer["kind"] == "shard"
                total += footer["records"]
        with TraceReader(path) as reader:
            source_records = reader.read_footer()["records"]
        assert total == source_records

    def test_epoch_markers_are_the_split_points(self, small_trace, tmp_path):
        """Every shard but the last ends exactly on an epoch boundary, so
        allocation-event clusters are never torn across shards."""
        path, _ = small_trace
        shards = shard_trace(path, str(tmp_path / "b"), shards=3)
        for shard_path in shards[:-1]:
            with TraceReader(shard_path) as reader:
                records = list(reader.records())
            if records:
                assert records[-1][0] == EV_EPOCH

    def test_more_shards_than_epochs(self, tmp_path):
        spec = CORPUS["scan-heavy"].scaled(2_000)
        path = str(tmp_path / "tiny.trace")
        record_spec(spec, path)
        shards = shard_trace(path, str(tmp_path / "many"), shards=16)
        merged = replay_shards(shards, jobs=1)
        assert merged.shards == 16  # trailing shards are valid empty traces

    def test_invalid_arguments(self, small_trace, tmp_path):
        path, _ = small_trace
        with pytest.raises(ValueError):
            shard_trace(path, str(tmp_path), shards=0)
        with pytest.raises(ValueError):
            replay_shards([], jobs=1)
        with pytest.raises(ValueError):
            replay_shards([path], mode="quantum")


class TestHierarchyMode:
    def test_deterministic_and_counts_violations(self, small_trace):
        path, _ = small_trace
        first = replay_hierarchy(path)
        second = replay_hierarchy(path)
        assert first == second
        # allocator-stress califorms aggressively: the synthetic line-tail
        # security bytes must trip at least one random field access.
        assert first.violations > 0
        assert first.amat_cycles > 0

    def test_sharded_hierarchy_matches_serial(self, small_trace, tmp_path):
        path, _ = small_trace
        shards = shard_trace(path, str(tmp_path / "h"), shards=3)
        serial = replay_shards(shards, jobs=1, mode="hierarchy")
        parallel = replay_shards(shards, jobs=3, mode="hierarchy")
        assert serial == parallel


class TestAmatLinearity:
    def test_merged_cycles_equal_cycles_of_merged_counts(self, small_trace, tmp_path):
        """The AMAT model is linear, so summing per-shard cycles is the
        same as pricing the summed event counts."""
        from repro.traces.replayer import _amat_cycles, _config_from_header

        path, _ = small_trace
        shards = shard_trace(path, str(tmp_path / "lin"), shards=4)
        merged = replay_shards(shards, jobs=1)
        with TraceReader(path) as reader:
            config = _config_from_header(reader.header)
        assert merged.stats.amat_cycles == _amat_cycles(config, merged.stats.events)


def test_extra_latency_knobs_survive_the_header(tmp_path):
    """A trace recorded under the Figure-10 pessimistic config must be
    priced with that config at replay, not the defaults."""
    from repro.memory.hierarchy import WESTMERE
    from repro.traces.replayer import _config_from_header

    spec = CORPUS["scan-heavy"].scaled(2_000)
    plain_path = str(tmp_path / "plain.trace")
    slow_path = str(tmp_path / "slow.trace")
    record_spec(spec, plain_path)
    record_spec(spec, slow_path, config=WESTMERE.with_extra_latency(1))
    with TraceReader(slow_path) as reader:
        config = _config_from_header(reader.header)
    assert config.l2_extra_cycles == 1
    assert config.l3_extra_cycles == 1
    plain_cycles = replay_shards([plain_path], jobs=1).stats.amat_cycles
    slow_cycles = replay_shards([slow_path], jobs=1).stats.amat_cycles
    assert slow_cycles > plain_cycles


def test_in_memory_round_trip():
    """BytesIO targets work end to end (no filesystem needed)."""
    spec = CORPUS["pointer-chase"].scaled(2_000)
    buffer = io.BytesIO()
    live = record_spec(spec, buffer)
    buffer.seek(0)
    replayed = replay_timing(buffer)
    assert replayed.events == live.events


def test_unknown_record_kind_rejected(tmp_path):
    spec = CORPUS["scan-heavy"].scaled(1_000)
    path = str(tmp_path / "ok.trace")
    record_spec(spec, path)
    with TraceReader(path) as reader:
        header = reader.header
    bad = str(tmp_path / "bad.trace")
    with TraceWriter(bad, header) as writer:
        writer.append(EV_LOAD, 0, 8)
        writer.append(200, 0, 0)  # not a known EV_* kind
        writer.set_footer({})
    from repro.traces.format import TraceFormatError

    with pytest.raises(TraceFormatError, match="unknown record kind"):
        replay_timing(bad, verify=False)
