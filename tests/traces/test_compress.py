"""CALTRC02: codec correctness, v1↔v2 equivalence, error paths.

The acceptance gate for the compressed container: across the whole
scenario registry, a CALTRC02 recording replays bit-identically to its
CALTRC01 twin — single-core, sharded and multi-core — while shrinking
the on-disk footprint by well over the 4x target on compressible mixes.
"""

import io
import zlib

import pytest

from repro.traces import CORPUS, record_spec, replay_timing
from repro.traces.compress import (
    MAGIC_V2,
    MAX_FRAME_RECORDS,
    CompressedTraceWriter,
    compression_summary,
    decode_frame,
    encode_frame,
    frame_stats,
    transcode,
)
from repro.traces.format import (
    EV_ALLOC,
    EV_CFORM,
    EV_EPOCH,
    EV_LOAD,
    EV_STORE,
    TraceFormatError,
    TraceReader,
    trace_writer,
)
from repro.traces.replayer import replay_multicore, replay_shards, shard_trace

INSTRUCTIONS = 5_000

ALL_SCENARIOS = sorted(CORPUS)


# -- token/frame codec --------------------------------------------------------


class TestFrameCodec:
    def roundtrip(self, records):
        payload = encode_frame(records)
        assert list(decode_frame(payload, len(records))) == records
        return payload

    def test_empty_frame(self):
        assert list(decode_frame(encode_frame([]), 0)) == []

    def test_mixed_records(self):
        self.roundtrip(
            [
                (EV_LOAD, 0x1000, 8),
                (EV_STORE, 0x7FFF_0000, 8),
                (EV_CFORM, 0xDEAD_BEEF_0000, 3),
                (EV_ALLOC, 0x2000, 96),
                (EV_EPOCH, 0, 0),
            ]
        )

    def test_u64_bounds_and_negative_deltas(self):
        self.roundtrip(
            [
                (EV_LOAD, 2**64 - 1, 2**32 - 1),
                (EV_LOAD, 0, 0),
                (EV_STORE, 2**63, 8),
            ]
        )

    def test_monotone_run_collapses(self):
        # A constant-stride scan should tokenise far below one byte per
        # record even before deflate sees it.
        scan = [(EV_LOAD, 0x4000 + index * 64, 8) for index in range(10_000)]
        payload = self.roundtrip(scan)
        assert len(zlib.decompress(payload)) < len(scan)  # < 1 B/record

    def test_descending_run(self):
        self.roundtrip(
            [(EV_LOAD, 0x9000 - index * 8, 8) for index in range(100)]
        )

    def test_runs_broken_by_kind_or_arg(self):
        records = []
        for index in range(50):
            kind = EV_LOAD if index % 7 else EV_STORE
            arg = 8 if index % 11 else 4
            records.append((kind, 0x1000 + index * 64, arg))
        self.roundtrip(records)

    def test_record_count_mismatch_detected(self):
        payload = encode_frame([(EV_LOAD, 64, 8)] * 10)
        with pytest.raises(TraceFormatError, match="promised"):
            list(decode_frame(payload, 11))


# -- container round-trip -----------------------------------------------------


class TestContainer:
    def _write(self, records, buffer=None):
        buffer = buffer if buffer is not None else io.BytesIO()
        with CompressedTraceWriter(buffer, {"kind": "test"}) as writer:
            for record in records:
                writer.append(*record)
            writer.set_footer({"records": len(records)})
        return buffer

    def test_roundtrip_with_epoch_frames(self):
        records = []
        for epoch in range(5):
            records.extend(
                (EV_LOAD, 0x1000 + epoch * 4096 + index * 8, 8)
                for index in range(200)
            )
            records.append((EV_EPOCH, epoch, 0))
        buffer = self._write(records)
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert reader.version == 2
        assert list(reader.records()) == records
        assert reader.footer == {"records": len(records)}

    def test_epochless_trace_flushes_by_cap(self):
        count = MAX_FRAME_RECORDS + 17
        records = [(EV_LOAD, index * 8, 8) for index in range(count)]
        buffer = self._write(records)
        buffer.seek(0)
        assert sum(1 for _ in TraceReader(buffer).records()) == count

    def test_empty_trace(self):
        buffer = self._write([])
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert list(reader.records()) == []
        assert reader.footer == {"records": 0}

    def test_magic_detected(self):
        buffer = self._write([])
        assert buffer.getvalue().startswith(MAGIC_V2)

    def test_trace_writer_factory_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            trace_writer(io.BytesIO(), {}, version=3)


# -- whole-registry v1 <-> v2 equivalence ------------------------------------


@pytest.fixture(scope="module")
def recorded_pairs(tmp_path_factory):
    """Record every registry scenario in both containers once."""
    workdir = tmp_path_factory.mktemp("v1v2")
    pairs = {}
    for name in ALL_SCENARIOS:
        spec = CORPUS[name].scaled(INSTRUCTIONS)
        v1 = str(workdir / f"{name}.v1.trace")
        v2 = str(workdir / f"{name}.v2.trace")
        live = record_spec(spec, v1)
        record_spec(spec, v2, compress=True)
        pairs[name] = (spec, v1, v2, live)
    return pairs


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_v2_record_stream_is_identical(name, recorded_pairs):
    _, v1, v2, _ = recorded_pairs[name]
    with TraceReader(v1) as a, TraceReader(v2) as b:
        for left, right in zip(a.records(), b.records(), strict=True):
            assert left == right
        assert a.footer == b.footer
        assert {k: v for k, v in a.header.items() if k != "format"} == {
            k: v for k, v in b.header.items() if k != "format"
        }


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_v2_replay_is_bit_identical(name, recorded_pairs):
    _, v1, v2, live = recorded_pairs[name]
    assert replay_timing(v2) == replay_timing(v1) == live


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_sharded_v2_replay_matches_v1(name, recorded_pairs, tmp_path):
    _, v1, v2, _ = recorded_pairs[name]
    shards_v1 = shard_trace(v1, str(tmp_path / "v1"), shards=3)
    shards_v2 = shard_trace(v2, str(tmp_path / "v2"), shards=3)
    # v2 shards stay compressed.
    with TraceReader(shards_v2[0]) as reader:
        assert reader.version == 2
    assert (
        replay_shards(shards_v2, jobs=2).stats
        == replay_shards(shards_v1, jobs=1).stats
    )


def test_multicore_replay_is_container_agnostic(recorded_pairs):
    _, churn_v1, churn_v2, _ = recorded_pairs["server-churn"]
    _, scan_v1, scan_v2, _ = recorded_pairs["scan-heavy"]
    from_v1 = replay_multicore([churn_v1, scan_v1])
    from_v2 = replay_multicore([churn_v2, scan_v2], jobs=2)
    mixed = replay_multicore([churn_v1, scan_v2])
    assert from_v1.per_core == from_v2.per_core == mixed.per_core
    assert from_v1.merged == from_v2.merged == mixed.merged


def test_compression_reaches_target_ratio(recorded_pairs):
    """≥4x on-disk reduction on at least two registry mixes (acceptance
    criterion); in practice every mix clears it by a wide margin."""
    import os

    winners = [
        name
        for name, (_, v1, v2, _) in recorded_pairs.items()
        if os.path.getsize(v1) / os.path.getsize(v2) >= 4.0
    ]
    assert len(winners) >= 2, winners


def test_transcode_both_directions(recorded_pairs, tmp_path):
    spec, v1, v2, live = recorded_pairs["quarantine-pressure"]
    back_to_v1 = str(tmp_path / "back.v1.trace")
    to_v2 = str(tmp_path / "to.v2.trace")
    transcode(v2, back_to_v1, version=1)
    transcode(v1, to_v2, version=2)
    # v2 -> v1 reproduces the original v1 file byte-for-byte.
    with open(v1, "rb") as a, open(back_to_v1, "rb") as b:
        assert a.read() == b.read()
    assert replay_timing(to_v2) == live


def test_frame_stats_match_footer(recorded_pairs):
    _, _, v2, _ = recorded_pairs["server-churn"]
    with TraceReader(v2) as reader:
        footer = reader.read_footer()
    frames = frame_stats(v2)
    assert sum(count for count, _ in frames) == footer["records"]
    summary = compression_summary(v2, footer["records"])
    assert summary["frames"] == len(frames)
    assert summary["ratio"] > 4.0


def test_frame_stats_rejects_v1(recorded_pairs):
    _, v1, _, _ = recorded_pairs["server-churn"]
    with pytest.raises(TraceFormatError, match="not a compressed"):
        frame_stats(v1)


# -- error paths --------------------------------------------------------------


class TestMalformedCompressed:
    @pytest.fixture()
    def sample(self):
        buffer = io.BytesIO()
        with CompressedTraceWriter(buffer, {"kind": "test"}) as writer:
            for index in range(500):
                writer.append(EV_LOAD, index * 64, 8)
                if index % 100 == 99:
                    writer.append(EV_EPOCH, index // 100, 0)
            writer.set_footer({"records": writer.record_count})
        return buffer.getvalue()

    def test_truncated_mid_frame(self, sample):
        reader = TraceReader(io.BytesIO(sample[: len(sample) // 2]))
        with pytest.raises(TraceFormatError, match="truncated|terminator"):
            list(reader.records())

    def test_missing_end_frame(self, sample):
        # Chop the end frame (5-byte head + footer JSON) off exactly.
        import json

        footer_bytes = len(json.dumps({"records": 505}, sort_keys=True))
        reader = TraceReader(io.BytesIO(sample[: -(5 + footer_bytes)]))
        with pytest.raises(TraceFormatError, match="terminator"):
            list(reader.records())

    def test_corrupt_frame_payload(self, sample):
        corrupted = bytearray(sample)
        corrupted[len(corrupted) // 2] ^= 0xFF
        reader = TraceReader(io.BytesIO(bytes(corrupted)))
        with pytest.raises(TraceFormatError):
            list(reader.records())

    def test_unknown_frame_type(self):
        buffer = io.BytesIO()
        with CompressedTraceWriter(buffer, {"kind": "test"}) as writer:
            writer.set_footer({})
        raw = buffer.getvalue()
        # The first byte after the header preamble is the frame type.
        import json
        import struct

        header_len = struct.unpack_from("<I", raw, 8)[0]
        offset = 8 + 4 + header_len
        corrupted = bytearray(raw)
        corrupted[offset] = 0x7E
        reader = TraceReader(io.BytesIO(bytes(corrupted)))
        with pytest.raises(TraceFormatError, match="frame type"):
            list(reader.records())

    def test_truncated_magic(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            TraceReader(io.BytesIO(MAGIC_V2[:5]))

    def test_abort_leaves_invalid_file(self, tmp_path):
        path = str(tmp_path / "aborted.trace")
        writer = CompressedTraceWriter(path, {"kind": "test"})
        writer.append(EV_LOAD, 64, 8)
        writer.abort()
        reader = TraceReader(path)
        with pytest.raises(TraceFormatError):
            list(reader.records())
