"""Multi-core shared-L3 replay invariants (ISSUE 3 acceptance tests).

The three pinned invariants:

* merged (and per-core) accounting identical for any ``jobs`` value;
* a 1-core ``replay-mc`` reproduces the single-ladder ``replay``
  statistics exactly;
* shared-L3 contention never makes a core's L3 miss count better than
  its solo run, and is strictly worse for at least one antagonist
  pairing.
"""

import io

import pytest

from repro.traces import (
    CORPUS,
    record_spec,
    replay_multicore,
    replay_shards,
    replay_timing,
    shard_trace,
)
from repro.traces.format import TraceFormatError


@pytest.fixture(scope="module")
def trace_pair(tmp_path_factory):
    """Recorded traces for the multicore tests.

    ``scan-heavy`` is the antagonist: its ~4 MB streaming footprint
    overflows the 2 MB shared L3, so co-runners genuinely contend
    (server-churn and pointer-chase alone both fit).
    """
    workdir = tmp_path_factory.mktemp("mc")
    paths = {}
    for name, length in (
        ("server-churn", 4_000),
        ("pointer-chase", 4_000),
        ("scan-heavy", 3_000),
    ):
        path = str(workdir / f"{name}.trace")
        record_spec(CORPUS[name].scaled(length), path)
        paths[name] = path
    return paths


class TestJobsInvariance:
    def test_merged_and_per_core_identical_across_jobs(self, trace_pair):
        sources = list(trace_pair.values())
        serial = replay_multicore(sources, jobs=1)
        parallel = replay_multicore(sources, jobs=4)
        assert serial == parallel  # per-core, merged, everything

    def test_merged_is_sum_of_per_core(self, trace_pair):
        replay = replay_multicore(list(trace_pair.values()))
        merged = replay.per_core[0]
        for stats in replay.per_core[1:]:
            merged = merged.merged_with(stats)
        assert replay.merged == merged


class TestSingleCoreEquivalence:
    def test_one_core_matches_single_ladder_replay(self, trace_pair):
        path = trace_pair["server-churn"]
        single = replay_timing(path)
        multi = replay_multicore([path])
        assert multi.cores == 1
        stats = multi.per_core[0]
        assert stats.events == single.events
        assert stats.cform_lines == single.cform_instructions
        assert stats.alloc_events == single.alloc_events
        assert multi.merged == stats

    def test_one_core_shard_stream_matches_replay_shards(
        self, trace_pair, tmp_path
    ):
        """A core fed a shard sequence equals the merged sharded replay's
        touch accounting; cache events differ only through the cold
        ladder per shard, which the concatenated stream does not reset."""
        path = trace_pair["pointer-chase"]
        shards = shard_trace(path, str(tmp_path / "s"), shards=3)
        merged = replay_shards(shards, jobs=1).stats
        multi = replay_multicore([shards]).per_core[0]
        assert multi.touches == merged.touches
        assert multi.cform_lines == merged.cform_lines
        assert multi.alloc_events == merged.alloc_events


class TestContention:
    def test_l3_misses_never_better_than_solo_and_strictly_worse_somewhere(
        self, trace_pair
    ):
        sources = [trace_pair["server-churn"], trace_pair["scan-heavy"]]
        solo = [
            replay_multicore([source]).per_core[0].events.l3_misses
            for source in sources
        ]
        contended = replay_multicore(sources)
        deltas = [
            contended.per_core[core].events.l3_misses - solo[core]
            for core in range(len(sources))
        ]
        assert all(delta >= 0 for delta in deltas)
        assert any(delta > 0 for delta in deltas)

    def test_private_ladders_are_unaffected_by_co_runners(self, trace_pair):
        """L1/L2 are per-core private: their counts match the solo run."""
        sources = list(trace_pair.values())
        contended = replay_multicore(sources)
        for core, source in enumerate(sources):
            solo = replay_multicore([source]).per_core[0]
            cont = contended.per_core[core]
            assert cont.events.l1_accesses == solo.events.l1_accesses
            assert cont.events.l1_misses == solo.events.l1_misses
            assert cont.events.l2_misses == solo.events.l2_misses


class TestApiEdges:
    def test_in_memory_sources(self):
        raws = []
        for name in ("server-churn", "scan-heavy"):
            buffer = io.BytesIO()
            record_spec(CORPUS[name].scaled(2_000), buffer)
            raws.append(buffer.getvalue())
        first = replay_multicore([io.BytesIO(raw) for raw in raws])
        second = replay_multicore([io.BytesIO(raw) for raw in raws])
        assert first == second

    def test_file_objects_rejected_in_parallel_mode(self):
        buffer = io.BytesIO()
        record_spec(CORPUS["scan-heavy"].scaled(1_000), buffer)
        buffer.seek(0)
        with pytest.raises(ValueError, match="jobs > 1"):
            replay_multicore([buffer, buffer], jobs=2)

    def test_no_cores_rejected(self):
        with pytest.raises(ValueError):
            replay_multicore([])

    def test_mismatched_configs_rejected_without_override(
        self, trace_pair, tmp_path
    ):
        from repro.memory.hierarchy import WESTMERE

        slow_path = str(tmp_path / "slow.trace")
        record_spec(
            CORPUS["server-churn"].scaled(2_000),
            slow_path,
            config=WESTMERE.with_extra_latency(1),
        )
        with pytest.raises(TraceFormatError, match="different hierarchy"):
            replay_multicore([trace_pair["server-churn"], slow_path])
        # An explicit override reconciles them.
        replay = replay_multicore(
            [trace_pair["server-churn"], slow_path],
            config=WESTMERE.with_extra_latency(1),
        )
        assert replay.cores == 2

    def test_config_override_prices_extra_latency(self, trace_pair):
        from repro.memory.hierarchy import WESTMERE

        sources = list(trace_pair.values())
        base = replay_multicore(sources)
        slow = replay_multicore(sources, config=WESTMERE.with_extra_latency(1))
        # Same events (geometry unchanged), strictly more cycles.
        assert slow.merged.events == base.merged.events
        assert slow.merged.amat_cycles > base.merged.amat_cycles


class TestCli:
    def test_replay_mc_output_identical_across_jobs(self, trace_pair, capsys):
        from repro.traces.__main__ import main

        path = trace_pair["server-churn"]
        argv = ["replay-mc", path, "--cores", "2"]
        assert main([*argv, "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main([*argv, "--jobs", "4"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "core 0" in serial_out
        assert "core 1" in serial_out
        assert "merged over 2 cores" in serial_out

    def test_replay_mc_mix_mode(self, capsys):
        from repro.traces.__main__ import main

        assert main(
            ["replay-mc", "--mix", "server-vs-scan",
             "--instructions", "2000", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "core 0 (server-churn)" in out
        assert "core 1 (scan-heavy)" in out

    def test_replay_mc_requires_traces_xor_mix(self, trace_pair):
        from repro.traces.__main__ import main

        with pytest.raises(SystemExit):
            main(["replay-mc"])
        with pytest.raises(SystemExit):
            main(
                ["replay-mc", trace_pair["server-churn"],
                 "--mix", "server-vs-scan"]
            )

    def test_replay_mc_unknown_mix_is_usage_error(self):
        from repro.traces.__main__ import main

        with pytest.raises(SystemExit):
            main(["replay-mc", "--mix", "nope"])


class TestRegistryMixes:
    def test_named_mixes_resolve(self):
        from repro.traces import MULTICORE_MIXES, multicore_mix

        for name, mix in MULTICORE_MIXES.items():
            assert multicore_mix(name) is mix
            specs = mix.specs(instructions=1_000)
            assert len(specs) == len(mix.cores)
            assert all(spec.instructions == 1_000 for spec in specs)

    def test_counted_expansion(self):
        from repro.traces import expand_core_names

        assert expand_core_names(
            ["server-churn", "2x pointer-chase"]
        ) == ("server-churn", "pointer-chase", "pointer-chase")
        assert expand_core_names(["3*scan-heavy"]) == ("scan-heavy",) * 3

    def test_expansion_validates_names_and_counts(self):
        from repro.traces import expand_core_names

        with pytest.raises(KeyError):
            expand_core_names(["2x not-a-scenario"])
        with pytest.raises(ValueError):
            expand_core_names(["0x server-churn"])
        with pytest.raises(ValueError):
            expand_core_names([])

    def test_inline_mix_parsing(self):
        from repro.traces import multicore_mix

        mix = multicore_mix("scan-heavy,2x pointer-chase")
        assert mix.cores == ("scan-heavy", "pointer-chase", "pointer-chase")
        # Single-entry inline forms work too: counted, and bare names.
        assert multicore_mix("2x pointer-chase").cores == ("pointer-chase",) * 2
        assert multicore_mix("scan-heavy").cores == ("scan-heavy",)
        with pytest.raises(KeyError):
            multicore_mix("not-a-mix")
