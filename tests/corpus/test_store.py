"""Corpus store: content addressing, manifest binding, maintenance."""

import json
import os

import pytest

from repro.corpus.store import (
    CorpusStore,
    canonical_digest,
    figure_spec,
    registry_fingerprint,
    spec_fingerprint,
)
from repro.memory.hierarchy import WESTMERE
from repro.traces.registry import CORPUS
from repro.traces.replayer import replay_timing
from repro.workloads.generator import Scenario, slowdown
from repro.workloads.specs import SPEC_PROFILES

INSTRUCTIONS = 3_000


@pytest.fixture()
def store(tmp_path):
    return CorpusStore(str(tmp_path / "corpus"))


def _spec(name="server-churn"):
    return CORPUS[name].scaled(INSTRUCTIONS)


class TestFingerprints:
    def test_stable_across_instances(self):
        assert spec_fingerprint(_spec()) == spec_fingerprint(_spec())

    def test_sensitive_to_spec_and_geometry(self):
        base = spec_fingerprint(_spec())
        assert spec_fingerprint(_spec().scaled(INSTRUCTIONS + 1)) != base
        assert spec_fingerprint(_spec("dma-mixed")) != base
        assert (
            spec_fingerprint(_spec(), WESTMERE.with_extra_latency(1)) != base
        )

    def test_registry_fingerprint_covers_every_mix(self):
        # Any registry change must change the CI cache key.
        assert registry_fingerprint() == registry_fingerprint()
        assert len(registry_fingerprint()) == 64


class TestEnsure:
    def test_builds_then_hits(self, store):
        first = store.ensure(_spec())
        assert first.built
        assert os.path.exists(first.path)
        second = store.ensure(_spec())
        assert not second.built
        assert second.path == first.path
        assert (store.built, store.hits) == (1, 1)

    def test_hit_survives_a_fresh_store_instance(self, store):
        built = store.ensure(_spec())
        reopened = CorpusStore(store.root)
        resolved = reopened.ensure(_spec())
        assert not resolved.built
        assert resolved.entry == built.entry

    def test_object_is_content_addressed(self, store):
        resolved = store.ensure(_spec())
        digest, raw_bytes, footer = canonical_digest(resolved.path)
        assert resolved.entry.digest == digest
        assert resolved.entry.raw_bytes == raw_bytes
        assert resolved.entry.records == footer["records"]
        assert digest in resolved.path

    def test_object_replays_verified(self, store):
        resolved = store.ensure(_spec())
        result = replay_timing(resolved.path)  # verifies against footer
        assert result.benchmark == _spec().profile.name

    def test_compression_recorded_in_manifest(self, store):
        entry = store.ensure(_spec("scan-heavy")).entry
        assert entry.stored_bytes < entry.raw_bytes
        assert entry.compression_ratio > 4.0

    def test_missing_object_triggers_rebuild(self, store):
        first = store.ensure(_spec())
        os.remove(first.path)
        second = store.ensure(_spec())
        assert second.built
        assert os.path.exists(second.path)


class TestCanonicalDigest:
    def test_v1_and_v2_twins_hash_identically(self, store, tmp_path):
        from repro.traces.recorder import record_spec

        v1 = str(tmp_path / "twin.v1.trace")
        record_spec(_spec(), v1)
        resolved = store.ensure(_spec())  # stored as CALTRC02
        assert canonical_digest(v1)[:2] == canonical_digest(resolved.path)[:2]

    def test_v1_digest_is_the_file_hash(self, tmp_path):
        import hashlib

        from repro.traces.recorder import record_spec

        path = str(tmp_path / "plain.v1.trace")
        record_spec(_spec(), path)
        digest, raw_bytes, _footer = canonical_digest(path)
        with open(path, "rb") as handle:
            raw = handle.read()
        assert digest == hashlib.sha256(raw).hexdigest()
        assert raw_bytes == len(raw)


class TestMaintenance:
    def test_verify_clean_store(self, store):
        store.ensure(_spec())
        store.ensure(_spec("dma-mixed"))
        assert store.verify() == []

    def test_verify_detects_corruption(self, store):
        resolved = store.ensure(_spec())
        with open(resolved.path, "r+b") as handle:
            handle.seek(30)
            handle.write(b"\xff\xff\xff\xff")
        problems = store.verify()
        assert problems
        assert any("server-churn" in problem for problem in problems)

    def test_verify_detects_missing_object(self, store):
        resolved = store.ensure(_spec())
        os.remove(resolved.path)
        assert any("missing" in problem for problem in store.verify())

    def test_gc_removes_stale_unreferenced_objects(self, store):
        resolved = store.ensure(_spec())
        orphan = os.path.join(store.objects_dir, "ab", "a" * 64 + ".trace")
        os.makedirs(os.path.dirname(orphan), exist_ok=True)
        with open(orphan, "w") as handle:
            handle.write("junk")
        os.utime(orphan, (0, 0))  # old enough to be a crash leftover
        removed = store.gc()
        assert orphan in removed
        assert not os.path.exists(orphan)
        assert os.path.exists(resolved.path)  # referenced object kept

    def test_gc_spares_freshly_published_objects(self, store):
        # The window between a builder's os.replace and its manifest
        # update: an unreferenced but new .trace must survive gc.
        fresh = os.path.join(store.objects_dir, "cd", "b" * 64 + ".trace")
        os.makedirs(os.path.dirname(fresh), exist_ok=True)
        with open(fresh, "w") as handle:
            handle.write("just published")
        assert store.gc() == []
        assert os.path.exists(fresh)

    def test_gc_prunes_stale_entries(self, store):
        resolved = store.ensure(_spec())
        os.remove(resolved.path)
        removed = store.gc()
        assert any("server-churn" in item for item in removed)
        assert store.manifest().entries == {}

    def test_gc_on_never_built_store_is_a_noop(self, store):
        assert store.gc() == []
        assert store.verify() == []

    def test_gc_spares_fresh_inprogress_recordings(self, store):
        # A concurrent builder's live temp file must survive gc; only
        # hour-old crash leftovers are reaped.
        store.ensure(_spec())
        fresh = os.path.join(store.objects_dir, "live.recording")
        with open(fresh, "w") as handle:
            handle.write("half-written")
        stale = os.path.join(store.objects_dir, "dead.recording")
        with open(stale, "w") as handle:
            handle.write("crash leftover")
        os.utime(stale, (0, 0))
        removed = store.gc()
        assert os.path.exists(fresh)
        assert not os.path.exists(stale)
        assert stale in removed

    def test_gc_sweeps_stale_quarantined_blobs(self, store):
        store.ensure(_spec())
        os.makedirs(store.quarantine_dir, exist_ok=True)
        stale = os.path.join(store.quarantine_dir, "old.trace")
        with open(stale, "w") as handle:
            handle.write("quarantined long ago")
        os.utime(stale, (0, 0))
        removed = store.gc()
        assert stale in removed
        assert not os.path.exists(stale)
        assert store.reclaimed_bytes >= len("quarantined long ago")

    def test_gc_spares_recent_quarantine_and_the_heal_ledger(self, store):
        from repro.corpus.store import HEAL_LOG_NAME

        store.ensure(_spec())
        os.makedirs(store.quarantine_dir, exist_ok=True)
        recent = os.path.join(store.quarantine_dir, "recent.trace")
        with open(recent, "w") as handle:
            handle.write("just quarantined")
        ledger = os.path.join(store.quarantine_dir, HEAL_LOG_NAME)
        with open(ledger, "w") as handle:
            handle.write("{}\n")
        os.utime(ledger, (0, 0))  # ancient, but never swept
        assert store.gc() == []
        assert os.path.exists(recent)
        assert os.path.exists(ledger)

    def test_gc_keep_days_tightens_the_window(self, store):
        store.ensure(_spec())
        os.makedirs(store.quarantine_dir, exist_ok=True)
        blob = os.path.join(store.quarantine_dir, "damaged.trace")
        with open(blob, "w") as handle:
            handle.write("x" * 100)
        assert store.gc() == []  # younger than the default window
        removed = store.gc(keep_days=0.0)
        assert blob in removed
        assert store.reclaimed_bytes == 100

    def test_manifest_is_valid_json(self, store):
        store.ensure(_spec())
        with open(store.manifest_path) as handle:
            document = json.load(handle)
        assert document["manifest_version"] == 1
        (entry,) = document["entries"].values()
        assert entry["scenario"] == "server-churn"


class TestFigureResolution:
    def test_corpus_slowdown_equals_live_slowdown(self, store):
        profile = SPEC_PROFILES["mcf"]
        scenario = Scenario(policy=("fixed", 2))
        live = slowdown(profile, scenario, instructions=INSTRUCTIONS)
        via_corpus = store.slowdown(profile, scenario, INSTRUCTIONS)
        assert via_corpus == live
        # Second resolution is a pure corpus hit.
        built = store.built
        assert store.slowdown(profile, scenario, INSTRUCTIONS) == live
        assert store.built == built

    def test_variant_config_prices_the_same_trace(self, store):
        profile = SPEC_PROFILES["astar"]
        live = slowdown(
            profile,
            Scenario.baseline(),
            instructions=INSTRUCTIONS,
            variant_config=WESTMERE.with_extra_latency(1),
        )
        via_corpus = store.slowdown(
            profile,
            Scenario.baseline(),
            INSTRUCTIONS,
            variant_config=WESTMERE.with_extra_latency(1),
        )
        assert via_corpus == live
        # Baseline and variant share one recorded object.
        assert store.built == 1

    def test_figure_spec_is_deterministic(self):
        profile = SPEC_PROFILES["mcf"]
        scenario = Scenario(policy=("fixed", 3))
        assert figure_spec(profile, scenario, 1000) == figure_spec(
            profile, scenario, 1000
        )


class TestAttackReplayInCorpus:
    def test_attack_mix_round_trips_through_the_store(self, store):
        resolved = store.ensure(_spec("attack-replay"))
        assert resolved.entry.driver == "attacks"
        result = replay_timing(resolved.path)
        assert result.benchmark == "attack-replay"
        assert result.alloc_events > 0  # grooming churn was recorded
