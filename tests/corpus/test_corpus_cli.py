"""Smoke tests for the ``python -m repro.corpus`` CLI."""

import os

import pytest

from repro.corpus.__main__ import main
from repro.corpus.store import CorpusStore
from repro.traces.registry import CORPUS


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "corpus")


ARGS = ["--instructions", "2000"]


def test_build_records_then_hits(root, capsys):
    assert main(["--root", root, "build", *ARGS]) == 0
    out = capsys.readouterr().out
    assert f"{len(CORPUS)} recorded, 0 reused" in out
    assert main(["--root", root, "build", *ARGS]) == 0
    out = capsys.readouterr().out
    assert f"0 recorded, {len(CORPUS)} reused" in out


def test_build_subset_and_unknown_scenario(root, capsys):
    assert main(
        ["--root", root, "build", "--scenario", "scan-heavy", *ARGS]
    ) == 0
    assert "scan-heavy" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        main(["--root", root, "build", "--scenario", "nope"])


def test_ls_shows_entries(root, capsys):
    main(["--root", root, "build", "--scenario", "attack-replay", *ARGS])
    capsys.readouterr()
    assert main(["--root", root, "ls"]) == 0
    out = capsys.readouterr().out
    assert "attack-replay" in out
    assert "attacks" in out  # driver column


def test_ls_empty_store(root, capsys):
    assert main(["--root", root, "ls"]) == 0
    assert "empty corpus" in capsys.readouterr().out


def test_verify_ok_then_fails_on_corruption(root, capsys):
    main(["--root", root, "build", "--scenario", "server-churn", *ARGS])
    capsys.readouterr()
    assert main(["--root", root, "verify"]) == 0
    assert "every object hash verified" in capsys.readouterr().out

    store = CorpusStore(root)
    (entry,) = store.manifest().entries.values()
    with open(store.object_path(entry.digest), "r+b") as handle:
        handle.seek(40)
        handle.write(b"\x00\x00\x00\x00")
    assert main(["--root", root, "verify"]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_verify_surfaces_the_heal_ledger(root, capsys):
    main(["--root", root, "build", "--scenario", "server-churn", *ARGS])
    store = CorpusStore(root)
    (entry,) = store.manifest().entries.values()
    with open(store.object_path(entry.digest), "r+b") as handle:
        handle.seek(40)
        handle.write(b"\x00\x00\x00\x00")
    capsys.readouterr()

    assert main(["--root", root, "verify", "--repair"]) == 0
    out = capsys.readouterr().out
    assert "heal ledger: 1 event(s), 1 quarantined file(s)" in out
    assert "server-churn: 1 event(s)" in out

    # The summary persists: a later clean verify still reports it.
    assert main(["--root", root, "verify"]) == 0
    assert "heal ledger: 1 event(s)" in capsys.readouterr().out


def test_clean_verify_prints_no_ledger_line(root, capsys):
    main(["--root", root, "build", "--scenario", "server-churn", *ARGS])
    capsys.readouterr()
    assert main(["--root", root, "verify"]) == 0
    assert "heal ledger" not in capsys.readouterr().out


def test_gc_reports_removals(root, capsys):
    main(["--root", root, "build", "--scenario", "server-churn", *ARGS])
    store = CorpusStore(root)
    (entry,) = store.manifest().entries.values()
    os.remove(store.object_path(entry.digest))
    capsys.readouterr()
    assert main(["--root", root, "gc"]) == 0
    assert "1 item(s) removed" in capsys.readouterr().out


def test_gc_keep_days_sweeps_quarantine(root, capsys):
    main(["--root", root, "build", "--scenario", "server-churn", *ARGS])
    store = CorpusStore(root)
    os.makedirs(store.quarantine_dir, exist_ok=True)
    blob = os.path.join(store.quarantine_dir, "damaged.trace")
    with open(blob, "w") as handle:
        handle.write("x" * 64)
    capsys.readouterr()
    assert main(["--root", root, "gc"]) == 0
    assert "0 B reclaimed" in capsys.readouterr().out
    assert os.path.exists(blob)  # inside the default keep window
    assert main(["--root", root, "gc", "--keep-days", "0"]) == 0
    assert "64 B reclaimed" in capsys.readouterr().out
    assert not os.path.exists(blob)


def test_key_is_stable(root, capsys):
    assert main(["--root", root, "key"]) == 0
    first = capsys.readouterr().out.strip()
    assert main(["--root", root, "key"]) == 0
    assert capsys.readouterr().out.strip() == first
    assert len(first) == 64
