"""Pack files: framing, round-trip identity, verification, CLI."""

import os
import struct

import pytest

from repro.corpus.__main__ import main
from repro.corpus.packs import (
    PACK_MAGIC,
    list_packs,
    pack_id,
    read_pack,
    unpack,
    verify_pack,
    write_pack,
)
from repro.corpus.store import CorpusStore
from repro.traces.format import TraceFormatError
from repro.traces.registry import CORPUS

INSTRUCTIONS = 2_000


def _spec(name):
    return CORPUS[name].scaled(INSTRUCTIONS)


@pytest.fixture()
def store(tmp_path):
    store = CorpusStore(str(tmp_path / "corpus"))
    store.ensure(_spec("server-churn"))
    store.ensure(_spec("pointer-chase"))
    return store


class TestWriteRead:
    def test_content_addressed_default_path(self, store):
        path, identifier, count = write_pack(store)
        assert count == 2
        assert os.path.basename(path) == f"{identifier}.pack"
        assert pack_id(path) == identifier
        assert list_packs(store.root) == [(identifier, path)]

    def test_index_carries_manifest_entries(self, store):
        path, _identifier, _count = write_pack(store)
        info = read_pack(path)
        scenarios = sorted(member.entry.scenario for member in info.members)
        assert scenarios == ["pointer-chase", "server-churn"]
        assert info.stored_bytes == sum(
            member.stored_bytes for member in info.members
        )

    def test_scenario_selection(self, store, tmp_path):
        out = str(tmp_path / "one.pack")
        path, _identifier, count = write_pack(
            store, out=out, names=["pointer-chase"]
        )
        assert (path, count) == (out, 1)
        info = read_pack(path)
        assert info.members[0].entry.scenario == "pointer-chase"

    def test_unknown_scenario_raises_before_writing(self, store, tmp_path):
        with pytest.raises(KeyError, match="nope"):
            write_pack(store, out=str(tmp_path / "x.pack"), names=["nope"])
        assert not os.path.exists(tmp_path / "x.pack")

    def test_empty_corpus_refused(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to pack"):
            write_pack(CorpusStore(str(tmp_path / "empty")))

    def test_missing_object_refused(self, store):
        entry = next(iter(store.manifest().entries.values()))
        os.remove(store.object_path(entry.digest))
        with pytest.raises(FileNotFoundError):
            write_pack(store)


class TestRoundTrip:
    def test_unpack_restores_digest_identical_store(self, store, tmp_path):
        path, _identifier, _count = write_pack(store)
        other = CorpusStore(str(tmp_path / "other"))
        installed, skipped = unpack(path, other)
        assert len(installed) == 2 and skipped == []
        assert (
            other.manifest().entries.keys() == store.manifest().entries.keys()
        )
        for entry in store.manifest().entries.values():
            with open(store.object_path(entry.digest), "rb") as source:
                original = source.read()
            with open(other.object_path(entry.digest), "rb") as target:
                assert target.read() == original

    def test_unpacked_store_hits_without_recording(self, store, tmp_path):
        path, _identifier, _count = write_pack(store)
        other = CorpusStore(str(tmp_path / "other"))
        unpack(path, other)
        resolved = other.ensure(_spec("server-churn"))
        assert not resolved.built
        assert other.built == 0

    def test_reunpack_skips_present_objects(self, store, tmp_path):
        path, _identifier, _count = write_pack(store)
        other = CorpusStore(str(tmp_path / "other"))
        unpack(path, other)
        installed, skipped = unpack(path, other)
        assert installed == [] and len(skipped) == 2


class TestDamage:
    def test_verify_clean_pack(self, store):
        path, _identifier, _count = write_pack(store)
        assert verify_pack(path) == []

    def test_bad_magic_rejected(self, store, tmp_path):
        bad = tmp_path / "bad.pack"
        bad.write_bytes(b"NOTAPACK" + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="magic"):
            read_pack(str(bad))

    def test_truncated_payload_rejected(self, store):
        path, _identifier, _count = write_pack(store)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)
        with pytest.raises(TraceFormatError, match="payload"):
            read_pack(path)

    def test_flipped_payload_byte_is_detected(self, store, tmp_path):
        path, _identifier, _count = write_pack(store)
        info = read_pack(path)
        with open(path, "r+b") as handle:
            handle.seek(info.payload_start + 50)
            byte = handle.read(1)
            handle.seek(info.payload_start + 50)
            handle.write(bytes([byte[0] ^ 0xFF]))
        problems = verify_pack(path)
        assert problems
        other = CorpusStore(str(tmp_path / "other"))
        with pytest.raises(TraceFormatError):
            unpack(path, other)
        # Nothing corrupt landed in the target store.
        for entry in store.manifest().entries.values():
            target = other.object_path(entry.digest)
            if os.path.exists(target):
                from repro.corpus.store import canonical_digest

                digest, _raw, _footer = canonical_digest(target)
                assert digest == entry.digest

    def test_bad_index_version(self, store):
        path, _identifier, _count = write_pack(store)
        with open(path, "rb") as handle:
            handle.read(len(PACK_MAGIC))
            (length,) = struct.unpack("<I", handle.read(4))
            index = handle.read(length)
        tampered = index.replace(b'"pack_version": 1', b'"pack_version": 9')
        with open(path, "r+b") as handle:
            handle.seek(len(PACK_MAGIC) + 4)
            handle.write(tampered)
        with pytest.raises(TraceFormatError, match="version"):
            read_pack(path)


class TestPackCLI:
    def test_pack_then_unpack(self, store, tmp_path, capsys):
        assert main(["--root", store.root, "pack"]) == 0
        out = capsys.readouterr().out
        assert "packed 2 object(s)" in out
        identifier, path = list_packs(store.root)[0]
        other_root = str(tmp_path / "other")
        assert main(["--root", other_root, "unpack", path]) == 0
        out = capsys.readouterr().out
        assert "2 object(s) installed" in out
        assert CorpusStore(other_root).manifest().entries.keys() == (
            store.manifest().entries.keys()
        )

    def test_unpack_refuses_damaged_pack(self, store, tmp_path, capsys):
        path, _identifier, _count = write_pack(store)
        info = read_pack(path)
        with open(path, "r+b") as handle:
            handle.seek(info.payload_start + 10)
            byte = handle.read(1)
            handle.seek(info.payload_start + 10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["--root", str(tmp_path / "o"), "unpack", path]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_pack_scenario_filter(self, store, capsys):
        assert main(
            ["--root", store.root, "pack", "--scenario", "pointer-chase"]
        ) == 0
        assert "packed 1 object(s)" in capsys.readouterr().out
