"""Tests for the Section 7.3 derandomization analytics."""

import math

import pytest

from repro.analysis.security import (
    guess_success_probability,
    objects_for_target_probability,
    paper_headline_numbers,
    scan_success_probability,
    simulate_guess_attack,
    simulate_scan_attack,
)
from repro.softstack.ctypes_model import LISTING_1_STRUCT_A


class TestScanFormula:
    def test_paper_claim_O250(self):
        # "With 10% padding, when O reaches 250, the attack success goes
        # to 1e-20."
        assert scan_success_probability(0.10, 250) < 1e-11
        assert objects_for_target_probability(0.10, 1e-20) <= 450

    def test_zero_objects_always_succeeds(self):
        assert scan_success_probability(0.10, 0) == 1.0

    def test_monotone_in_objects(self):
        values = [scan_success_probability(0.1, o) for o in (1, 10, 100)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_padding(self):
        assert scan_success_probability(0.2, 50) < scan_success_probability(0.1, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            scan_success_probability(1.5, 10)
        with pytest.raises(ValueError):
            scan_success_probability(0.1, -1)
        with pytest.raises(ValueError):
            objects_for_target_probability(0.1, 2.0)


class TestGuessFormula:
    def test_single_span(self):
        assert guess_success_probability(1) == pytest.approx(1 / 7)

    def test_compounding(self):
        assert guess_success_probability(3) == pytest.approx(1 / 343)

    def test_zero_spans_trivial(self):
        assert guess_success_probability(0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            guess_success_probability(-1)


class TestMonteCarloAgreement:
    def test_scan_simulation_matches_formula_order(self):
        result = simulate_scan_attack(
            LISTING_1_STRUCT_A, objects=4, trials=400, seed=1
        )
        # Probe of 8 bytes against a ~1/4-blacklisted layout: each object
        # catches with substantial probability; with four objects the
        # attack should fail most of the time but not always.
        assert 0.0 <= result.success_rate < 0.6

    def test_scan_success_decays_with_objects(self):
        few = simulate_scan_attack(LISTING_1_STRUCT_A, objects=1, trials=300, seed=2)
        many = simulate_scan_attack(LISTING_1_STRUCT_A, objects=16, trials=300, seed=2)
        assert many.success_rate <= few.success_rate

    def test_guess_simulation_matches_formula(self):
        result = simulate_guess_attack(LISTING_1_STRUCT_A, trials=20_000, seed=3)
        # Listing 1's struct gets 6 inserted spans under the full policy:
        # expected success 7^-6 ~ 8.5e-6; allow generous Monte-Carlo slack.
        expected = guess_success_probability(6)
        assert result.success_rate <= expected * 50 + 1e-3

    def test_headline_numbers(self):
        numbers = paper_headline_numbers()
        assert numbers["scan_success_at_O250_P10pct"] < 1e-11
        assert numbers["guess_success_3_spans"] == pytest.approx(1 / 343)
        assert math.isfinite(numbers["objects_needed_for_1e-20"])
