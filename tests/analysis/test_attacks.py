"""Tests for the cross-scheme attack simulator (the measured Table 4)."""

import pytest

from repro.analysis.attacks import (
    ATTACK_NAMES,
    detection_matrix,
    render_matrix,
    run_attack_suite,
)
from repro.baselines.califorms_model import CaliformsModel
from repro.baselines.comparison import implemented_models
from repro.baselines.tripwires import CanaryModel, RestModel
from repro.baselines.whitelisting import AdiModel, MpxModel


@pytest.fixture(scope="module")
def matrix():
    return detection_matrix(implemented_models())


class TestCaliformsCoverage:
    def test_califorms_detects_everything(self, matrix):
        row = matrix["Califorms"]
        for attack in ATTACK_NAMES:
            assert row[attack], f"Califorms missed {attack}"

    def test_full_suite_detection_rate(self):
        report = run_attack_suite(CaliformsModel())
        assert report.detection_rate == 1.0


class TestBaselineGaps:
    """Each baseline's blind spots, as Table 4 tabulates them."""

    def test_rest_misses_intra_object(self, matrix):
        assert not matrix["REST"]["intra_overflow"]
        assert matrix["REST"]["adjacent_overflow"]
        assert matrix["REST"]["use_after_free"]

    def test_canary_misses_overreads_and_temporal(self, matrix):
        row = matrix["Canaries (software)"]
        assert not row["adjacent_overread"]
        assert not row["use_after_free"]
        assert not row["intra_overflow"]

    def test_mpx_misses_temporal_and_intra(self, matrix):
        row = matrix["Intel MPX"]
        assert row["adjacent_overflow"]
        assert row["jump_overflow"]  # bounds catch arbitrary distance
        assert not row["use_after_free"]
        assert not row["intra_overflow"]  # no bounds narrowing deployed

    def test_adi_misses_intra_object(self, matrix):
        row = matrix["SPARC ADI"]
        assert not row["intra_overflow"]
        assert row["use_after_free"]

    def test_jump_overflow_defeats_fixed_tripwires(self, matrix):
        # A large jump clears fixed guards: canaries and SafeMem's guard
        # lines miss it; the blacklisted-arena schemes still catch it.
        assert not matrix["Canaries (software)"]["jump_overflow"]
        assert not matrix["SafeMem"]["jump_overflow"]
        assert matrix["Califorms"]["jump_overflow"]

    def test_rest_jump_over_lone_token(self):
        # Against a lone object with a small token, the jump escapes.
        model = RestModel(token_size=8)
        allocation = model.on_alloc(0x100000, 96)
        assert model.check_access(allocation, 0x100000 + 96 + 64, 8, True) is None

    def test_califorms_beats_every_baseline(self, matrix):
        califorms_score = sum(matrix["Califorms"].values())
        for scheme, row in matrix.items():
            if scheme == "Califorms":
                continue
            assert sum(row.values()) < califorms_score, scheme


class TestHarness:
    def test_all_attacks_run(self, matrix):
        for row in matrix.values():
            assert set(row) == set(ATTACK_NAMES)

    def test_render(self, matrix):
        text = render_matrix(matrix)
        assert "intra_overflow" in text
        assert "DETECT" in text

    def test_deterministic(self):
        a = detection_matrix([MpxModel(), AdiModel(), CanaryModel()], seed=7)
        b = detection_matrix([MpxModel(), AdiModel(), CanaryModel()], seed=7)
        assert a == b
