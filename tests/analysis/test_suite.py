"""Tests for the suite-level timing sweep machinery."""

import pytest

from repro.analysis.suite import BenchmarkSlowdown, render_suite, sweep
from repro.memory.hierarchy import WESTMERE
from repro.softstack.insertion import Policy
from repro.workloads.generator import Scenario

SMALL = ["hmmer", "sjeng"]  # fast benchmarks for unit testing
QUICK = 20_000


class TestBenchmarkSlowdown:
    def test_from_samples(self):
        entry = BenchmarkSlowdown.from_samples("x", [0.01, 0.03])
        assert entry.mean == pytest.approx(0.02)
        assert entry.minimum == 0.01
        assert entry.maximum == 0.03


class TestSweep:
    def test_average_and_lookup(self):
        result = sweep(SMALL, Scenario(policy=Policy.OPPORTUNISTIC),
                       instructions=QUICK)
        assert len(result.per_benchmark) == 2
        assert result.benchmark("hmmer").benchmark == "hmmer"
        with pytest.raises(KeyError):
            result.benchmark("quake")

    def test_multiple_binary_seeds_spread(self):
        result = sweep(
            ["gobmk"],
            Scenario(policy=Policy.FULL),
            instructions=QUICK,
            binary_seeds=(0, 1, 2),
        )
        entry = result.benchmark("gobmk")
        assert entry.minimum <= entry.mean <= entry.maximum

    def test_variant_config_applies(self):
        result = sweep(
            SMALL,
            Scenario.baseline(),
            instructions=QUICK,
            variant_config=WESTMERE.with_extra_latency(1),
            label="fig10",
        )
        assert result.label == "fig10"
        assert all(entry.mean > 0 for entry in result.per_benchmark)

    def test_render(self):
        result = sweep(SMALL, Scenario(policy=Policy.INTELLIGENT),
                       instructions=QUICK)
        text = render_suite(result)
        assert "hmmer" in text and "AVG" in text
