"""Tests for the structural VLSI model against the Table 2/7 shape."""

import pytest

from repro.analysis.vlsi import (
    Block,
    baseline_l1,
    califorms_1b_l1,
    califorms_4b_l1,
    califorms_8b_l1,
    fill_cost,
    fill_module,
    spill_cost,
    spill_module,
    table2_rows,
    table7_rows,
)


class TestBlockAlgebra:
    def test_serial_composition(self):
        combined = Block("a", 10, 2) + Block("b", 20, 3)
        assert combined.gates == 30
        assert combined.depth == 5

    def test_parallel_composition(self):
        combined = Block("a", 10, 2).parallel(Block("b", 20, 3))
        assert combined.gates == 30
        assert combined.depth == 3

    def test_delay_scales_with_depth(self):
        assert Block("x", 1, 10).delay_ns == pytest.approx(
            2 * Block("x", 1, 5).delay_ns
        )


class TestTable2Shape:
    """The relationships Table 2 demonstrates (tolerances are generous —
    we model structure, not a foundry library)."""

    def test_baseline_anchor(self):
        base = baseline_l1()
        assert base.delay_ns == 1.62
        assert base.power_mw == 15.84
        assert base.area_ge == pytest.approx(347_329, rel=0.05)

    def test_main_design_overheads_near_paper(self):
        area, delay, power = califorms_8b_l1().overhead_vs(baseline_l1())
        assert area == pytest.approx(18.69, abs=2.0)  # paper 18.69 %
        assert delay == pytest.approx(1.85, abs=1.0)  # paper 1.85 %
        assert power == pytest.approx(2.12, abs=1.0)  # paper 2.12 %

    def test_fill_fits_within_l1_access(self):
        # "The latency impact of the fill operation is within the access
        # period of the L1 design."
        assert fill_cost("8B").delay_ns < baseline_l1().delay_ns

    def test_spill_slower_than_fill(self):
        # 5.50 ns vs 1.43 ns in the paper.
        assert spill_cost("8B").delay_ns > 2 * fill_cost("8B").delay_ns

    def test_module_magnitudes(self):
        assert fill_cost("8B").area_ge == pytest.approx(8_957, rel=0.25)
        assert spill_cost("8B").area_ge == pytest.approx(34_561, rel=0.25)
        assert spill_cost("8B").delay_ns == pytest.approx(5.50, abs=0.6)
        assert fill_cost("8B").delay_ns == pytest.approx(1.43, abs=0.4)

    def test_rows_render(self):
        rows = table2_rows()
        assert rows[0]["design"] == "Baseline"
        assert "area_overhead_pct" in rows[1]


class TestTable7Shape:
    def test_area_ranking(self):
        # Storage: 8B (12.5 %) > 4B (6.25 %) > 1B (1.56 %) per line.
        base = baseline_l1()
        a8 = califorms_8b_l1().overhead_vs(base)[0]
        a4 = califorms_4b_l1().overhead_vs(base)[0]
        a1 = califorms_1b_l1().overhead_vs(base)[0]
        assert a8 > a4 > a1 > 0

    def test_delay_ranking_inverts(self):
        # The denser formats pay with hit latency: 4B worst, 8B best.
        base = baseline_l1()
        d8 = califorms_8b_l1().overhead_vs(base)[1]
        d4 = califorms_4b_l1().overhead_vs(base)[1]
        d1 = califorms_1b_l1().overhead_vs(base)[1]
        assert d4 > d1 > d8

    def test_variant_delay_overheads_near_paper(self):
        base = baseline_l1()
        assert califorms_4b_l1().overhead_vs(base)[1] == pytest.approx(
            49.38, abs=6.0
        )
        assert califorms_1b_l1().overhead_vs(base)[1] == pytest.approx(
            22.22, abs=4.0
        )

    def test_variants_slow_down_conversions(self):
        # Table 7: the two dense variants add ~9 % spill and ~34 % fill
        # delay over the 8B modules.
        assert spill_cost("4B").delay_ns > spill_cost("8B").delay_ns
        assert fill_cost("1B").delay_ns > fill_cost("8B").delay_ns

    def test_three_rows(self):
        rows = table7_rows()
        assert [row["design"] for row in rows] == [
            "Califorms-8B",
            "Califorms-4B",
            "Califorms-1B",
        ]


class TestModuleStructure:
    def test_spill_depth_exceeds_fill(self):
        assert spill_module().depth > fill_module().depth

    def test_spill_dominated_by_find_index_chain(self):
        # Pipelining claim: the four chained find-index blocks are the
        # critical path, so they must dominate total depth.
        assert spill_module().depth > 40
