"""Tests for the ablation studies."""

from repro.analysis.ablation import (
    cform_mode_ablation,
    metadata_format_ablation,
    quarantine_ablation,
    render_all,
    span_range_ablation,
)


class TestQuarantine:
    def test_deeper_quarantine_never_hurts_detection(self):
        points = quarantine_ablation(fractions=(0.0, 0.6))
        assert points[1].detection_rate >= points[0].detection_rate

    def test_rates_are_probabilities(self):
        for point in quarantine_ablation():
            assert 0.0 <= point.detection_rate <= 1.0


class TestCformMode:
    def test_non_temporal_pollutes_less(self):
        results = {r.mode: r.application_l1_misses for r in cform_mode_ablation()}
        assert results["non-temporal"] <= results["temporal"]
        assert results["temporal"] > 0  # the pollution is real


class TestMetadataFormat:
    def test_sentinel_is_64x_denser(self):
        rows = {row.format: row for row in metadata_format_ablation()}
        sentinel = rows["califorms-sentinel"]
        bitvector = rows["bitvector everywhere"]
        assert bitvector.bits_per_line == 64 * sentinel.bits_per_line
        assert sentinel.l2_overhead_pct < 0.3  # the paper's ~0.2 %
        assert bitvector.l2_overhead_pct == 12.5  # the paper's 12.5 %


class TestSpanRange:
    def test_wider_ranges_cost_more_memory(self):
        points = span_range_ablation()
        overheads = [p.average_memory_overhead_pct for p in points]
        assert overheads == sorted(overheads)

    def test_entropy_grows(self):
        points = span_range_ablation()
        entropies = [p.average_entropy_bits_per_span for p in points]
        assert entropies[0] == 0.0  # fixed 1-byte spans are predictable
        assert entropies[-1] > 2.5  # 1-7B ~ log2(7) bits


def test_render_all():
    text = render_all()
    for heading in ("quarantine", "CFORM flavour", "metadata format", "span range"):
        assert heading in text
