"""Unit and property tests for the CFORM instruction semantics (Table 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.cform import CformRequest, apply_cform, apply_cform_mask
from repro.core.exceptions import AccessKind, CformUsageError
from repro.core.line_formats import LINE_SIZE, BitvectorLine

masks = st.integers(min_value=0, max_value=bv.FULL_MASK)


class TestRequestValidation:
    def test_requires_line_alignment(self):
        with pytest.raises(ValueError):
            CformRequest(line_address=8, attributes=0, mask=0)

    def test_accepts_aligned_address(self):
        CformRequest(line_address=128, attributes=0, mask=0)

    def test_rejects_oversized_vectors(self):
        with pytest.raises(ValueError):
            CformRequest(0, attributes=1 << 64, mask=0)
        with pytest.raises(ValueError):
            CformRequest(0, attributes=0, mask=1 << 64)

    def test_set_bytes_helper(self):
        request = CformRequest.set_bytes(0, [1, 2])
        assert request.attributes == 0b110
        assert request.mask == 0b110

    def test_unset_bytes_helper(self):
        request = CformRequest.unset_bytes(0, [1, 2])
        assert request.attributes == 0
        assert request.mask == 0b110


class TestKmapRows:
    """Each cell of the reconstructed Table 1 K-map."""

    def test_regular_masked_out_stays_regular(self):
        # (X, Disallow) on a regular byte: no change.
        assert apply_cform_mask(0, CformRequest(0, attributes=bv.bit(0), mask=0)) == 0

    def test_security_masked_out_stays_security(self):
        mask = bv.bit(0)
        assert apply_cform_mask(mask, CformRequest(0, attributes=0, mask=0)) == mask

    def test_set_on_regular_becomes_security(self):
        request = CformRequest.set_bytes(0, [4])
        assert apply_cform_mask(0, request) == bv.bit(4)

    def test_unset_on_security_becomes_regular(self):
        request = CformRequest.unset_bytes(0, [4])
        assert apply_cform_mask(bv.bit(4), request) == 0

    def test_set_on_security_raises(self):
        request = CformRequest.set_bytes(0, [4])
        with pytest.raises(CformUsageError) as excinfo:
            apply_cform_mask(bv.bit(4), request)
        assert excinfo.value.kind is AccessKind.CFORM_SET
        assert excinfo.value.record.byte_indices == (4,)

    def test_unset_on_regular_raises(self):
        request = CformRequest.unset_bytes(0, [4])
        with pytest.raises(CformUsageError) as excinfo:
            apply_cform_mask(0, request)
        assert excinfo.value.kind is AccessKind.CFORM_UNSET

    def test_partial_update_leaves_other_bytes(self):
        initial = bv.mask_from_indices([1, 2])
        request = CformRequest.unset_bytes(0, [1])
        assert apply_cform_mask(initial, request) == bv.bit(2)

    def test_mixed_set_and_unset_in_one_instruction(self):
        # Unset byte 1, set byte 5, all in a single CFORM.
        initial = bv.bit(1)
        request = CformRequest(0, attributes=bv.bit(5), mask=bv.bit(1) | bv.bit(5))
        assert apply_cform_mask(initial, request) == bv.bit(5)


class TestApplyToLine:
    def test_newly_set_bytes_are_zeroed(self):
        line = BitvectorLine(bytearray(range(LINE_SIZE)), 0)
        apply_cform(line, CformRequest.set_bytes(0, [10]))
        assert line.is_security(10)
        assert line.data[10] == 0

    def test_unset_bytes_read_zero_until_overwritten(self):
        line = BitvectorLine(bytearray(range(LINE_SIZE)), bv.bit(10))
        apply_cform(line, CformRequest.unset_bytes(0, [10]))
        assert not line.is_security(10)
        assert line.data[10] == 0

    def test_failed_cform_leaves_line_untouched(self):
        line = BitvectorLine(bytearray(range(LINE_SIZE)), bv.bit(10))
        with pytest.raises(CformUsageError):
            apply_cform(line, CformRequest.set_bytes(0, [10, 11]))
        assert line.secmask == bv.bit(10)
        assert line.data[11] == 11


class TestKmapProperties:
    @given(masks, masks)
    def test_set_then_unset_is_identity(self, initial, change):
        """Setting fresh bytes then unsetting them restores the mask."""
        change &= bv.invert(initial)  # only set currently-regular bytes
        set_request = CformRequest(0, attributes=change, mask=change)
        after_set = apply_cform_mask(initial, set_request)
        unset_request = CformRequest(0, attributes=0, mask=change)
        assert apply_cform_mask(after_set, unset_request) == initial

    @given(masks, masks, masks)
    def test_untouched_bytes_never_change(self, initial, attributes, mask):
        try:
            result = apply_cform_mask(
                initial, CformRequest(0, attributes=attributes, mask=mask)
            )
        except CformUsageError:
            return
        untouched = bv.invert(mask)
        assert result & untouched == initial & untouched

    @given(masks, masks)
    def test_exception_iff_kmap_violation(self, initial, mask):
        """Setting every allowed byte raises iff some allowed byte is set."""
        request = CformRequest(0, attributes=mask, mask=mask)
        if initial & mask:
            with pytest.raises(CformUsageError):
                apply_cform_mask(initial, request)
        else:
            assert apply_cform_mask(initial, request) == initial | mask
