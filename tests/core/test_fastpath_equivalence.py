"""Differential tests: fast paths vs. retained pure-reference code.

The perf engine rewrote the codec and line-format hot paths to operate on
whole-line integers, translation tables and a memoized per-mask plan.
Correctness is defined as *bit-identical behaviour* to the original
loop-per-byte implementations, which are retained as
``encode_reference`` / ``decode_reference`` / ``find_sentinel_reference``
/ ``normalize_security_bytes_reference``.  These tests drive both sides
with the same randomized and adversarial inputs and demand equality.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.exceptions import SentinelNotFoundError
from repro.core.line_formats import (
    LINE_SIZE,
    BitvectorLine,
    SentinelLine,
    normalize_security_bytes,
    normalize_security_bytes_reference,
    security_bytes_clean,
)
from repro.core.sentinel import (
    decode,
    decode_reference,
    encode,
    encode_reference,
    find_sentinel,
    find_sentinel_reference,
)


def random_line(rng: random.Random, security_bytes: int) -> BitvectorLine:
    data = bytearray(rng.randrange(256) for _ in range(LINE_SIZE))
    indices = rng.sample(range(LINE_SIZE), security_bytes)
    return BitvectorLine(data, bv.mask_from_indices(indices))


def assert_encode_matches(line: BitvectorLine) -> None:
    fast = encode(line)
    reference = encode_reference(line.copy())
    assert fast.raw == reference.raw
    assert fast.califormed == reference.califormed


def assert_decode_matches(encoded: SentinelLine) -> None:
    fast = decode(encoded)
    reference = decode_reference(encoded)
    assert bytes(fast.data) == bytes(reference.data)
    assert fast.secmask == reference.secmask
    assert isinstance(fast.data, bytearray)


class TestCodecEquivalence:
    @pytest.mark.parametrize("security_bytes", [1, 2, 3, 4, 5, 6, 8, 16])
    def test_randomized_sparse_and_mid(self, security_bytes):
        rng = random.Random(security_bytes)
        for _ in range(60):
            line = random_line(rng, security_bytes)
            assert_encode_matches(line)
            assert_decode_matches(encode(line))

    @pytest.mark.parametrize("security_bytes", [24, 32, 48, 60, 63, 64])
    def test_randomized_dense(self, security_bytes):
        """Dense lines: the sentinel path marks many extra slots."""
        rng = random.Random(100 + security_bytes)
        for _ in range(40):
            line = random_line(rng, security_bytes)
            assert_encode_matches(line)
            assert_decode_matches(encode(line))

    def test_header_region_security(self):
        """Security bytes inside the header region force crossbar parking."""
        rng = random.Random(7)
        header_sets = [
            [0], [1], [2], [3], [0, 1], [0, 3], [1, 2, 3], [0, 1, 2, 3],
            [0, 1, 2, 3, 4], [0, 2, 40], [3, 10, 20, 30, 40],
            [0, 1, 2, 3, 60, 61, 62, 63],
        ]
        for indices in header_sets:
            for _ in range(10):
                data = bytearray(rng.randrange(256) for _ in range(LINE_SIZE))
                line = BitvectorLine(data, bv.mask_from_indices(indices))
                assert_encode_matches(line)
                assert_decode_matches(encode(line))

    def test_natural_lines_pass_through(self):
        rng = random.Random(11)
        for _ in range(20):
            line = BitvectorLine.natural(
                bytes(rng.randrange(256) for _ in range(LINE_SIZE))
            )
            assert_encode_matches(line)
            assert_decode_matches(encode(line))
        garbage = SentinelLine(bytes([0xFF] * LINE_SIZE), False)
        assert_decode_matches(garbage)

    def test_constant_fill_sentinel_stress(self):
        """Constant lines exhaust low-6 patterns the fastest."""
        for pattern in (0, 1, 63, 64, 128, 255):
            for indices in ([4, 5, 6, 7], [0, 1, 2, 3, 4], list(range(8))):
                line = BitvectorLine(
                    bytearray([pattern] * LINE_SIZE), bv.mask_from_indices(indices)
                )
                assert_encode_matches(line)
                assert_decode_matches(encode(line))

    @settings(max_examples=200)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        indices=st.sets(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=64
        ),
    )
    def test_property_roundtrip_equivalence(self, seed, indices):
        rng = random.Random(seed)
        data = bytearray(rng.randrange(256) for _ in range(LINE_SIZE))
        line = BitvectorLine(data, bv.mask_from_indices(sorted(indices)))
        assert_encode_matches(line)
        assert_decode_matches(encode(line))


class TestFindSentinelEquivalence:
    def test_normalized_random(self):
        rng = random.Random(13)
        for count in (1, 4, 8, 24, 63):
            for _ in range(30):
                line = random_line(rng, count)
                data = bytes(line.data)
                assert find_sentinel(data, line.secmask) == \
                    find_sentinel_reference(data, line.secmask)

    def test_unnormalized_data_takes_reference_path(self):
        """Non-zero security bytes must not influence the choice."""
        rng = random.Random(17)
        for _ in range(50):
            data = bytes(rng.randrange(256) for _ in range(LINE_SIZE))
            mask = bv.mask_from_indices(rng.sample(range(LINE_SIZE), 8))
            assert find_sentinel(data, mask) == find_sentinel_reference(data, mask)

    def test_zero_mask_raises(self):
        with pytest.raises(SentinelNotFoundError):
            find_sentinel(bytes(LINE_SIZE), 0)

    def test_single_free_pattern(self):
        data = bytes(range(63)) + b"\x00"
        mask = bv.bit(63)
        assert find_sentinel(data, mask) == 63
        assert find_sentinel_reference(data, mask) == 63

    def test_zero_pattern_free_only_via_security_bytes(self):
        """All low6==0 bytes are security bytes → pattern 0 is free."""
        data = bytearray(range(1, 64)) + bytearray(1)
        mask = bv.bit(63)
        assert find_sentinel(bytes(data), mask) == 0
        assert find_sentinel_reference(bytes(data), mask) == 0


class TestNormalizeEquivalence:
    @settings(max_examples=200)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        mask=st.integers(min_value=0, max_value=bv.FULL_MASK),
    )
    def test_random_data_and_masks(self, seed, mask):
        rng = random.Random(seed)
        data = bytes(rng.randrange(256) for _ in range(LINE_SIZE))
        assert normalize_security_bytes(data, mask) == \
            normalize_security_bytes_reference(data, mask)

    def test_already_clean_returns_equal_bytes(self):
        data = bytes(LINE_SIZE)
        mask = bv.mask_from_indices([0, 63])
        assert normalize_security_bytes(data, mask) == data
        assert security_bytes_clean(data, mask)

    def test_clean_check_detects_dirt(self):
        data = bytearray(LINE_SIZE)
        data[63] = 1
        assert not security_bytes_clean(data, bv.bit(63))
        assert security_bytes_clean(data, bv.bit(0))


class TestBitvectorHelpers:
    @settings(max_examples=300)
    @given(st.integers(min_value=0, max_value=bv.FULL_MASK))
    def test_indices_from_mask_matches_iter(self, mask):
        assert bv.indices_from_mask(mask) == list(bv.iter_set_bits(mask))

    @settings(max_examples=300)
    @given(st.integers(min_value=0, max_value=bv.FULL_MASK))
    def test_expand_mask_to_bytes(self, mask):
        expanded = bv.expand_mask_to_bytes(mask)
        as_bytes = expanded.to_bytes(LINE_SIZE, "little")
        for index in range(LINE_SIZE):
            expected = 0xFF if (mask >> index) & 1 else 0x00
            assert as_bytes[index] == expected


class TestConstructorFastPaths:
    def test_dirty_data_still_normalized(self):
        """The already-clean skip must not break the normalisation contract."""
        data = bytearray([0xAA] * LINE_SIZE)
        mask = bv.mask_from_indices([3, 40])
        line = BitvectorLine(data, mask)
        assert line.data[3] == 0
        assert line.data[40] == 0

    def test_trusted_equals_checked(self):
        data = bytearray(range(64))
        mask = bv.mask_from_indices([10])
        data[10] = 0
        assert BitvectorLine.trusted(bytearray(data), mask) == \
            BitvectorLine(bytearray(data), mask)
        raw = bytes(range(64))
        assert SentinelLine.trusted(raw, True) == SentinelLine(raw, True)


class TestHierarchyBatchedEquivalence:
    def _fresh_pair(self):
        from repro.core.cform import CformRequest
        from repro.memory.hierarchy import MemoryHierarchy

        hierarchies = []
        for _ in range(2):
            hierarchy = MemoryHierarchy()
            for line in range(0, 64, 9):
                hierarchy.cform(CformRequest.set_bytes(line * 64, [60, 61]))
            hierarchies.append(hierarchy)
        return hierarchies

    def _trace(self):
        rng = random.Random(23)
        ops = []
        for _ in range(400):
            address = rng.randrange(64 * 64 - 8)
            if rng.random() < 0.5:
                ops.append(("L", address, rng.choice((1, 2, 4, 8, 70))))
            else:
                ops.append(("S", address, bytes([rng.randrange(256)] *
                                                rng.choice((1, 4, 70)))))
        return ops

    def test_load_many_matches_per_op(self):
        batched, serial = self._fresh_pair()
        requests = [(op[1], op[2]) for op in self._trace() if op[0] == "L"]
        expected = [serial.load(address, size) for address, size in requests]
        assert batched.load_many(requests) == expected
        assert batched.l1.stats.accesses == serial.l1.stats.accesses
        assert batched.l1.stats.misses == serial.l1.stats.misses

    def test_store_many_matches_per_op(self):
        batched, serial = self._fresh_pair()
        requests = [(op[1], op[2]) for op in self._trace() if op[0] == "S"]
        expected = [serial.store(address, data) for address, data in requests]
        assert batched.store_many(requests) == expected
        assert batched.l1.stats.accesses == serial.l1.stats.accesses

    def test_replay_trace_matches_per_op(self):
        batched, serial = self._fresh_pair()
        trace = self._trace()
        violations = 0
        for op in trace:
            if op[0] == "L":
                violations += len(serial.load(op[1], op[2])[1])
            else:
                violations += len(serial.store(op[1], op[2]))
        assert batched.replay_trace(trace) == violations
        assert violations > 0
        assert batched.l1.stats.accesses == serial.l1.stats.accesses
        assert batched.l1.stats.misses == serial.l1.stats.misses
        batched.flush_all()
        serial.flush_all()
        assert batched.dram._lines == serial.dram._lines
        with pytest.raises(ValueError):
            batched.replay_trace([("X", 0, 1)])
