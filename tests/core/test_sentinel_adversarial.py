"""Adversarial inputs for the sentinel codec.

Data patterns deliberately crafted to collide with the encoding's own
structures: bytes that mimic header codes, data equal to the chosen
sentinel, lines where nearly every 6-bit pattern is in use.  The
round-trip property must hold regardless — a decoder that trusted the
data bytes would corrupt memory on exactly these inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.line_formats import LINE_SIZE, BitvectorLine, SentinelLine
from repro.core.sentinel import decode, encode, find_sentinel, roundtrip


def check(data, indices):
    line = BitvectorLine(bytearray(data), bv.mask_from_indices(indices))
    restored = roundtrip(line)
    assert restored.secmask == line.secmask
    assert bytes(restored.data) == bytes(line.data)


class TestHeaderMimicry:
    def test_data_that_looks_like_headers(self):
        # Every byte advertises "count code 11" with plausible addresses.
        data = bytes([0b11] * LINE_SIZE)
        check(data, [5])
        check(data, [5, 6, 7, 8, 9])

    def test_data_equal_to_future_header_bytes(self):
        # Data bytes 0..3 equal what the header would encode for this set.
        line = BitvectorLine(bytearray(range(64)), bv.mask_from_indices([8, 9]))
        header = encode(line).raw[:2]
        data = bytearray(range(64))
        data[0:2] = header
        check(bytes(data), [8, 9])


class TestSentinelCollisions:
    def test_data_bytes_equal_sentinel_in_high_bits(self):
        # Low-6 bits of regular data cover patterns 0..62; high bits vary.
        data = bytes((i % 63) | 0xC0 for i in range(LINE_SIZE))
        check(data, [10, 20, 30, 40, 50])

    def test_nearly_exhausted_pattern_space(self):
        # 63 distinct low-6 patterns among regular bytes: exactly one
        # sentinel candidate remains.
        data = bytes(range(63)) + b"\x00"
        mask = bv.bit(63)
        assert find_sentinel(data, mask) == 63
        check(data, [63])

    def test_parked_data_matching_sentinel(self):
        # Byte 0 (which will be parked into a security slot >= 4 under a
        # 4+ security set) has low-6 bits likely to match early patterns.
        data = bytearray(range(64))
        data[0] = 63  # sentinel candidates start at the first free value
        check(bytes(data), [4, 5, 6, 7, 8])


class TestDecoderRobustness:
    def test_uncaliformed_garbage_is_data(self):
        # Any 64 bytes with the metadata bit clear decode to themselves.
        raw = bytes([0xFF] * LINE_SIZE)
        line = decode(SentinelLine(raw, False))
        assert bytes(line.data) == raw
        assert line.secmask == 0

    def test_every_single_security_position(self):
        for position in range(LINE_SIZE):
            check(bytes([0xA5] * LINE_SIZE), [position])

    def test_every_pair_with_position_zero(self):
        for position in range(1, LINE_SIZE):
            check(bytes(range(64)), [0, position])


@settings(max_examples=150)
@given(
    pattern=st.integers(min_value=0, max_value=255),
    indices=st.sets(st.integers(min_value=0, max_value=63), min_size=1, max_size=64),
)
def test_constant_fill_roundtrip(pattern, indices):
    """Constant-fill lines maximise low-6-bit collisions."""
    check(bytes([pattern] * LINE_SIZE), indices)


@settings(max_examples=150)
@given(
    indices=st.sets(st.integers(min_value=0, max_value=63), min_size=4, max_size=64),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_low_entropy_data_roundtrip(indices, seed):
    """Data drawn from a tiny alphabet (many repeated low-6 patterns)."""
    import random

    rng = random.Random(seed)
    data = bytes(rng.choice([0, 1, 63, 64, 128, 255]) for _ in range(LINE_SIZE))
    check(data, indices)


@settings(max_examples=100)
@given(st.sets(st.integers(min_value=0, max_value=63), min_size=1, max_size=64))
def test_double_encode_is_stable(indices):
    """encode(decode(encode(x))) == encode(x): the codec is idempotent."""
    line = BitvectorLine(bytearray(range(64)), bv.mask_from_indices(indices))
    once = encode(line)
    twice = encode(decode(once))
    assert once.raw == twice.raw
    assert once.califormed == twice.califormed


def test_sentinel_line_is_not_natural_data():
    """A califormed line's raw bytes differ from the natural view — the
    reason DMA without califorms-awareness leaks format, not data."""
    line = BitvectorLine(bytearray(range(64)), bv.mask_from_indices([30]))
    encoded = encode(line)
    assert encoded.raw != bytes(line.data)


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 16, 63, 64])
def test_header_code_matches_population(count):
    indices = list(range(count))
    line = BitvectorLine(bytearray([0x11] * 64), bv.mask_from_indices(indices))
    encoded = encode(line)
    assert encoded.raw[0] & 0b11 == min(count, 4) - 1
