"""Unit tests for the BitvectorLine / SentinelLine representations."""

import pytest

from repro.core import bitvector as bv
from repro.core.exceptions import AccessKind, SecurityByteAccess
from repro.core.line_formats import (
    LINE_SIZE,
    BitvectorLine,
    SentinelLine,
    normalize_security_bytes,
)


def make_line(secmask=0, fill=None):
    data = bytearray(range(LINE_SIZE)) if fill is None else bytearray(fill)
    return BitvectorLine(data, secmask)


class TestNormalization:
    def test_security_positions_forced_to_zero(self):
        data = bytes(range(LINE_SIZE))
        out = normalize_security_bytes(data, bv.mask_from_indices([1, 5]))
        assert out[1] == 0 and out[5] == 0
        assert out[0] == 0 and out[2] == 2

    def test_zero_mask_is_identity(self):
        data = bytes(range(LINE_SIZE))
        assert normalize_security_bytes(data, 0) == data

    def test_rejects_short_line(self):
        with pytest.raises(ValueError):
            normalize_security_bytes(b"abc", 0)

    def test_constructor_normalizes(self):
        line = make_line(secmask=bv.bit(3))
        assert line.data[3] == 0


class TestConstruction:
    def test_natural_line_is_clean(self):
        line = BitvectorLine.natural()
        assert not line.is_califormed
        assert line.security_count() == 0

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            BitvectorLine(bytearray(10), 0)

    def test_rejects_oversized_mask(self):
        with pytest.raises(ValueError):
            BitvectorLine(bytearray(LINE_SIZE), 1 << 64)

    def test_copy_is_independent(self):
        line = make_line(secmask=bv.bit(0))
        other = line.copy()
        other.data[10] = 99
        other.secmask = 0
        assert line.data[10] == 10
        assert line.secmask == bv.bit(0)


class TestQueries:
    def test_is_security(self):
        line = make_line(secmask=bv.mask_from_indices([2, 9]))
        assert line.is_security(2)
        assert line.is_security(9)
        assert not line.is_security(3)

    def test_security_indices_sorted(self):
        line = make_line(secmask=bv.mask_from_indices([40, 3, 17]))
        assert line.security_indices() == [3, 17, 40]


class TestLoadPath:
    def test_clean_load_returns_data(self):
        line = make_line()
        value, record = line.load(4, 4)
        assert value == bytes([4, 5, 6, 7])
        assert record is None

    def test_load_over_security_byte_returns_zero_and_record(self):
        line = make_line(secmask=bv.bit(5))
        value, record = line.load(4, 4, base_address=0x1000)
        assert value[1] == 0  # the security byte reads as zero
        assert value[0] == 4 and value[2] == 6
        assert record is not None
        assert record.kind is AccessKind.LOAD
        assert record.address == 0x1004
        assert record.byte_indices == (5,)

    def test_load_or_raise(self):
        line = make_line(secmask=bv.bit(0))
        with pytest.raises(SecurityByteAccess):
            line.load_or_raise(0, 1)

    def test_load_or_raise_clean(self):
        line = make_line()
        assert line.load_or_raise(0, 2) == bytes([0, 1])


class TestStorePath:
    def test_clean_store_commits(self):
        line = make_line()
        assert line.store(8, b"\xaa\xbb") is None
        assert line.data[8] == 0xAA and line.data[9] == 0xBB

    def test_store_over_security_byte_is_suppressed(self):
        line = make_line(secmask=bv.bit(9))
        record = line.store(8, b"\xaa\xbb", base_address=0x2000)
        assert record is not None
        assert record.kind is AccessKind.STORE
        assert record.address == 0x2008
        # The store must NOT have committed (reported before commit).
        assert line.data[8] == 8
        assert line.data[9] == 0

    def test_store_or_raise(self):
        line = make_line(secmask=bv.bit(0))
        with pytest.raises(SecurityByteAccess):
            line.store_or_raise(0, b"x")


class TestSentinelLine:
    def test_natural_constructor(self):
        line = SentinelLine.natural()
        assert not line.califormed
        assert line.raw == bytes(LINE_SIZE)

    def test_metadata_is_one_bit(self):
        assert SentinelLine.natural().metadata_bits == 1

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            SentinelLine(b"short", False)

    def test_frozen(self):
        line = SentinelLine.natural()
        with pytest.raises(AttributeError):
            line.califormed = True
