"""Tests for the Appendix A califorms-4B and califorms-1B L1 variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.line_formats import LINE_SIZE, BitvectorLine
from repro.core.variants import (
    CHUNK_SIZE,
    CHUNKS_PER_LINE,
    Califorms1BLine,
    Califorms4BLine,
    decode_1b,
    decode_4b,
    encode_1b,
    encode_4b,
)

line_data = st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE)
security_sets = st.sets(st.integers(min_value=0, max_value=63), max_size=64)


def build(data, indices):
    return BitvectorLine(bytearray(data), bv.mask_from_indices(indices))


class TestGeometry:
    def test_chunk_geometry(self):
        assert CHUNK_SIZE == 8
        assert CHUNKS_PER_LINE == 8

    def test_metadata_budgets_match_paper(self):
        # Figure 14: 4 bits x 8 chunks = 4B; Figure 15: 1 bit x 8 = 1B.
        line = build(bytes(LINE_SIZE), [0])
        assert encode_4b(line).metadata_bits == 32
        assert encode_1b(line).metadata_bits == 8

    def test_4b_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            Califorms4BLine(b"x", 0, (0,) * 8)
        with pytest.raises(ValueError):
            Califorms4BLine(bytes(LINE_SIZE), 0, (0,) * 3)

    def test_1b_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            Califorms1BLine(b"x", 0)


class TestCaliforms4B:
    def test_clean_line_has_no_califormed_chunks(self):
        encoded = encode_4b(build(range(LINE_SIZE), []))
        assert encoded.chunk_califormed == 0

    def test_vector_stored_in_first_security_byte(self):
        # Chunk 0 bytes 2 and 5 are security: vector goes to byte 2.
        line = build(range(LINE_SIZE), [2, 5])
        encoded = encode_4b(line)
        assert encoded.chunk_califormed == 0b1
        assert encoded.vector_slot[0] == 2
        assert encoded.raw[2] == 0b100100  # mask for bytes {2, 5}

    def test_other_chunks_untouched(self):
        line = build(range(LINE_SIZE), [2])
        encoded = encode_4b(line)
        assert encoded.raw[8:] == bytes(range(8, LINE_SIZE))

    def test_roundtrip_example(self):
        line = build(range(LINE_SIZE), [2, 5, 17, 63])
        restored = decode_4b(encode_4b(line))
        assert restored.secmask == line.secmask
        assert bytes(restored.data) == bytes(line.data)

    @settings(max_examples=200)
    @given(line_data, security_sets)
    def test_roundtrip_property(self, data, indices):
        line = build(data, indices)
        restored = decode_4b(encode_4b(line))
        assert restored.secmask == line.secmask
        assert bytes(restored.data) == bytes(line.data)


class TestCaliforms1B:
    def test_header_security_byte_hosts_vector(self):
        # Byte 0 of chunk 0 is itself a security byte.
        line = build(range(LINE_SIZE), [0, 3])
        encoded = encode_1b(line)
        assert encoded.chunk_califormed == 0b1
        assert encoded.raw[0] == 0b1001  # vector for bytes {0, 3}

    def test_regular_header_parked_in_last_security_byte(self):
        # Byte 0 is regular data (value 0xAB); security bytes at 3 and 6.
        data = bytearray(range(LINE_SIZE))
        data[0] = 0xAB
        line = BitvectorLine(data, bv.mask_from_indices([3, 6]))
        encoded = encode_1b(line)
        assert encoded.raw[6] == 0xAB  # parked in last security byte
        assert encoded.raw[0] == 0b1001000  # vector for bytes {3, 6}
        restored = decode_1b(encoded)
        assert restored.data[0] == 0xAB
        assert restored.secmask == line.secmask

    def test_single_security_header_byte(self):
        line = build(range(LINE_SIZE), [8])  # chunk 1, byte 0 of the chunk
        restored = decode_1b(encode_1b(line))
        assert restored.secmask == line.secmask
        assert bytes(restored.data) == bytes(line.data)

    @settings(max_examples=200)
    @given(line_data, security_sets)
    def test_roundtrip_property(self, data, indices):
        line = build(data, indices)
        restored = decode_1b(encode_1b(line))
        assert restored.secmask == line.secmask
        assert bytes(restored.data) == bytes(line.data)


@settings(max_examples=100)
@given(line_data, security_sets)
def test_variants_agree_with_each_other(data, indices):
    """All three L1 encodings describe the same logical line."""
    line = build(data, indices)
    via_4b = decode_4b(encode_4b(line))
    via_1b = decode_1b(encode_1b(line))
    assert via_4b.secmask == via_1b.secmask == line.secmask
    assert bytes(via_4b.data) == bytes(via_1b.data) == bytes(line.data)
