"""Unit and property tests for repro.core.bitvector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitvector as bv


class TestBitBasics:
    def test_bit_positions(self):
        assert bv.bit(0) == 1
        assert bv.bit(5) == 32
        assert bv.bit(63) == 1 << 63

    def test_bit_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bv.bit(64)
        with pytest.raises(ValueError):
            bv.bit(-1)

    def test_set_clear_roundtrip(self):
        mask = 0
        mask = bv.set_bit(mask, 7)
        assert bv.test_bit(mask, 7)
        mask = bv.clear_bit(mask, 7)
        assert not bv.test_bit(mask, 7)
        assert mask == 0

    def test_set_is_idempotent(self):
        mask = bv.set_bit(0, 3)
        assert bv.set_bit(mask, 3) == mask

    def test_clear_is_idempotent(self):
        assert bv.clear_bit(0, 3) == 0

    def test_popcount(self):
        assert bv.popcount(0) == 0
        assert bv.popcount(0b1011) == 3
        assert bv.popcount(bv.FULL_MASK) == 64


class TestMaskConversions:
    def test_iter_set_bits_ascending(self):
        assert list(bv.iter_set_bits(0b101001)) == [0, 3, 5]

    def test_iter_set_bits_empty(self):
        assert list(bv.iter_set_bits(0)) == []

    def test_mask_from_indices(self):
        assert bv.mask_from_indices([1, 3]) == 0b1010

    def test_mask_from_indices_rejects_bad_index(self):
        with pytest.raises(ValueError):
            bv.mask_from_indices([64])

    def test_indices_roundtrip(self):
        indices = [0, 17, 42, 63]
        assert bv.indices_from_mask(bv.mask_from_indices(indices)) == indices

    @given(st.integers(min_value=0, max_value=bv.FULL_MASK))
    def test_mask_indices_mask_identity(self, mask):
        assert bv.mask_from_indices(bv.indices_from_mask(mask)) == mask

    @given(st.integers(min_value=0, max_value=bv.FULL_MASK))
    def test_popcount_matches_indices(self, mask):
        assert bv.popcount(mask) == len(bv.indices_from_mask(mask))


class TestRangeMask:
    def test_simple_range(self):
        assert bv.range_mask(0, 4) == 0b1111

    def test_offset_range(self):
        assert bv.range_mask(2, 2) == 0b1100

    def test_empty_range(self):
        assert bv.range_mask(10, 0) == 0

    def test_full_line(self):
        assert bv.range_mask(0, 64) == bv.FULL_MASK

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            bv.range_mask(60, 5)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            bv.range_mask(0, -1)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=64),
    )
    def test_popcount_equals_size(self, offset, size):
        if offset + size > 64:
            size = 64 - offset
        assert bv.popcount(bv.range_mask(offset, size)) == size


class TestInvertAndLow6:
    def test_invert_is_involution(self):
        assert bv.invert(bv.invert(0b1010)) == 0b1010

    def test_invert_of_zero_is_full(self):
        assert bv.invert(0) == bv.FULL_MASK

    def test_low6_masks_top_bits(self):
        assert bv.low6(0xFF) == 0x3F
        assert bv.low6(0x40) == 0
        assert bv.low6(0x3F) == 0x3F

    @given(st.integers(min_value=0, max_value=255))
    def test_low6_range(self, value):
        assert 0 <= bv.low6(value) < 64
