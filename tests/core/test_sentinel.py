"""Unit and property tests for the califorms-sentinel codec.

The round-trip property (encode then decode restores every regular byte and
the exact security mask) is the correctness core of the whole design: it is
what guarantees no data corruption as lines move L1 <-> L2 <-> DRAM.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector as bv
from repro.core.exceptions import SentinelNotFoundError
from repro.core.line_formats import LINE_SIZE, BitvectorLine, SentinelLine
from repro.core.sentinel import (
    HEADER_BYTES_FOR_CODE,
    decode,
    encode,
    find_sentinel,
    roundtrip,
)

line_data = st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE)
security_sets = st.sets(st.integers(min_value=0, max_value=63), max_size=64)


def build(data, indices):
    return BitvectorLine(bytearray(data), bv.mask_from_indices(indices))


class TestFindSentinel:
    def test_rejects_uncaliformed_line(self):
        with pytest.raises(SentinelNotFoundError):
            find_sentinel(bytes(LINE_SIZE), 0)

    def test_avoids_used_low6_patterns(self):
        # Regular bytes use patterns 0..62; byte 63 is a security byte.
        data = bytes(range(63)) + b"\x00"
        sentinel = find_sentinel(data, bv.bit(63))
        assert sentinel == 63

    def test_all_security_line_gets_pattern_zero(self):
        sentinel = find_sentinel(bytes(LINE_SIZE), bv.FULL_MASK)
        assert sentinel == 0

    def test_ignores_high_two_bits(self):
        # 0x40 and 0x00 share low-6 pattern 0; both must be avoided as one.
        data = bytes([0x40]) * 63 + b"\x00"
        sentinel = find_sentinel(data, bv.bit(63))
        assert sentinel != 0

    @given(line_data, security_sets.filter(lambda s: len(s) >= 1))
    def test_sentinel_never_collides_with_regular_bytes(self, data, indices):
        mask = bv.mask_from_indices(indices)
        sentinel = find_sentinel(data, mask)
        regular_patterns = {
            bv.low6(data[i]) for i in range(LINE_SIZE) if not bv.test_bit(mask, i)
        }
        assert sentinel not in regular_patterns
        assert 0 <= sentinel < 64


class TestEncodeBasics:
    def test_uncaliformed_line_passes_through(self):
        data = bytes(range(LINE_SIZE))
        encoded = encode(BitvectorLine(bytearray(data), 0))
        assert not encoded.califormed
        assert encoded.raw == data

    def test_single_security_byte_header(self):
        line = build(range(LINE_SIZE), [10])
        encoded = encode(line)
        assert encoded.califormed
        assert encoded.raw[0] & 0b11 == 0b00  # count code: one
        assert (encoded.raw[0] >> 2) & 0x3F == 10  # addr0
        # Original byte 0 parked in the security slot.
        assert encoded.raw[10] == 0

    def test_two_security_bytes_header(self):
        line = build(range(LINE_SIZE), [10, 20])
        encoded = encode(line)
        assert encoded.raw[0] & 0b11 == 0b01
        value = int.from_bytes(encoded.raw[:2], "little")
        assert (value >> 2) & 0x3F == 10
        assert (value >> 8) & 0x3F == 20

    def test_four_plus_encodes_sentinel_in_fourth_byte(self):
        line = build(range(LINE_SIZE), [8, 9, 10, 11, 40])
        encoded = encode(line)
        assert encoded.raw[0] & 0b11 == 0b11
        value = int.from_bytes(encoded.raw[:4], "little")
        sentinel = (value >> 26) & 0x3F
        # The fifth security byte is marked with the sentinel.
        assert bv.low6(encoded.raw[40]) == sentinel

    def test_header_lengths(self):
        assert HEADER_BYTES_FOR_CODE == (1, 2, 3, 4)


class TestDecodeBasics:
    def test_uncaliformed_line_passes_through(self):
        data = bytes(range(LINE_SIZE))
        line = decode(SentinelLine(data, False))
        assert line.secmask == 0
        assert bytes(line.data) == data

    def test_decode_restores_displaced_byte(self):
        original = build(range(LINE_SIZE), [30])
        restored = decode(encode(original))
        assert restored.secmask == bv.bit(30)
        assert restored.data[0] == 0  # original data[0] = 0 restored
        assert bytes(restored.data[1:30]) == bytes(range(1, 30))


class TestRoundTripCorners:
    """Hand-picked corner cases for the header-displacement logic."""

    def corner(self, indices):
        original = build(
            bytes((i * 7 + 3) % 256 for i in range(LINE_SIZE)), indices
        )
        restored = roundtrip(original)
        assert restored.secmask == original.secmask, indices
        assert bytes(restored.data) == bytes(original.data), indices

    def test_security_inside_header_one(self):
        self.corner([0])

    def test_security_inside_header_two(self):
        self.corner([0, 50])
        self.corner([1, 50])
        self.corner([0, 1])

    def test_security_inside_header_three(self):
        self.corner([0, 1, 2])
        self.corner([1, 2, 50])
        self.corner([2, 40, 50])

    def test_security_inside_header_four(self):
        self.corner([0, 1, 2, 3])
        self.corner([0, 1, 2, 63])
        self.corner([3, 40, 50, 60])

    def test_five_plus_with_header_overlap(self):
        self.corner([0, 1, 2, 3, 4])
        self.corner([0, 1, 2, 3, 63])
        self.corner([1, 2, 3, 4, 5, 6])

    def test_whole_line_blacklisted(self):
        self.corner(range(64))

    def test_dense_tail(self):
        self.corner(range(32, 64))

    def test_alternating(self):
        self.corner(range(0, 64, 2))


@settings(max_examples=300)
@given(line_data, security_sets)
def test_roundtrip_property(data, indices):
    """encode -> decode is the identity on (regular data, security mask)."""
    original = build(data, indices)
    restored = roundtrip(original)
    assert restored.secmask == original.secmask
    assert bytes(restored.data) == bytes(original.data)


@settings(max_examples=200)
@given(line_data, security_sets.filter(lambda s: len(s) >= 1))
def test_encoded_line_always_flags_califormed(data, indices):
    assert encode(build(data, indices)).califormed


@settings(max_examples=200)
@given(line_data, security_sets)
def test_encode_is_deterministic(data, indices):
    line = build(data, indices)
    assert encode(line).raw == encode(line.copy()).raw


@settings(max_examples=200)
@given(line_data, security_sets.filter(lambda s: len(s) >= 1))
def test_critical_word_first_support(data, indices):
    """Security-byte locations are recoverable from the first 4 bytes alone
    plus a scan — i.e. listed addresses never exceed the first flit's header
    (Section 5.2's critical-word-first claim)."""
    encoded = encode(build(data, indices))
    code = encoded.raw[0] & 0b11
    header = int.from_bytes(encoded.raw[:4], "little")
    listed = [(header >> (2 + 6 * i)) & 0x3F for i in range(code + 1)]
    expected_first = sorted(indices)[: code + 1]
    assert listed == expected_first
