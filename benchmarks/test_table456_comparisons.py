"""Benchmark: regenerate Tables 4/5/6 and the measured detection matrix."""

from repro.analysis.attacks import ATTACK_NAMES, detection_matrix
from repro.baselines.comparison import implemented_models
from repro.experiments import tables


def test_tables456_comparisons(once):
    text = once(tables.render_tables456)
    print()
    print(text)
    matrix = detection_matrix(implemented_models())
    # Califorms detects the full suite; no baseline does.
    assert all(matrix["Califorms"][attack] for attack in ATTACK_NAMES)
    for scheme, row in matrix.items():
        if scheme != "Califorms":
            assert not all(row.values()), scheme
