"""Benchmark: regenerate Figure 4 (slowdown vs fixed padding size)."""

import pytest

from repro.experiments import fig04_padding_sweep

pytestmark = pytest.mark.slow  # minutes-scale; deselected from tier-1, run in CI via -m slow


def test_fig04_padding_sweep(once):
    result = once(fig04_padding_sweep.run, instructions=60_000)
    print()
    print(fig04_padding_sweep.render(result))
    averages = result.averages()
    # Shape: monotone-ish growth, 7B costs more than 1B, both positive.
    assert averages[1] > 0
    assert averages[7] > averages[1]
    assert averages[7] < 0.20  # same order of magnitude as the paper's 7.6 %
