"""Microbenchmarks: the sentinel codec and CFORM hot paths.

These are not paper figures, but they quantify the simulator's own spill
and fill costs — the software analogue of Table 2's fill/spill columns —
and guard against performance regressions in the core library.
"""

import random

from repro.core import bitvector as bv
from repro.core.cform import CformRequest, apply_cform_mask
from repro.core.line_formats import BitvectorLine
from repro.core.sentinel import decode, encode


def _random_lines(count: int, security_bytes: int, seed: int = 0):
    rng = random.Random(seed)
    lines = []
    for _ in range(count):
        data = bytearray(rng.randrange(256) for _ in range(64))
        indices = rng.sample(range(64), security_bytes)
        lines.append(BitvectorLine(data, bv.mask_from_indices(indices)))
    return lines


def test_encode_throughput(benchmark):
    """Spill-path (Algorithm 1) conversions per second."""
    lines = _random_lines(256, security_bytes=6)

    def spill_all():
        for line in lines:
            encode(line)

    benchmark(spill_all)


def test_decode_throughput(benchmark):
    """Fill-path (Algorithm 2) conversions per second."""
    encoded = [encode(line) for line in _random_lines(256, security_bytes=6)]

    def fill_all():
        for line in encoded:
            decode(line)

    benchmark(fill_all)


def test_roundtrip_dense_lines(benchmark):
    """Worst case: heavily califormed lines (sentinel path exercised)."""
    lines = _random_lines(128, security_bytes=24, seed=1)

    def roundtrip_all():
        for line in lines:
            decode(encode(line))

    benchmark(roundtrip_all)


def test_cform_kmap_throughput(benchmark):
    """CFORM mask applications per second (Table 1 semantics)."""
    rng = random.Random(2)
    requests = []
    state = 0
    for _ in range(512):
        mask = rng.getrandbits(64) & ~state & bv.FULL_MASK
        requests.append(CformRequest(0, attributes=mask, mask=mask))

    def apply_all():
        for request in requests:
            apply_cform_mask(0, request)

    benchmark(apply_all)
