"""Benchmark: regenerate Figure 11 (opportunistic & full policies)."""

import pytest

from repro.experiments import fig11_policies

pytestmark = pytest.mark.slow  # minutes-scale; deselected from tier-1, run in CI via -m slow


def test_fig11_policies(once):
    result = once(fig11_policies.run, instructions=60_000)
    print()
    print(fig11_policies.render(result))
    averages = result.averages()
    # Shape relations the paper's Figure 11 demonstrates.
    assert averages["full 1-7B"] >= averages["full 1-3B"] - 0.01
    assert averages["full 1-7B +CFORM"] > averages["full 1-7B"]
    assert averages["full 1-7B +CFORM"] > averages["opportunistic +CFORM"]
    # The malloc-intensive outliers exceed 10 % with CFORM.
    opp = result.configurations["opportunistic +CFORM"]
    assert opp.benchmark("perlbench").mean > 0.10
    assert opp.benchmark("gobmk").mean > 0.10
