"""Benchmark: regenerate Figure 3 (struct density census)."""

from repro.experiments import fig03_struct_density


def test_fig03_struct_density(once):
    results = once(fig03_struct_density.run)
    print()
    print(fig03_struct_density.render(results))
    assert abs(results["spec"].padded_fraction - 0.457) < 0.05
    assert abs(results["v8"].padded_fraction - 0.410) < 0.05
