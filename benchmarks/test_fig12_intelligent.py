"""Benchmark: regenerate Figure 12 (intelligent policy)."""

import pytest

from repro.experiments import fig11_policies, fig12_intelligent

pytestmark = pytest.mark.slow  # minutes-scale; deselected from tier-1, run in CI via -m slow


def test_fig12_intelligent(once):
    result = once(fig12_intelligent.run, instructions=60_000)
    print()
    print(fig12_intelligent.render(result))
    averages = result.averages()
    # Without CFORM the intelligent policy is nearly free (paper: 0.2 %).
    assert averages["intelligent 1-7B"] < 0.02
    # CFORM work raises the average but keeps it far below full policy.
    assert averages["intelligent 1-7B +CFORM"] > averages["intelligent 1-7B"]
    fig11_result = fig11_policies.run(instructions=60_000)
    assert (
        averages["intelligent 1-7B +CFORM"]
        < fig11_result.averages()["full 1-7B +CFORM"]
    )
    # gobmk is the standout (paper 16.1 %).
    suite = result.configurations["intelligent 1-7B +CFORM"]
    assert suite.benchmark("gobmk").mean > 0.08
