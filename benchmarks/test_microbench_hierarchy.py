"""Microbenchmarks: functional memory hierarchy and allocator paths."""

from repro.core.cform import CformRequest
from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.softstack.allocator import CaliformsHeap
from repro.softstack.compiler import CompilerConfig, CompilerPass
from repro.softstack.ctypes_model import LISTING_1_STRUCT_A
from repro.softstack.insertion import Policy


def small_config():
    return HierarchyConfig(
        l1_geometry=CacheGeometry(8 * 64, 2),
        l2_geometry=CacheGeometry(32 * 64, 4),
        l3_geometry=CacheGeometry(128 * 64, 8),
    )


def test_l1_hit_path(benchmark):
    hierarchy = MemoryHierarchy()
    hierarchy.store_or_raise(0x1000, b"warm")

    def hit_loop():
        for _ in range(256):
            hierarchy.load(0x1000, 8)

    benchmark(hit_loop)


def test_califormed_eviction_path(benchmark):
    """Spill/fill conversions under heavy eviction pressure."""
    hierarchy = MemoryHierarchy(small_config())
    for index in range(64):
        hierarchy.cform(CformRequest.set_bytes(index * 64, [1, 2, 3]))

    def thrash():
        for index in range(64):
            hierarchy.load(index * 64 + 8, 4)

    benchmark(thrash)


def test_malloc_free_cycle(benchmark):
    hierarchy = MemoryHierarchy()
    heap = CaliformsHeap(hierarchy, base=0x100000, size=64 * 64)
    compiler = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=1))
    layout = compiler.transform(LISTING_1_STRUCT_A)

    def cycle():
        for _ in range(8):
            allocation = heap.malloc(layout)
            heap.free(allocation)

    benchmark(cycle)
