"""Benchmark: the ablation studies of the design choices."""

from repro.analysis.ablation import (
    cform_mode_ablation,
    metadata_format_ablation,
    quarantine_ablation,
    render_all,
    span_range_ablation,
)


def test_ablations(once):
    text = once(render_all)
    print()
    print(text)
    # Directional claims the ablations must reproduce.
    quarantine = quarantine_ablation(fractions=(0.0, 0.6))
    assert quarantine[1].detection_rate >= quarantine[0].detection_rate
    modes = {r.mode: r.application_l1_misses for r in cform_mode_ablation()}
    assert modes["non-temporal"] <= modes["temporal"]
    formats = {r.format: r for r in metadata_format_ablation()}
    assert formats["califorms-sentinel"].l2_overhead_pct < 0.3
    spans = span_range_ablation()
    assert spans[-1].average_memory_overhead_pct > spans[0].average_memory_overhead_pct
