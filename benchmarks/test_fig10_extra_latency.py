"""Benchmark: regenerate Figure 10 (+1-cycle L2/L3 latency)."""

import pytest

from repro.experiments import fig10_extra_latency

pytestmark = pytest.mark.slow  # minutes-scale; deselected from tier-1, run in CI via -m slow


def test_fig10_extra_latency(once):
    result = once(fig10_extra_latency.run, instructions=60_000)
    print()
    print(fig10_extra_latency.render(result))
    # Shape: every benchmark slows a little; average stays small.
    assert all(0 < entry.mean < 0.06 for entry in result.per_benchmark)
    assert result.average < 0.03
    # Compute-bound benchmarks sit at the bottom of the ranking.
    ranking = sorted(result.per_benchmark, key=lambda entry: entry.mean)
    bottom = {entry.benchmark for entry in ranking[:6]}
    assert {"hmmer", "sjeng"} & bottom
