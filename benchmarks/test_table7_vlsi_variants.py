"""Benchmark: regenerate Table 7 (L1 Califorms variants)."""

import pytest

from repro.experiments import tables


def test_table7_vlsi_variants(once):
    rows = once(tables.table7_rows)
    print()
    print(tables.render_table7())
    by_name = {row["design"]: row for row in rows}
    # Paper: 4B and 1B variants add ~49 % and ~22 % L1 hit delay.
    assert by_name["Califorms-4B"]["delay_overhead_pct"] == pytest.approx(
        49.38, abs=6.0
    )
    assert by_name["Califorms-1B"]["delay_overhead_pct"] == pytest.approx(
        22.22, abs=4.0
    )
    # Area ranking follows metadata density: 8B > 4B > 1B.
    assert (
        by_name["Califorms-8B"]["area_overhead_pct"]
        > by_name["Califorms-4B"]["area_overhead_pct"]
        > by_name["Califorms-1B"]["area_overhead_pct"]
    )
