"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures; the
measured payloads are printed so ``pytest benchmarks/ --benchmark-only -s``
doubles as a results dump.  Scales are kept small enough for the whole
suite to run in a couple of minutes; the experiment registry
(``python -m repro run --full``) produces the higher-fidelity numbers
for EXPERIMENTS.md and results/*.json.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (long-running drivers)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
