"""Benchmark: regenerate the Section 7.3 derandomization analysis."""

import pytest

from repro.experiments import sec7_derandomization


def test_sec7_derandomization(once):
    result = once(sec7_derandomization.run, trials=300)
    print()
    print(sec7_derandomization.render(result))
    # Paper: scan success collapses by O = 250 at 10 % padding.
    assert result.scan_curve[250] < 1e-11
    assert result.guess_curve[3] == pytest.approx(1 / 343)
    # Monte-Carlo agrees in order of magnitude with the analytics.
    assert result.simulated_guess_success < 0.02
