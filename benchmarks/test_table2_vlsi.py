"""Benchmark: regenerate Table 2 (VLSI area/delay/power)."""

import pytest

from repro.experiments import tables


def test_table2_vlsi(once):
    rows = once(tables.table2_rows)
    print()
    print(tables.render_table2())
    main = rows[1]
    assert main["area_overhead_pct"] == pytest.approx(18.69, abs=2.0)
    assert main["delay_overhead_pct"] == pytest.approx(1.85, abs=1.0)
    assert main["spill_delay_ns"] == pytest.approx(5.50, abs=0.6)
    assert main["fill_delay_ns"] < 1.62  # fits within the L1 access period
