# Developer entry points.  Everything runs with PYTHONPATH=src; no
# installation step is required.

PY := PYTHONPATH=src python

#: Scratch directory for the trace-demo targets.  Unset (the default),
#: each run works in a private mktemp dir and removes it on exit, so
#: concurrent CI jobs and multi-user machines cannot collide; set it to
#: keep the produced traces around for inspection.
TRACE_DEMO_DIR ?=

#: Shared recipe prologue for the demo targets: pick the scratch dir
#: (private mktemp removed on exit, or the kept TRACE_DEMO_DIR).
DEMO_DIR_SETUP = set -e; dir="$(TRACE_DEMO_DIR)"; \
	if [ -z "$$dir" ]; then dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	else mkdir -p "$$dir"; fi

#: Corpus store root for the corpus-demo target (kept between runs so
#: the second build demonstrates pure corpus hits; CI caches it).
CORPUS_DIR ?= .repro-corpus

.PHONY: test test-slow bench bench-quick bench-smoke bench-profile \
        experiments experiments-full experiments-smoke faults-smoke \
        trace-demo trace-demo-mc corpus-demo loadgen-smoke kernel-smoke \
        telemetry-smoke serve-smoke

#: Scratch directory for the fault-injection matrix (wiped each run).
FAULTS_DIR ?= .repro-faults

## Tier-1 verification: the full test + microbenchmark session.
test:
	$(PY) -m pytest -x -q

## The minutes-scale figure-regeneration benchmarks (deselected from
## the default session; CI runs this as its own step).
test-slow:
	$(PY) -m pytest -x -q -m slow

## Record a full BENCH_<timestamp>.json trajectory entry.
bench:
	$(PY) -m repro.perf $(BENCH_ARGS)

## Fast smoke run (small workloads, no report written).
bench-quick:
	$(PY) -m repro.perf --quick --no-write

## CI alias for the smoke run (the workflow gate).
bench-smoke: bench-quick

## Full run plus cProfile dumps under benchmarks/trajectory/profiles/.
bench-profile:
	$(PY) -m repro.perf --profile $(BENCH_ARGS)

## Regenerate EXPERIMENTS.md + results/*.json (quick profile).
experiments:
	$(PY) -m repro run

## Full-fidelity experiments, parallelised across 4 worker processes.
experiments-full:
	$(PY) -m repro run --full --jobs 4

## CI gate: the whole experiment matrix at quick profile, 2 workers;
## writes EXPERIMENTS.md and the results/*.json artifact set.
experiments-smoke:
	$(PY) -m repro run --profile quick --jobs 2

## CI gate: the fault-injection matrix — every fault kind against every
## consumer (ensure / replay / verify --repair / lock / runner), each
## cell asserting self-heal back to byte-identical state.  See
## docs/RELIABILITY.md; the scratch stores land in FAULTS_DIR.
faults-smoke:
	$(PY) -m repro faults matrix --root "$(FAULTS_DIR)" \
		--json "$(FAULTS_DIR)-cases.json"

#: Results directory for the telemetry-smoke run (kept, so CI can
#: upload the metrics/span artifacts).
TELEMETRY_DIR ?= .repro-telemetry

## CI gate for the telemetry subsystem: run two quick sections with
## spans + per-section cProfile, assert the exported artifacts exist
## and parse (metrics.json schema, span log schema, Prometheus text),
## then read the sidecar back through the CLI.  See docs/OBSERVABILITY.md.
telemetry-smoke:
	set -e; rm -rf "$(TELEMETRY_DIR)"; \
	$(PY) -m repro run fig03 table1 --profile-sections \
		--results-dir "$(TELEMETRY_DIR)" \
		--output "$(TELEMETRY_DIR)/EXPERIMENTS.partial.md"; \
	$(PY) -c "import json, sys; \
	from repro.telemetry.export import validate_metrics_document, validate_span_log; \
	doc = json.load(open('$(TELEMETRY_DIR)/telemetry/metrics.json')); \
	problems = validate_metrics_document(doc) \
	    + validate_span_log('$(TELEMETRY_DIR)/telemetry/spans.jsonl'); \
	[print('FAIL', p) for p in problems]; \
	sys.exit(1 if problems else 0)"; \
	$(PY) -c "import sys; \
	text = open('$(TELEMETRY_DIR)/telemetry/metrics.prom').read(); \
	sys.exit(0 if '# TYPE' in text else 1)"; \
	$(PY) -m repro telemetry summarize "$(TELEMETRY_DIR)/telemetry"; \
	echo "telemetry-smoke: artifacts present, schemas valid"

#: Working directory for the serve-smoke run (kept, so CI can upload
#: the server log on failure).
SERVE_DIR ?= .repro-serve

## CI gate for the corpus/experiment service: build a tiny corpus +
## pack + results doc, start `repro serve` on an ephemeral port, then
## drive it with scripts/serve_smoke.py — fetch-by-digest byte
## identity, replay identity through the RemoteStore, results 200→304
## revalidation, a digest-verified pack round-trip, a streamed job, and
## a parseable /metrics body.  See docs/SERVICE.md; the server log
## lands in SERVE_DIR/serve.log.
serve-smoke:
	set -e; rm -rf "$(SERVE_DIR)"; mkdir -p "$(SERVE_DIR)/results"; \
	$(PY) -m repro corpus --root "$(SERVE_DIR)/corpus" build \
		--scenario server-churn --instructions 4000; \
	$(PY) -m repro corpus --root "$(SERVE_DIR)/corpus" pack; \
	$(PY) -c "import json; \
	from repro.experiments.results import RESULT_SCHEMA; \
	json.dump({'schema': RESULT_SCHEMA, 'section': 'smoke', \
	'title': 'serve smoke', 'data': {'ok': 1}}, \
	open('$(SERVE_DIR)/results/smoke.json', 'w'))"; \
	$(PY) -m repro serve --port 0 --corpus "$(SERVE_DIR)/corpus" \
		--results-dir "$(SERVE_DIR)/results" \
		--port-file "$(SERVE_DIR)/port" \
		> "$(SERVE_DIR)/serve.log" 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	i=0; until [ -s "$(SERVE_DIR)/port" ] || [ $$i -ge 100 ]; do \
		sleep 0.1; i=$$((i+1)); done; \
	[ -s "$(SERVE_DIR)/port" ] || { cat "$(SERVE_DIR)/serve.log"; exit 1; }; \
	$(PY) scripts/serve_smoke.py \
		"http://127.0.0.1:$$(cat $(SERVE_DIR)/port)" "$(SERVE_DIR)/corpus"

## Trace engine end-to-end: record -> info -> shard -> parallel replay.
## Runs in a private mktemp dir (removed on exit) unless TRACE_DEMO_DIR
## is set, in which case that directory is used and kept.
trace-demo:
	@$(DEMO_DIR_SETUP); \
	$(PY) -m repro.traces list; \
	$(PY) -m repro.traces record --scenario server-churn \
		--instructions 8000 --out "$$dir/server-churn.trace"; \
	$(PY) -m repro.traces info "$$dir/server-churn.trace"; \
	$(PY) -m repro.traces replay "$$dir/server-churn.trace"; \
	$(PY) -m repro.traces shard "$$dir/server-churn.trace" \
		--out-dir "$$dir/shards" --shards 4; \
	$(PY) -m repro.traces replay-shards "$$dir/shards"/*.trace --jobs 2; \
	$(PY) -m repro.traces replay "$$dir/server-churn.trace" --mode hierarchy

## Corpus store end-to-end: build the registry corpus (recording what's
## missing), list + hash-verify it, rebuild to show pure corpus hits,
## then gc.  The store persists in CORPUS_DIR across runs.
corpus-demo:
	$(PY) -m repro.corpus --root "$(CORPUS_DIR)" build --instructions 8000
	$(PY) -m repro.corpus --root "$(CORPUS_DIR)" ls
	$(PY) -m repro.corpus --root "$(CORPUS_DIR)" verify
	$(PY) -m repro.corpus --root "$(CORPUS_DIR)" build --instructions 8000
	$(PY) -m repro.corpus --root "$(CORPUS_DIR)" gc

#: Output directory for the loadgen-smoke trace artifacts (kept, so CI
#: can upload them).
LOADGEN_DIR ?= .repro-loadgen

## Traffic engine end-to-end: list scenarios/sets, compose the smallest
## synthetic member twice (byte-identical determinism check), then
## inspect + replay the trace with footer verification.
loadgen-smoke:
	set -e; mkdir -p "$(LOADGEN_DIR)"; \
	$(PY) -m repro loadgen list; \
	$(PY) -m repro loadgen sets; \
	$(PY) -m repro loadgen generate uniform-churn \
		--out "$(LOADGEN_DIR)/uniform-churn.trace"; \
	$(PY) -m repro loadgen generate uniform-churn \
		--out "$(LOADGEN_DIR)/uniform-churn-2.trace"; \
	cmp "$(LOADGEN_DIR)/uniform-churn.trace" \
		"$(LOADGEN_DIR)/uniform-churn-2.trace"; \
	$(PY) -m repro.traces info "$(LOADGEN_DIR)/uniform-churn.trace"; \
	$(PY) -m repro.traces replay "$(LOADGEN_DIR)/uniform-churn.trace"

## CI gate for the columnar replay engine: record a compressed trace,
## replay it with both engines (timing + hierarchy + shared-L3 modes)
## and require byte-identical statistics output.  The printed replay
## summaries carry no timing, so `cmp` is the whole oracle.
kernel-smoke:
	@$(DEMO_DIR_SETUP); \
	$(PY) -m repro.traces record --scenario server-churn \
		--instructions 8000 --compress \
		--out "$$dir/server-churn.trace"; \
	for mode in timing hierarchy; do \
		$(PY) -m repro.traces replay "$$dir/server-churn.trace" \
			--mode $$mode --engine columnar \
			> "$$dir/$$mode-columnar.txt"; \
		$(PY) -m repro.traces replay "$$dir/server-churn.trace" \
			--mode $$mode --engine records \
			> "$$dir/$$mode-records.txt"; \
		cmp "$$dir/$$mode-columnar.txt" "$$dir/$$mode-records.txt"; \
	done; \
	$(PY) -m repro.traces replay-mc "$$dir/server-churn.trace" \
		--cores 2 --engine columnar > "$$dir/mc-columnar.txt"; \
	$(PY) -m repro.traces replay-mc "$$dir/server-churn.trace" \
		--cores 2 --engine records > "$$dir/mc-records.txt"; \
	cmp "$$dir/mc-columnar.txt" "$$dir/mc-records.txt"; \
	echo "kernel-smoke: columnar and per-record engines agree"

## Multi-core trace engine end-to-end: record a pair, replay it against
## the shared L3 (2 homogeneous cores, then a named antagonist mix).
trace-demo-mc:
	@$(DEMO_DIR_SETUP); \
	$(PY) -m repro.traces record --scenario server-churn \
		--instructions 8000 --out "$$dir/server-churn.trace"; \
	$(PY) -m repro.traces replay-mc "$$dir/server-churn.trace" \
		--cores 2 --jobs 2; \
	$(PY) -m repro.traces replay-mc --mix server-vs-scan \
		--instructions 8000 --jobs 2
