# Developer entry points.  Everything runs with PYTHONPATH=src; no
# installation step is required.

PY := PYTHONPATH=src python

.PHONY: test bench bench-quick bench-profile experiments experiments-full

## Tier-1 verification: the full test + microbenchmark session.
test:
	$(PY) -m pytest -x -q

## Record a full BENCH_<timestamp>.json trajectory entry.
bench:
	$(PY) -m repro.perf $(BENCH_ARGS)

## Fast smoke run (small workloads, no report written).
bench-quick:
	$(PY) -m repro.perf --quick --no-write

## Full run plus cProfile dumps under benchmarks/trajectory/profiles/.
bench-profile:
	$(PY) -m repro.perf --profile $(BENCH_ARGS)

## Regenerate EXPERIMENTS.md (quick mode).
experiments:
	$(PY) -m repro.experiments.runner

## Full-fidelity experiments, parallelised across 4 worker processes.
experiments-full:
	$(PY) -m repro.experiments.runner --full --jobs 4
