# Developer entry points.  Everything runs with PYTHONPATH=src; no
# installation step is required.

PY := PYTHONPATH=src python

#: Scratch directory for the trace-demo target.
TRACE_DEMO_DIR := /tmp/repro-trace-demo

.PHONY: test bench bench-quick bench-smoke bench-profile experiments \
        experiments-full trace-demo

## Tier-1 verification: the full test + microbenchmark session.
test:
	$(PY) -m pytest -x -q

## Record a full BENCH_<timestamp>.json trajectory entry.
bench:
	$(PY) -m repro.perf $(BENCH_ARGS)

## Fast smoke run (small workloads, no report written).
bench-quick:
	$(PY) -m repro.perf --quick --no-write

## CI alias for the smoke run (the workflow gate).
bench-smoke: bench-quick

## Full run plus cProfile dumps under benchmarks/trajectory/profiles/.
bench-profile:
	$(PY) -m repro.perf --profile $(BENCH_ARGS)

## Regenerate EXPERIMENTS.md (quick mode).
experiments:
	$(PY) -m repro.experiments.runner

## Full-fidelity experiments, parallelised across 4 worker processes.
experiments-full:
	$(PY) -m repro.experiments.runner --full --jobs 4

## Trace engine end-to-end: record -> info -> shard -> parallel replay.
trace-demo:
	rm -rf $(TRACE_DEMO_DIR)
	mkdir -p $(TRACE_DEMO_DIR)
	$(PY) -m repro.traces list
	$(PY) -m repro.traces record --scenario server-churn \
		--instructions 8000 --out $(TRACE_DEMO_DIR)/server-churn.trace
	$(PY) -m repro.traces info $(TRACE_DEMO_DIR)/server-churn.trace
	$(PY) -m repro.traces replay $(TRACE_DEMO_DIR)/server-churn.trace
	$(PY) -m repro.traces shard $(TRACE_DEMO_DIR)/server-churn.trace \
		--out-dir $(TRACE_DEMO_DIR)/shards --shards 4
	$(PY) -m repro.traces replay-shards $(TRACE_DEMO_DIR)/shards/*.trace --jobs 2
	$(PY) -m repro.traces replay $(TRACE_DEMO_DIR)/server-churn.trace --mode hierarchy
