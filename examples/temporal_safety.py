"""Temporal safety walkthrough: use-after-free, double free, quarantine.

Demonstrates the clean-before-use heap of Section 6.1 on the live
simulator: freed memory is re-blacklisted *and zeroed*, quarantine delays
reuse, double frees trap, and the stack's dirty-before-use discipline
protects locals per frame.

    python examples/temporal_safety.py
"""

from repro.core.exceptions import SecurityByteAccess
from repro.softstack.allocator import HeapError
from repro.softstack.ctypes_model import CHAR, INT, LISTING_1_STRUCT_A, Array, struct
from repro.softstack.insertion import Policy
from repro.softstack.runtime import Process


def main() -> None:
    process = Process(policy=Policy.FULL, seed=11)
    secret_t = struct("secret", ("key", Array(CHAR, 16)), ("uses", INT))
    process.declare(secret_t)

    # --- use-after-free ---------------------------------------------------
    obj = process.new("secret")
    process.write_field(obj, "key", b"hunter2_hunter2!")
    key_address = process.field_address(obj, "key")
    process.delete(obj)
    print("use-after-free read of obj.key ...")
    try:
        process.raw_read(key_address, 16)
    except SecurityByteAccess as caught:
        print(f"  CAUGHT: {caught}")

    # Even a whitelisted reader (think: kernel memcpy) sees zeros — the
    # hardware zeroed the bytes on free, so no stale secrets leak.
    leaked = process.io_write(key_address, 16)
    print(f"  whitelisted read sees: {leaked!r} (zeroed, no secret leak)\n")

    # --- double free -------------------------------------------------------
    print("double free ...")
    victim = process.new("secret")
    process.delete(victim)
    try:
        process.heap.free(victim.allocation)
    except Exception as caught:  # HeapError or CformUsageError
        print(f"  CAUGHT: {type(caught).__name__}: {caught}\n")

    # --- quarantine --------------------------------------------------------
    print("quarantine: freed addresses are not immediately reused")
    first = process.new("secret")
    first_address = first.address
    process.delete(first)
    second = process.new("secret")
    print(f"  freed at {first_address:#x}, next malloc at {second.address:#x} "
          f"({'different' if second.address != first_address else 'same'})\n")

    # --- stack locals (dirty-before-use) ------------------------------------
    print("stack frame with a protected local ...")
    process.declare(LISTING_1_STRUCT_A)
    frame = process.push_frame({"local": "A"})
    layout, base = frame.locals["local"]
    span = layout.spans[0]
    try:
        process.raw_read(base + span.offset, 1)
    except SecurityByteAccess:
        print("  local's security span traps while the frame is live")
    process.pop_frame()
    process.raw_read(base + span.offset, 1)
    print("  after return, the same bytes are ordinary stack memory again")

    assert isinstance(HeapError, type)  # re-exported for users


if __name__ == "__main__":
    main()
