"""Trace-engine workflows: record -> shard -> parallel replay -> report.

Walks the full life of a persisted workload:

1. pick a scenario from the declarative registry (or author your own
   spec as a plain dict / JSON document);
2. record a live generator run to a compact binary trace;
3. verify the round-trip invariant — replaying the file reproduces the
   live run's cycle statistics bit-identically;
4. shard the trace at epoch boundaries and replay the shards across
   worker processes, checking that parallelism never changes results;
5. run the same trace through the data-carrying hierarchy for
   exception accounting;
6. resolve the same scenario through a :class:`RunContext`-carried
   corpus store — the unified experiment API's way of reaching recorded
   workloads (``python -m repro run --tag trace`` rides this path).

Run with::

    PYTHONPATH=src python examples/trace_workflows.py

Every step also has a CLI twin under the one front door:
``python -m repro trace record|info|shard|replay-shards ...`` and
``python -m repro corpus build|ls ...``.
"""

import os
import tempfile
import time

from repro.experiments import RunContext
from repro.memory.hierarchy import WESTMERE
from repro.traces import (
    TraceReader,
    TraceScenarioSpec,
    corpus_spec,
    record_spec,
    replay_hierarchy,
    replay_shards,
    replay_timing,
    shard_trace,
)

INSTRUCTIONS = 12_000  # keep the example snappy; scale freely


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="trace-workflows-")

    # -- 1. pick (or author) a scenario -------------------------------------
    spec = corpus_spec("server-churn").scaled(INSTRUCTIONS)
    print(f"scenario: {spec.name} — {spec.description}")

    # The registry is declarative: the same document round-trips through
    # JSON, so scenarios can live in files next to the experiments.
    document = spec.to_dict()
    assert TraceScenarioSpec.from_dict(document) == spec
    print(f"spec document keys: {sorted(document)}\n")

    # -- 2. record ----------------------------------------------------------
    path = os.path.join(workdir, "server-churn.trace")
    started = time.perf_counter()
    live = record_spec(spec, path)
    elapsed = time.perf_counter() - started
    size = os.path.getsize(path)
    with TraceReader(path) as reader:
        footer = reader.read_footer()
    print(
        f"recorded {footer['records']} records ({size / 1024:.0f} KB) "
        f"in {elapsed * 1e3:.0f} ms -> {path}"
    )

    # -- 3. bit-identical replay --------------------------------------------
    replayed = replay_timing(path)
    assert replayed.events == live.events
    assert replayed.instructions == live.instructions
    live_cycles = live.cycles(WESTMERE, spec.profile)
    replay_cycles = replayed.cycles(WESTMERE, spec.profile)
    assert live_cycles == replay_cycles
    print(
        f"replay verified: {replayed.events.l1_accesses} L1 accesses, "
        f"{replayed.instructions} instructions, "
        f"{live_cycles:.0f} cycles — bit-identical to the live run\n"
    )

    # -- 4. shard + parallel replay -----------------------------------------
    shard_dir = os.path.join(workdir, "shards")
    shard_paths = shard_trace(path, shard_dir, shards=4)
    print(f"sharded into {len(shard_paths)} per-epoch-range files")
    serial = replay_shards(shard_paths, jobs=1)
    parallel = replay_shards(shard_paths, jobs=4)
    assert serial == parallel, "worker count changed the merged accounting!"
    stats = parallel.stats
    print(
        f"merged over {parallel.shards} shards (4 workers): "
        f"{stats.touches} touches, {stats.events.l1_misses} L1 misses, "
        f"{stats.amat_cycles} AMAT cycles — identical at any worker count\n"
    )

    # -- 5. exception accounting through the full hierarchy ------------------
    hierarchy_stats = replay_hierarchy(path)
    print(
        f"hierarchy replay: {hierarchy_stats.violations} security-byte "
        f"violations, {hierarchy_stats.amat_cycles} cycles "
        f"(CFORM records applied as line-tail security bytes)\n"
    )

    # -- 6. the experiment API's view: a context-carried corpus store --------
    # RunContext is the one place corpus roots are resolved; experiments
    # never guess.  ensure() records on first use and replays a
    # content-addressed hit thereafter.
    ctx = RunContext.create("quick", corpus=os.path.join(workdir, "corpus"))
    first = ctx.store.ensure(spec)
    again = ctx.store.ensure(spec)
    print(
        f"corpus via RunContext: {first.entry.records} records, "
        f"{'recorded' if first.built else 'corpus hit'} then "
        f"{'recorded' if again.built else 'corpus hit'} "
        f"({first.entry.compression_ratio:.1f}x compressed, "
        f"digest {first.entry.digest[:12]})"
    )
    print(f"\nartifacts kept under {workdir}")


if __name__ == "__main__":
    main()
