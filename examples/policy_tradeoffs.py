"""Policy trade-off sweep: security coverage vs performance.

Runs a compact version of the paper's Figures 11/12 over a few
benchmarks and prints the trade-off each insertion policy offers,
alongside the memory overhead of the transformed layouts — the
"tune the security level at the cost of performance" story of Section 2.

    python examples/policy_tradeoffs.py [--instructions N]
"""

import argparse

from repro.analysis.suite import render_suite, sweep
from repro.softstack.compiler import CompilerConfig, CompilerPass
from repro.softstack.insertion import Policy
from repro.workloads.generator import Scenario
from repro.workloads.structs_corpus import HEAP_TYPE_POOL

BENCHMARKS = ["hmmer", "gobmk", "mcf", "perlbench", "xalancbmk"]


def layout_overheads() -> dict[str, float]:
    """Average memory overhead of each policy over the heap type pool."""
    overheads = {}
    for policy in Policy:
        compiler = CompilerPass(CompilerConfig(policy=policy, seed=7))
        natural = sum(struct.size for struct in HEAP_TYPE_POOL)
        transformed = sum(
            compiler.transform(struct).size for struct in HEAP_TYPE_POOL
        )
        overheads[policy.value] = transformed / natural - 1.0
    return overheads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=60_000)
    arguments = parser.parse_args()

    print("memory overhead of each policy (heap type pool):")
    for policy, overhead in layout_overheads().items():
        print(f"  {policy:14s} +{overhead * 100:5.1f}% bytes")
    print()

    for policy in Policy:
        scenario = Scenario(policy=policy, with_cform=True)
        result = sweep(
            BENCHMARKS,
            scenario,
            instructions=arguments.instructions,
            label=f"{policy.value} policy (+CFORM)",
        )
        print(render_suite(result))
        print()

    print(
        "Reading: opportunistic = free but partial coverage;\n"
        "full = widest coverage, highest cost;\n"
        "intelligent = arrays/pointers only — the paper's practical pick."
    )


if __name__ == "__main__":
    main()
