"""Cache-line forensics: watch a califormed line change format.

Follows one 64-byte line through the memory hierarchy, printing its
physical representation at each level:

* califorms-bitvector in the L1 (64 data bytes + 64-bit mask),
* califorms-sentinel in the L2/L3/DRAM (header + relocated bytes +
  sentinel marks, one metadata bit),
* the Appendix A 4B/1B alternatives for the same logical line.

    python examples/cacheline_forensics.py
"""

from repro.core import bitvector as bv
from repro.core.cform import CformRequest
from repro.core.line_formats import BitvectorLine
from repro.core.sentinel import decode, encode, find_sentinel
from repro.core.variants import encode_1b, encode_4b
from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


def hexdump(data: bytes, mask: int = 0) -> str:
    """One-line hexdump with security bytes bracketed."""
    parts = []
    for index, value in enumerate(data[:32]):
        text = f"{value:02x}"
        parts.append(f"[{text}]" if bv.test_bit(mask, index) else f" {text} ")
    return "".join(parts) + (" ..." if len(data) > 32 else "")


def main() -> None:
    data = bytearray(range(64))
    secmask = bv.mask_from_indices([1, 2, 3, 20, 21, 40])
    line = BitvectorLine(data, secmask)

    print("L1 view (califorms-bitvector, 8B metadata):")
    print(f"  data: {hexdump(bytes(line.data), line.secmask)}")
    print(f"  mask: {line.secmask:#018x}\n")

    encoded = encode(line)
    sentinel = find_sentinel(bytes(line.data), line.secmask)
    print("L2+ view (califorms-sentinel, 1-bit metadata):")
    print(f"  raw:  {hexdump(encoded.raw)}")
    print(f"  califormed bit: {int(encoded.califormed)}")
    print(f"  header code: {encoded.raw[0] & 0b11:02b} "
          f"(={bin(encoded.raw[0] & 3).count('1') and ''}{(encoded.raw[0] & 3) + 1}"
          " listed security bytes), sentinel value:", sentinel, "\n")

    restored = decode(encoded)
    assert bytes(restored.data) == bytes(line.data)
    assert restored.secmask == line.secmask
    print("fill (Algorithm 2) restores the exact L1 view: OK\n")

    print("Appendix A variants for the same logical line:")
    four_b = encode_4b(line)
    one_b = encode_1b(line)
    print(f"  califorms-4B: chunk mask {four_b.chunk_califormed:08b}, "
          f"vector slots {four_b.vector_slot}")
    print(f"  califorms-1B: chunk mask {one_b.chunk_califormed:08b}, "
          f"metadata {one_b.metadata_bits} bits/line\n")

    # Through an actual tiny hierarchy: evict to DRAM and re-fetch.
    hierarchy = MemoryHierarchy(
        HierarchyConfig(
            l1_geometry=CacheGeometry(2 * 64, 1),
            l2_geometry=CacheGeometry(4 * 64, 2),
            l3_geometry=CacheGeometry(8 * 64, 2),
        )
    )
    hierarchy.store_or_raise(0, bytes(range(4)))
    hierarchy.cform(CformRequest.set_bytes(0, [20, 21]))
    hierarchy.flush_all()
    print("after flushing the hierarchy:")
    print(f"  DRAM lines using their ECC spare bit: "
          f"{hierarchy.dram.califormed_line_count()}")
    print(f"  refetched data: {hierarchy.load_or_raise(0, 4)!r}")
    print(f"  security mask survives: {hierarchy.secmask_of(0):#x}")


if __name__ == "__main__":
    main()
