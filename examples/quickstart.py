"""Quickstart: protect a struct with Califorms and catch an overflow.

Runs the paper's Listing 1 example end to end: declare ``struct A``,
let the compiler pass insert security bytes, allocate an instance on the
simulated califormed heap, use it legitimately, then watch an
intra-object overflow from ``buf`` into the function pointer raise the
privileged Califorms exception.  Closes by running one registered
experiment through the unified API — the same path
``python -m repro run`` takes for every section.

    PYTHONPATH=src python examples/quickstart.py
"""

from repro.core.exceptions import SecurityByteAccess
from repro.experiments import RunContext
from repro.experiments.registry import get
from repro.softstack.ctypes_model import LISTING_1_STRUCT_A
from repro.softstack.insertion import Policy
from repro.softstack.runtime import Process


def main() -> None:
    # A process compiled with the full insertion policy (random 1-7 B
    # security-byte spans around every field).
    process = Process(policy=Policy.FULL, seed=2024)
    layout = process.declare(LISTING_1_STRUCT_A)

    print("struct A after the Califorms compiler pass:")
    for name in ("c", "i", "buf", "fp", "d"):
        print(f"  {name:4s} at offset {layout.offset_of(name):3d}")
    print(f"  security spans: {[(s.offset, s.size) for s in layout.spans]}")
    print(f"  size {layout.base.size} -> {layout.size} bytes\n")

    # Normal use: fields read and write exactly as before.
    obj = process.new("A")
    process.write_field(obj, "i", (1234).to_bytes(4, "little"))
    process.write_field(obj, "buf", b"A" * 64)
    value = int.from_bytes(process.read_field(obj, "i"), "little")
    print(f"legitimate access: obj.i == {value}")

    # The attack: write 65 bytes into the 64-byte buf, clobbering the
    # security span guarding fp.
    buf_address = process.field_address(obj, "buf")
    print("attempting 65-byte write into buf[64] ...")
    try:
        process.raw_write(buf_address, b"B" * 65)
    except SecurityByteAccess as caught:
        print(f"  CAUGHT: {caught}")
    else:
        raise SystemExit("overflow was not detected — this should not happen")

    # Temporal safety: the object is blacklisted again after free.
    field = process.field_address(obj, "i")
    process.delete(obj)
    print("attempting use-after-free read ...")
    try:
        process.raw_read(field, 4)
    except SecurityByteAccess as caught:
        print(f"  CAUGHT: {caught}")

    stats = process.heap.stats
    print(
        f"\nheap stats: {stats.mallocs} mallocs, {stats.frees} frees, "
        f"{stats.cform_instructions} CFORM instructions issued"
    )

    # The experiment API in three lines: look an experiment up in the
    # registry, hand it a context, get structured data + rendered
    # markdown back (``python -m repro run fig03`` is exactly this).
    result = get("fig03").run(RunContext())
    spec_census = result.data["census"]["spec"]
    print(
        f"\nregistry spot-check — {result.title}: "
        f"{spec_census['struct_count']} structs, padded fraction "
        f"{spec_census['padded_fraction']:.3f} (paper 0.457)"
    )


if __name__ == "__main__":
    main()
