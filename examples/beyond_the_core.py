"""Beyond the core design: the paper's discussion sections, executable.

Demonstrates the pieces the paper discusses but does not evaluate:

* Appendix B's three SIMD/vector load policies,
* the Section 7.2 speculative padding probe (and why zero-on-free
  defuses it),
* the Section 7.2 DMA bypass and its califorms-aware mitigation,
* the Section 7.3 BROP brute-force against fixed vs re-randomized
  layouts.

    python examples/beyond_the_core.py
"""

from repro.baselines.randstruct import offset_bounds, simulate_brop
from repro.core.cform import CformRequest
from repro.core.exceptions import SecurityByteAccess
from repro.cpu.speculation import padding_probe_attack
from repro.cpu.vector import VectorPolicy, VectorUnit
from repro.memory.dma import DmaEngine
from repro.memory.hierarchy import MemoryHierarchy
from repro.softstack.ctypes_model import LISTING_1_STRUCT_A


def vector_demo() -> None:
    print("-- Appendix B: vector loads over a security byte --")
    hierarchy = MemoryHierarchy()
    hierarchy.store_or_raise(0x1000, bytes(range(64)))
    hierarchy.cform(CformRequest.set_bytes(0x1000, [18]))
    for policy in VectorPolicy:
        unit = VectorUnit(hierarchy, policy)
        wanted_lanes = 0b11  # the program only wants bytes 0..15
        try:
            register = unit.load(0x1000, 64, element_mask=wanted_lanes)
            outcome = f"ok (poison mask {register.poison:#x})"
        except SecurityByteAccess:
            outcome = "faulted"
        print(f"  {policy.value:13s}: {outcome}")
    print("  (fault-on-any trips on a lane the program never asked for)\n")


def speculation_demo() -> None:
    print("-- Section 7.2: speculative padding probe --")
    hierarchy = MemoryHierarchy()
    hierarchy.store_or_raise(0x2000, bytes([0x77] * 32))
    hierarchy.cform(CformRequest.set_bytes(0x2000, [12, 13]))
    for zero_on_free in (False, True):
        result = padding_probe_attack(
            hierarchy,
            suspected_offsets=list(range(10, 16)),
            base_address=0x2000,
            previous_contents_nonzero=True,
            zero_on_free=zero_on_free,
        )
        print(
            f"  zero-on-free={zero_on_free}: attacker inferred "
            f"{result.inferred_security_bytes} security bytes"
        )
    print()


def dma_demo() -> None:
    print("-- Section 7.2: DMA bypass --")
    hierarchy = MemoryHierarchy()
    hierarchy.store_or_raise(0x3000, bytes([0xAB] * 16))
    hierarchy.cform(CformRequest.set_bytes(0x3000, [4, 5]))
    hierarchy.flush_all()
    naive = DmaEngine(hierarchy.dram, respects_califorms=False).read(0x3000, 16)
    aware = DmaEngine(hierarchy.dram, respects_califorms=True).read(0x3000, 16)
    print(f"  naive device:  {len(naive.violations)} violations, "
          f"{naive.leaked_format_bytes} sentinel-format bytes leaked")
    print(f"  aware device:  {len(aware.violations)} violations, "
          f"{aware.leaked_format_bytes} bytes leaked\n")


def brop_demo() -> None:
    print("-- Section 7.3: BROP crash-and-retry --")
    low, high = offset_bounds(LISTING_1_STRUCT_A, "buf", 1, 7)
    print(f"  buf offset space under full policy: [{low}, {high}]")
    fixed = simulate_brop(LISTING_1_STRUCT_A, "buf", False, seed=1)
    rerand = simulate_brop(LISTING_1_STRUCT_A, "buf", True, seed=3)
    print(f"  fixed layout:          cracked after {fixed.attempts} crashes")
    print(f"  re-randomize on spawn: took {rerand.attempts} attempts "
          "(memoryless — no enumeration possible)")


def main() -> None:
    vector_demo()
    speculation_demo()
    dma_demo()
    brop_demo()


if __name__ == "__main__":
    main()
