"""CLI for the traffic engine: ``python -m repro.loadgen``.

Subcommands::

    list                              committed scenario documents
    sets                              named benchmark sets + members
    show  NAME                        one document + its composition plan
    generate NAME [--out F]           compose + record a CALTRC02 trace

Examples::

    python -m repro loadgen list
    python -m repro loadgen show multi-tenant-server
    python -m repro loadgen generate uniform-churn --out uc.trace
    python -m repro loadgen generate "4x server-churn" --out x4.trace
    python -m repro.traces replay uc.trace      # verifies vs the footer

``generate`` resolves its token like ``repro run --set``: a scenario
name, a counted alias (``4x server-churn``) or — with ``--spec`` — a
JSON document path.  It prints the canonical content digest, so two
invocations demonstrating determinism can be compared without a replay.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadgen.arrivals import timelines
from repro.loadgen.compose import apportion_tenants, compose_spec
from repro.loadgen.schema import LoadScenario, load_scenario
from repro.loadgen.sets import BENCHMARK_SETS, load_scenarios, resolve
from repro.traces.format import TraceFormatError, TraceIntegrityError
from repro.traces.recorder import record_spec


def _cmd_list(arguments: argparse.Namespace) -> int:
    scenarios = load_scenarios()
    width = max(len(name) for name in scenarios)
    for name in sorted(scenarios):
        scenario = scenarios[name]
        print(
            f"{name:{width}s}  {scenario.arrival.kind:8s} "
            f"{scenario.arrival.lambda_per_s:7.0f}/s  "
            f"{scenario.tenants:2d} tenant(s)  {scenario.duration_s:4.2f}s  "
            f"{scenario.description}"
        )
    return 0


def _cmd_sets(arguments: argparse.Namespace) -> int:
    scenarios = load_scenarios()
    width = max(len(name) for name in BENCHMARK_SETS)
    for name in sorted(BENCHMARK_SETS):
        members = resolve([name], scenarios)
        print(
            f"{name:{width}s}  "
            f"{', '.join(member.name for member in members)}"
        )
    return 0


def _resolve_one(arguments: argparse.Namespace) -> LoadScenario:
    if arguments.spec:
        scenario = load_scenario(arguments.spec)
    else:
        resolved = resolve([arguments.scenario], load_scenarios())
        if len(resolved) != 1:
            raise ValueError(
                f"{arguments.scenario!r} resolves to "
                f"{len(resolved)} scenarios; name exactly one "
                "(generate one trace per invocation)"
            )
        scenario = resolved[0]
    if arguments.duration_scale is not None:
        scenario = scenario.scaled(arguments.duration_scale)
    return scenario


def _cmd_show(arguments: argparse.Namespace) -> int:
    scenario = _resolve_one(arguments)
    print(json.dumps(scenario.to_dict(), indent=2, sort_keys=True))
    tenants = apportion_tenants(scenario)
    arrivals = timelines(scenario)
    print()
    print(f"composition plan ({scenario.describe()}):")
    for tenant, profile in enumerate(tenants):
        count = len(arrivals[tenant])
        print(f"  tenant {tenant}: {profile:22s} {count:6d} arrival(s)")
    print(f"  total arrivals: {sum(len(t) for t in arrivals)}")
    return 0


def _cmd_generate(arguments: argparse.Namespace) -> int:
    from repro.corpus.store import canonical_digest

    scenario = _resolve_one(arguments)
    spec = compose_spec(scenario)
    out = arguments.out or f"{scenario.name}.trace"
    result = record_spec(spec, out, compress=not arguments.no_compress)
    digest, raw_bytes, footer = canonical_digest(out)
    events = result.events
    print(
        f"composed {scenario.name} -> {out}"
        f"{'' if arguments.no_compress else ' (CALTRC02 compressed)'}\n"
        f"  {scenario.describe()}\n"
        f"  records {footer['records']}  instructions {result.instructions}  "
        f"alloc events {result.alloc_events}  "
        f"cform instructions {result.cform_instructions}\n"
        f"  l1 {events.l1_accesses} accesses / {events.l1_misses} misses  "
        f"l2 {events.l2_misses} misses  l3 {events.l3_misses} misses\n"
        f"  canonical digest {digest}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Open-loop traffic engine: compose multi-tenant "
        "load scenarios into recorded traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show the committed scenario documents")
    commands.add_parser("sets", help="show the named benchmark sets")

    show = commands.add_parser(
        "show", help="print one scenario document and its composition plan"
    )
    generate = commands.add_parser(
        "generate", help="compose a scenario and record the merged trace"
    )
    for sub in (show, generate):
        sub.add_argument(
            "scenario", nargs="?", default=None,
            help="scenario name or counted alias like '4x server-churn'",
        )
        sub.add_argument(
            "--spec", default=None,
            help="path to a JSON scenario document (overrides the name)",
        )
        sub.add_argument(
            "--duration-scale", type=float, default=None, metavar="F",
            help="scale duration_s/warmup_s by F (quick modes)",
        )
    generate.add_argument(
        "--out", default=None,
        help="output trace path (default: <name>.trace)",
    )
    generate.add_argument(
        "--no-compress", action="store_true",
        help="write the uncompressed CALTRC01 container",
    )

    arguments = parser.parse_args(argv)
    if arguments.command in ("show", "generate"):
        if bool(arguments.scenario) == bool(arguments.spec):
            parser.error(
                f"{arguments.command} needs a scenario name or --spec FILE "
                "(not both)"
            )
    handler = {
        "list": _cmd_list,
        "sets": _cmd_sets,
        "show": _cmd_show,
        "generate": _cmd_generate,
    }[arguments.command]
    try:
        return handler(arguments)
    except (TraceFormatError, TraceIntegrityError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as error:
        if isinstance(error, KeyError) and error.args:
            parser.error(str(error.args[0]))
        else:
            parser.error(str(error))
        return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
