"""Open-loop composer: N independent tenant streams, one trace.

The composer turns a :class:`~repro.loadgen.schema.LoadScenario` into a
single interleaved event stream with the exact contract of
:func:`repro.workloads.generator.run_trace`, so composed traffic records
through the standard recorder and flows into the corpus store, the
replayers and the multi-core engine unchanged:

1. tenants are apportioned over the mix weights (largest remainder, so
   a ``0.55/0.25/0.20`` mix over 6 tenants is 3+2+1 deterministically);
2. each tenant's arrival timeline is drawn from its private seeded
   stream (:mod:`repro.loadgen.arrivals`);
3. each tenant runs its workload profile's own driver (the generator,
   or the attack campaign for adversarial mixes) through a capture sink
   that slices the event stream into per-burst operation chunks — one
   chunk per arrival, the first chunk carrying the tenant's cold-start
   working-set fault-in;
4. tenant addresses are offset into disjoint namespaces
   (``tenant * TENANT_ADDRESS_STRIDE``) and the chunks are merged by
   arrival time into one open-loop stream, played through a fresh
   tag-only ladder with the replayer's exact accounting semantics — so
   the recorded footer verifies bit-identically on replay.

The capture sinks never consume a tenant generator's RNG and the merge
is a pure function of the document, so two compositions of the same
scenario are byte-identical — the determinism the corpus store's
content addressing relies on.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import replace

from repro.cpu.pipeline import MemoryEventCounts
from repro.loadgen.arrivals import timelines
from repro.loadgen.schema import LoadScenario
from repro.memory.cache import TagOnlyCache
from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.telemetry.runtime import active as telemetry_active
from repro.telemetry.runtime import span as telemetry_span
from repro.traces import recorder
from repro.traces.registry import TraceScenarioSpec, corpus_spec
from repro.workloads.generator import (
    ALLOC_HOOK_INSTRUCTIONS,
    CFORM_SETUP_INSTRUCTIONS,
    EV_ALLOC,
    EV_CFORM,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
    RunResult,
    Scenario,
)

#: Per-tenant address-space stride.  Above every address the tenant
#: engines synthesise (heap cursors and the 0x7FFF_0000 stack base stay
#: far below 2**33) and a power of two, so a tenant's own set/tag cache
#: behaviour is unchanged by the offset while tenants can never
#: constructively share lines.  Far below the multi-core replayer's
#: per-core 2**44 stride, so composed traces nest cleanly inside
#: per-core namespaces.
TENANT_ADDRESS_STRIDE = 1 << 33

#: Safety margin (in bursts) when sizing a tenant's instruction budget:
#: the generator loop accumulates float burst costs, so the budget for
#: exactly K bursts is padded by two bursts and the capture truncated.
_BURST_MARGIN = 2


def apportion_tenants(load: LoadScenario) -> tuple[str, ...]:
    """Workload profile per tenant, largest-remainder apportionment.

    Deterministic: quotas are ``weight / total * tenants``; floor seats
    first, remaining seats by largest fractional part with ties broken
    in mix order.  Tenants are numbered through the mix in order, so
    tenant 0 always carries the first mix entry's profile (when that
    entry wins at least one seat).
    """
    total = load.total_weight()
    quotas = [entry.weight / total * load.tenants for entry in load.mix]
    counts = [int(quota) for quota in quotas]
    leftover = load.tenants - sum(counts)
    by_remainder = sorted(
        range(len(quotas)),
        key=lambda index: (-(quotas[index] - counts[index]), index),
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    names: list[str] = []
    for entry, count in zip(load.mix, counts):
        names.extend([entry.profile] * count)
    return tuple(names)


def _tenant_seed(load: LoadScenario, tenant: int, profile_name: str) -> int:
    """Stable per-tenant workload seed (independent of the arrival RNG)."""
    payload = f"loadgen-tenant:{load.seed}:{tenant}:{profile_name}"
    return int.from_bytes(
        hashlib.sha256(payload.encode("utf-8")).digest()[:4], "little"
    )


def _burst_instructions(spec: TraceScenarioSpec) -> float:
    return spec.profile.burst_length / spec.profile.mem_ratio


def tenant_spec(
    load: LoadScenario, tenant: int, profile_name: str, ops: int
) -> TraceScenarioSpec:
    """The single-profile spec backing one tenant's captured stream."""
    base = corpus_spec(profile_name)
    budget = int((ops + _BURST_MARGIN) * _burst_instructions(base)) + 1
    return replace(
        base,
        name=f"{load.name}/tenant{tenant}-{profile_name}",
        seed=_tenant_seed(load, tenant, profile_name),
        instructions=budget,
        warmup_fraction=0.0,  # the composition has its own warmup boundary
    )


class _CaptureSink:
    """Trace-engine sink slicing the event stream into per-burst chunks."""

    __slots__ = ("chunks", "_current")

    def __init__(self) -> None:
        self.chunks: list[list[tuple[int, int, int]]] = []
        self._current: list[tuple[int, int, int]] = []

    def append(self, kind: int, address: int, arg: int) -> None:
        self._current.append((kind, address, arg))

    def burst(self) -> None:
        self.chunks.append(self._current)
        self._current = []


def _tenant_chunks(
    spec: TraceScenarioSpec, config: HierarchyConfig, ops: int
) -> list[list[tuple[int, int, int]]]:
    """Capture ``ops`` per-burst operation chunks of one tenant stream."""
    sink = _CaptureSink()
    recorder._driver_for(spec)(
        spec.profile,
        spec.build_scenario(),
        instructions=spec.instructions,
        seed=spec.seed,
        config=config,
        warmup_fraction=spec.warmup_fraction,
        sink=sink,
        quarantine_delay=spec.quarantine_delay,
    )
    if len(sink.chunks) < ops:
        raise RuntimeError(
            f"tenant stream {spec.name!r} produced {len(sink.chunks)} "
            f"bursts for {ops} arrivals"
        )
    return sink.chunks[:ops]


def run_composed(
    load: LoadScenario,
    config: HierarchyConfig = WESTMERE,
    sink=None,
    scenario: Scenario | None = None,
) -> RunResult:
    """Compose and play one load scenario; ``run_trace``-shaped result.

    Every tenant chunk is played in merged arrival order through a
    fresh tag-only ladder using the replayer's exact semantics (CFORM
    expansion, warmup counter reset at the emitted ``EV_WARM``), so the
    returned statistics — and hence the recorded footer — verify
    bit-identically on replay.  ``sink`` receives the merged stream
    (one ``burst()`` per chunk, so epoch markers land between arrivals
    and shard splits never tear an allocation cluster); the accounting
    is identical with or without it.
    """
    with telemetry_span(
        "loadgen/compose",
        scenario=load.name,
        tenants=load.tenants,
        duration_s=load.duration_s,
    ) as tspan:
        result = _run_composed(load, config, sink, scenario)
        tspan.set("alloc_events", result.alloc_events)
        tspan.set("instructions", result.instructions)
    return result


def _run_composed(
    load: LoadScenario,
    config: HierarchyConfig,
    sink,
    scenario: Scenario | None,
) -> RunResult:
    tenant_profiles = apportion_tenants(load)
    tenant_times = timelines(load)
    merged_streams = []
    burst_cost: dict[int, float] = {}
    for tenant, profile_name in enumerate(tenant_profiles):
        times = tenant_times[tenant]
        if not times:
            continue
        spec = tenant_spec(load, tenant, profile_name, len(times))
        chunks = _tenant_chunks(spec, config, len(times))
        burst_cost[tenant] = _burst_instructions(spec)
        offset = tenant * TENANT_ADDRESS_STRIDE
        merged_streams.append(
            [
                (time_s, tenant, index, offset, chunk)
                for index, (time_s, chunk) in enumerate(zip(times, chunks))
            ]
        )
    if not merged_streams:
        raise ValueError(
            f"load scenario {load.name!r} produced no arrivals "
            f"(rate {load.arrival.lambda_per_s:g}/s over "
            f"{load.duration_s:g}s)"
        )
    tel = telemetry_active()
    if tel is not None:
        tel.inc(
            "loadgen_arrivals_total",
            sum(len(stream) for stream in merged_streams),
            scenario=load.name,
        )

    l1 = TagOnlyCache(config.l1_geometry)
    l2 = TagOnlyCache(config.l2_geometry)
    l3 = TagOnlyCache(config.l3_geometry)
    l1_access, l2_access, l3_access = l1.access, l2.access, l3.access
    record = sink.append if sink is not None else None

    app_instructions = 0.0
    overhead_instructions = 0.0
    cform_lines = 0
    cform_records = 0
    alloc_events = 0
    warm_pending = load.warmup_s > 0.0

    def discard_warmup() -> None:
        nonlocal app_instructions, overhead_instructions, cform_lines
        nonlocal cform_records, alloc_events
        l1.reset_counters()
        l2.reset_counters()
        l3.reset_counters()
        app_instructions = 0.0
        overhead_instructions = 0.0
        cform_lines = 0
        cform_records = 0
        alloc_events = 0
        if record is not None:
            record(EV_WARM, 0, 0)

    # Tenants' streams are time-sorted; (time, tenant, index) is a total
    # order, so the merge is deterministic even on equal timestamps.
    for time_s, tenant, index, offset, chunk in heapq.merge(
        *merged_streams, key=lambda item: (item[0], item[1], item[2])
    ):
        if warm_pending and time_s >= load.warmup_s:
            warm_pending = False
            discard_warmup()
        app_instructions += burst_cost[tenant]
        for kind, address, arg in chunk:
            address += offset
            if record is not None:
                record(kind, address, arg)
            if kind == EV_LOAD or kind == EV_STORE:
                if not l1_access(address):
                    if not l2_access(address):
                        l3_access(address)
            elif kind == EV_CFORM:
                cform_records += 1
                cform_lines += arg
                overhead_instructions += arg * (1 + CFORM_SETUP_INSTRUCTIONS)
                for line_index in range(arg):
                    line_address = address + line_index * 64
                    if not l1_access(line_address):
                        if not l2_access(line_address):
                            l3_access(line_address)
            elif kind == EV_ALLOC:
                alloc_events += 1
            # EV_FREE carries no cache touches.
        if sink is not None:
            sink.burst()
    if warm_pending:
        # Every arrival fell inside the warmup prefix: the boundary
        # still lands (trailing), so replay agrees the run measured
        # nothing past warmup.
        discard_warmup()

    # One allocation hook per CFORM pair (free side + alloc side), as in
    # the generator's accounting; attack tenants emit no CFORM records.
    overhead_instructions += (cform_records // 2) * ALLOC_HOOK_INSTRUCTIONS

    return RunResult(
        benchmark=f"loadgen/{load.name}",
        scenario=scenario if scenario is not None else Scenario.baseline(),
        instructions=int(app_instructions + overhead_instructions),
        events=MemoryEventCounts(
            l1_accesses=l1.accesses,
            l1_misses=l1.misses,
            l2_misses=l2.misses,
            l3_misses=l3.misses,
        ),
        cform_instructions=cform_lines,
        alloc_events=alloc_events,
    )


def compose_spec(load: LoadScenario) -> TraceScenarioSpec:
    """Wrap a load scenario as a recordable ``loadgen``-driver spec.

    The record stream is a pure function of ``driver_config`` (the
    scenario document) and the recording geometry; the spec-level
    ``instructions`` / ``warmup_fraction`` knobs are informational for
    this driver (the estimate below sizes reports, the composition's
    own ``warmup_s`` marks the boundary).  The carried profile is the
    dominant (highest-weight) mix entry's, so cycle models price
    composed traces with the majority tenant's CPI/overlap.
    """
    dominant = max(load.mix, key=lambda entry: entry.weight)
    base = corpus_spec(dominant.profile)
    total = load.total_weight()
    mean_burst = sum(
        entry.weight * _burst_instructions(corpus_spec(entry.profile))
        for entry in load.mix
    ) / total
    estimate = max(
        1, int(load.arrival.lambda_per_s * load.duration_s * mean_burst)
    )
    return TraceScenarioSpec(
        name=f"loadgen/{load.name}",
        description=f"open-loop composition — {load.describe()}",
        profile=base.profile,
        policy=None,
        with_cform=False,
        seed=load.seed,
        instructions=estimate,
        warmup_fraction=0.0,
        driver="loadgen",
        driver_config=load.to_json(),
    )


def driver_for_spec(spec: TraceScenarioSpec):
    """The recorder-facing driver closure for one ``loadgen`` spec.

    Returns a callable with :func:`run_trace`'s exact contract; the
    composition is pinned by the spec's ``driver_config`` document, so
    the call-site ``instructions`` / ``warmup_fraction`` / ``seed``
    knobs are accepted and ignored (they describe single-stream runs).
    """
    load = LoadScenario.from_json(spec.driver_config)

    def run_loadgen(
        profile,
        scenario,
        instructions: int = 0,
        seed: int = 0,
        config: HierarchyConfig = WESTMERE,
        warmup_fraction: float = 0.0,
        sink=None,
        quarantine_delay: int = 16,
    ) -> RunResult:
        return run_composed(load, config=config, sink=sink, scenario=scenario)

    return run_loadgen
