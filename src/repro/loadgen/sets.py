"""Named benchmark sets over the committed scenario files.

Scenario documents live as JSON files under ``scenarios/`` at the
repository root (``$REPRO_SCENARIO_DIR`` overrides).  A *benchmark set*
names a group of them — ``synthetic`` (single-profile arrival-process
studies), ``realistic`` (mixed-profile server compositions),
``adversarial`` (quarantine floods and attack tenants) and ``all`` —
and a selection token resolves SPEC-suite style:

* a set name (``synthetic``) → its members;
* a scenario name (``uniform-churn``) → that scenario;
* a counted alias (``4x server-churn`` / ``4*uniform-churn``) →
  the named load scenario re-tenanted to N, or — when the base names a
  trace-corpus profile instead — an ad-hoc N-tenant scenario over that
  single profile.

Duplicates are removed and the resolved list is sorted by name, so a
selection is a *set*, not a sequence.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.loadgen.schema import ArrivalSpec, LoadScenario, MixEntry

#: Environment override for the scenario directory.
ENV_SCENARIO_DIR = "REPRO_SCENARIO_DIR"

#: Named benchmark sets: set name -> member scenario names.  Members
#: must exist as committed files under ``scenarios/``; ``all`` is the
#: union, derived below.
BENCHMARK_SETS: dict[str, tuple[str, ...]] = {
    "synthetic": ("poisson-baseline", "uniform-churn", "burst-storm"),
    "realistic": ("multi-tenant-server", "cache-antagonists"),
    "adversarial": ("quarantine-flood", "tenant-attack"),
}
BENCHMARK_SETS["all"] = tuple(
    sorted({name for members in BENCHMARK_SETS.values() for name in members})
)

#: Aggregate arrival rate per tenant for ad-hoc ``Nx <corpus-profile>``
#: aliases (the composed scenario's lambda is ``N *`` this).
ADHOC_LAMBDA_PER_TENANT = 200.0


def scenario_dir() -> Path:
    """The committed scenario directory (or the env override)."""
    override = os.environ.get(ENV_SCENARIO_DIR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "scenarios"


def load_scenarios(directory: Path | None = None) -> dict[str, LoadScenario]:
    """name → scenario for every ``*.json`` document in the directory."""
    directory = scenario_dir() if directory is None else Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"scenario directory {directory} does not exist "
            f"(set ${ENV_SCENARIO_DIR} or run from the repository root)"
        )
    scenarios: dict[str, LoadScenario] = {}
    for path in sorted(directory.glob("*.json")):
        scenario = LoadScenario.from_dict(_read_json(path))
        if scenario.name != path.stem:
            raise ValueError(
                f"{path} declares name {scenario.name!r}; scenario files "
                "must be named <name>.json"
            )
        scenarios[scenario.name] = scenario
    return scenarios


def _read_json(path: Path) -> dict:
    import json

    with open(path) as handle:
        return json.load(handle)


def _adhoc_scenario(profile_name: str, tenants: int) -> LoadScenario:
    """An ``Nx <corpus-profile>`` alias: N tenants of one profile."""
    from repro.traces.registry import corpus_spec

    base = corpus_spec(profile_name)  # raises KeyError naming the corpus
    return LoadScenario(
        name=f"{tenants}x-{profile_name}",
        description=f"ad-hoc composition: {tenants} x {profile_name}",
        arrival=ArrivalSpec(
            kind="poisson",
            lambda_per_s=ADHOC_LAMBDA_PER_TENANT * tenants,
        ),
        mix=(MixEntry(profile=profile_name, weight=1.0),),
        tenants=tenants,
        duration_s=1.0,
        warmup_s=0.2,
        seed=base.seed,
    )


def resolve(
    tokens, scenarios: dict[str, LoadScenario] | None = None
) -> list[LoadScenario]:
    """Resolve selection tokens to a deduplicated, name-sorted list."""
    from repro.traces.registry import _COUNT_PREFIX

    if scenarios is None:
        scenarios = load_scenarios()
    chosen: dict[str, LoadScenario] = {}
    for token in tokens:
        token = token.strip()
        match = _COUNT_PREFIX.match(token)
        count, base = (
            (int(match.group(1)), match.group(2).strip())
            if match
            else (None, token)
        )
        if count is not None and count <= 0:
            raise ValueError(f"tenant count in {token!r} must be positive")
        if count is None and base in BENCHMARK_SETS:
            for member in BENCHMARK_SETS[base]:
                chosen[member] = _member(scenarios, base, member)
        elif base in scenarios:
            scenario = scenarios[base]
            if count is not None:
                from dataclasses import replace

                scenario = replace(
                    scenario,
                    name=f"{count}x-{base}",
                    tenants=count,
                )
            chosen[scenario.name] = scenario
        elif count is not None:
            scenario = _adhoc_scenario(base, count)  # corpus-profile alias
            chosen[scenario.name] = scenario
        else:
            known_sets = ", ".join(sorted(BENCHMARK_SETS))
            known_scenarios = ", ".join(sorted(scenarios))
            raise KeyError(
                f"unknown benchmark set or scenario {token!r}; sets: "
                f"{known_sets}; scenarios: {known_scenarios}; or a counted "
                "alias like '4x server-churn'"
            )
    return [chosen[name] for name in sorted(chosen)]


def _member(
    scenarios: dict[str, LoadScenario], set_name: str, member: str
) -> LoadScenario:
    try:
        return scenarios[member]
    except KeyError:
        raise KeyError(
            f"benchmark set {set_name!r} names scenario {member!r}, which "
            f"has no committed file under {scenario_dir()}"
        ) from None
