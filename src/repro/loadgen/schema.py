"""The load-scenario document: open-loop traffic as data.

A :class:`LoadScenario` is a versioned, JSON-serialisable description of
multi-tenant traffic: an arrival process (``poisson`` / ``uniform`` /
``bursty`` with an aggregate ``lambda_per_s`` rate and a jitter knob), a
weighted mix of trace-corpus workload profiles, a tenant count, a
duration with a warmup prefix, and a seed.  Documents round-trip through
JSON *exactly* — ``from_dict(to_dict(s)) == s`` and
``to_dict(from_dict(d)) == d`` for every valid document — and validation
is strict: unknown keys, bad ranges and unknown profile names all raise
at construction, never at generation time.

Committed scenario files live under ``scenarios/`` at the repository
root (see :mod:`repro.loadgen.sets`); ``docs/SCENARIOS.md`` documents
the schema with a commented example.

A scenario's mix may name several workload profiles per trace: the
composer apportions tenants over the mix weights, so one composed trace
carries several profiles side by side — the registry's one-profile-per-
spec shape is unchanged underneath (each tenant stream is still a plain
single-profile :class:`~repro.traces.registry.TraceScenarioSpec`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

#: Bump when the scenario document gains/renames required keys.
SCENARIO_VERSION = 1

#: Arrival processes the generators implement (see
#: :mod:`repro.loadgen.arrivals`).
ARRIVAL_KINDS = ("poisson", "uniform", "bursty")


def _require_keys(document: dict, required: set[str], known: set[str], what: str) -> None:
    unknown = sorted(set(document) - known)
    if unknown:
        raise ValueError(
            f"unknown {what} key(s) {unknown}; known: {sorted(known)}"
        )
    missing = sorted(required - set(document))
    if missing:
        raise ValueError(f"{what} document missing required key(s) {missing}")


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process: how tenant requests land on the timeline.

    ``lambda_per_s`` is the *aggregate* arrival rate across all tenants
    (each tenant draws from its own stream at ``lambda_per_s /
    tenants``).  ``jitter`` is a multiplicative spread in ``[0, 1]``
    applied to inter-arrival gaps (``gap * (1 + jitter * u)`` with ``u``
    uniform in ``[-1, 1]``).  ``burst_size`` shapes the ``bursty``
    process only (arrivals per burst) but is always carried, so the
    document round-trips exactly.
    """

    kind: str
    lambda_per_s: float
    jitter: float = 0.0
    burst_size: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; "
                f"expected one of {', '.join(ARRIVAL_KINDS)}"
            )
        if not self.lambda_per_s > 0:
            raise ValueError("lambda_per_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "lambda_per_s": self.lambda_per_s,
            "jitter": self.jitter,
            "burst_size": self.burst_size,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ArrivalSpec":
        _require_keys(
            document,
            required={"kind", "lambda_per_s"},
            known={"kind", "lambda_per_s", "jitter", "burst_size"},
            what="arrival",
        )
        return cls(**document)


@dataclass(frozen=True)
class MixEntry:
    """One weighted slice of the tenant population.

    ``profile`` names a trace-corpus scenario
    (:data:`repro.traces.registry.CORPUS`); ``weight`` is its relative
    share of the tenants (weights need not sum to anything particular).
    """

    profile: str
    weight: float

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise ValueError("mix weight must be positive")
        # Validate the profile name eagerly against the trace corpus.
        # Imported lazily: the registry lazily imports this module to
        # validate loadgen-driver specs.
        from repro.traces.registry import corpus_spec

        corpus_spec(self.profile)  # raises KeyError naming the corpus

    def to_dict(self) -> dict:
        return {"profile": self.profile, "weight": self.weight}

    @classmethod
    def from_dict(cls, document: dict) -> "MixEntry":
        _require_keys(
            document,
            required={"profile", "weight"},
            known={"profile", "weight"},
            what="mix entry",
        )
        return cls(**document)


@dataclass(frozen=True)
class LoadScenario:
    """One open-loop traffic scenario (see module docstring)."""

    name: str
    description: str
    arrival: ArrivalSpec
    mix: tuple[MixEntry, ...]
    tenants: int
    duration_s: float
    warmup_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("load scenario needs a name")
        if not isinstance(self.mix, tuple):
            object.__setattr__(self, "mix", tuple(self.mix))
        if not self.mix:
            raise ValueError("load scenario needs at least one mix entry")
        profiles = [entry.profile for entry in self.mix]
        if len(set(profiles)) != len(profiles):
            raise ValueError(f"duplicate mix profile(s) in {profiles}")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if not self.duration_s > 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.warmup_s < self.duration_s:
            raise ValueError("warmup_s must be within [0, duration_s)")

    # -- derivation ----------------------------------------------------------

    def scaled(self, factor: float) -> "LoadScenario":
        """The same traffic shape at a different duration (quick modes).

        Duration and warmup scale together, so the warm fraction of the
        timeline is preserved.
        """
        if not factor > 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            duration_s=self.duration_s * factor,
            warmup_s=self.warmup_s * factor,
        )

    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.mix)

    def describe(self) -> str:
        mixes = " + ".join(
            f"{entry.profile}:{entry.weight:g}" for entry in self.mix
        )
        return (
            f"{self.tenants} tenant(s), {self.arrival.kind} arrivals at "
            f"{self.arrival.lambda_per_s:g}/s over {self.duration_s:g}s "
            f"({mixes})"
        )

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "scenario_version": SCENARIO_VERSION,
            "name": self.name,
            "description": self.description,
            "arrival": self.arrival.to_dict(),
            "mix": [entry.to_dict() for entry in self.mix],
            "tenants": self.tenants,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "LoadScenario":
        document = dict(document)
        version = document.pop("scenario_version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ValueError(
                f"scenario version {version} not supported "
                f"(expected {SCENARIO_VERSION})"
            )
        _require_keys(
            document,
            required={"name", "description", "arrival", "mix", "tenants",
                      "duration_s"},
            known={"name", "description", "arrival", "mix", "tenants",
                   "duration_s", "warmup_s", "seed"},
            what="load scenario",
        )
        arrival = ArrivalSpec.from_dict(document.pop("arrival"))
        mix = tuple(
            MixEntry.from_dict(entry) for entry in document.pop("mix")
        )
        return cls(arrival=arrival, mix=mix, **document)

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys — the driver-config form)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LoadScenario":
        return cls.from_dict(json.loads(text))


def load_scenario(path: str) -> LoadScenario:
    """Load a committed/user-authored JSON scenario document."""
    with open(path) as handle:
        return LoadScenario.from_dict(json.load(handle))
