"""Seeded deterministic arrival-process generators.

Each tenant draws its own timeline from a private
:class:`random.Random` stream keyed by ``(scenario seed, tenant
index)``, so adding a tenant never perturbs another tenant's arrivals
and the same document produces the same timelines on every platform —
``random.Random`` is the cross-version-stable Mersenne Twister, the
exponential gap is hand-rolled from ``rng.random()`` (no dependency on
``random.expovariate`` internals), and every timestamp is quantised to
nanoseconds so last-ulp ``libm`` differences cannot reorder the merged
stream between machines.

The aggregate ``lambda_per_s`` is split evenly across tenants: an
open-loop server absorbing 600 requests/s from 3 tenants sees each
tenant arriving at 200/s, regardless of how many tenants the mix
apportions to each workload profile.
"""

from __future__ import annotations

import math
import random

from repro.loadgen.schema import ArrivalSpec, LoadScenario

#: Intra-burst spacing of the ``bursty`` process, as a fraction of the
#: mean inter-arrival gap: back-to-back requests of one burst land
#: almost together on the merged timeline without ever colliding.
BURST_SPACING_FRACTION = 0.05


def _quantize(time_s: float) -> float:
    """Quantise to nanoseconds for cross-platform merge-order stability."""
    return round(time_s, 9)


def _jittered(gap: float, jitter: float, rng: random.Random) -> float:
    if jitter == 0.0:
        return gap
    return gap * (1.0 + jitter * (2.0 * rng.random() - 1.0))


def _exponential_gap(rate: float, rng: random.Random) -> float:
    # 1 - random() is in (0, 1], so the log argument never hits zero.
    return -math.log(1.0 - rng.random()) / rate


def tenant_timeline(load: LoadScenario, tenant: int) -> tuple[float, ...]:
    """One tenant's arrival times in ``[0, duration_s)``, sorted.

    Deterministic in ``(load.seed, tenant, arrival spec, duration)``
    alone — identical across platforms and repeated calls.
    """
    if not 0 <= tenant < load.tenants:
        raise ValueError(
            f"tenant {tenant} out of range for {load.tenants} tenant(s)"
        )
    arrival = load.arrival
    rate = arrival.lambda_per_s / load.tenants
    rng = random.Random(f"loadgen-arrivals:{load.seed}:{tenant}:{arrival.kind}")
    duration = load.duration_s
    times: list[float] = []
    if arrival.kind == "poisson":
        time_s = _jittered(_exponential_gap(rate, rng), arrival.jitter, rng)
        while time_s < duration:
            times.append(_quantize(time_s))
            time_s += _jittered(
                _exponential_gap(rate, rng), arrival.jitter, rng
            )
    elif arrival.kind == "uniform":
        gap = 1.0 / rate
        time_s = _jittered(gap, arrival.jitter, rng)
        while time_s < duration:
            times.append(_quantize(time_s))
            time_s += _jittered(gap, arrival.jitter, rng)
    else:  # bursty: poisson burst starts, burst_size arrivals per burst
        burst_rate = rate / arrival.burst_size
        spacing = (1.0 / rate) * BURST_SPACING_FRACTION
        start = _jittered(
            _exponential_gap(burst_rate, rng), arrival.jitter, rng
        )
        while start < duration:
            for index in range(arrival.burst_size):
                time_s = start + index * _jittered(
                    spacing, arrival.jitter, rng
                )
                if time_s < duration:
                    times.append(_quantize(time_s))
            start += _jittered(
                _exponential_gap(burst_rate, rng), arrival.jitter, rng
            )
    times.sort()  # quantisation/jitter can only reorder within a burst
    return tuple(times)


def timelines(load: LoadScenario) -> tuple[tuple[float, ...], ...]:
    """Every tenant's timeline, indexed by tenant."""
    return tuple(
        tenant_timeline(load, tenant) for tenant in range(load.tenants)
    )
