"""Open-loop traffic engine: scenarios as data, multi-tenant load.

The package turns workload generation into a data-driven traffic model:
a :class:`~repro.loadgen.schema.LoadScenario` document (arrival process,
weighted profile mix, tenant count, duration/warmup, seed) describes a
server absorbing many independent tenants' heap traffic; the composer
(:mod:`repro.loadgen.compose`) instantiates one generator stream per
tenant in a disjoint address namespace and merges them by arrival time
into one CALTRC02 trace through the standard recorder, so composed
traffic flows into the corpus store, the replayers and the multi-core
engine unchanged.  Named benchmark sets (:mod:`repro.loadgen.sets`) and
the ``python -m repro loadgen`` CLI surface the committed scenario files
under ``scenarios/``.
"""

from repro.loadgen.schema import (
    ArrivalSpec,
    LoadScenario,
    MixEntry,
    load_scenario,
)

__all__ = ["ArrivalSpec", "LoadScenario", "MixEntry", "load_scenario"]
