"""CPU layer: ISA, load/store queue, functional core and timing model.

* :mod:`repro.cpu.isa` — LOAD/STORE/CFORM/ALU instruction forms.
* :mod:`repro.cpu.lsq` — the Section 5.3 LSQ forwarding rules.
* :mod:`repro.cpu.core` — functional execution + whitelist mask registers.
* :mod:`repro.cpu.pipeline` — first-order cycle estimation.
"""

from repro.cpu.core import Cpu, CpuCounters, ExceptionMaskRegisters
from repro.cpu.isa import (
    Instruction,
    Opcode,
    Program,
    alu,
    cform,
    load,
    nop,
    store,
)
from repro.cpu.lsq import LoadResult, LoadStoreQueue
from repro.cpu.pipeline import MemoryEventCounts, PipelineModel

__all__ = [
    "Cpu",
    "CpuCounters",
    "ExceptionMaskRegisters",
    "Instruction",
    "Opcode",
    "Program",
    "load",
    "store",
    "cform",
    "alu",
    "nop",
    "LoadStoreQueue",
    "LoadResult",
    "MemoryEventCounts",
    "PipelineModel",
]
