"""Speculative-execution side-channel model (Section 7.2).

Califorms takes two measures against Spectre-style disclosure of security
byte *placement*:

1. a speculative load that touches a security byte returns the
   pre-determined value **zero** instead of faulting architecturally
   (the exception waits for commit, which never comes for a squashed
   path), so the attacker cannot observe a fault-vs-value difference;
2. deallocated memory is **zeroed in software**, so "padding reads as
   zero" does not distinguish a security byte from stale data that
   happened to be zero.

This model runs a speculative window against the hierarchy and lets the
experiments play the exact attack the paper describes: the attacker knows
the previous object at an address held non-zero data, speculatively reads
a suspected padding location, and tries to infer "security byte" from
reading zero.  With measure 2 in place the observation carries no signal;
the model exposes a ``zero_on_free`` switch so tests can show the leak
reappearing when the countermeasure is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import ExceptionRecord
from repro.memory.hierarchy import MemoryHierarchy


@dataclass
class SpeculativeLoad:
    """One load executed under speculation."""

    address: int
    size: int
    value: bytes
    would_fault: bool  # the exception that *would* fire at commit


@dataclass
class SpeculativeWindow:
    """A bounded run of speculatively-executed loads.

    Nothing in the window is architecturally visible until ``commit``;
    ``squash`` discards the window, including any pending exceptions —
    exactly the paper's "privileged exception once the instruction
    becomes non-speculative".
    """

    hierarchy: MemoryHierarchy
    depth: int = 32
    _loads: list[SpeculativeLoad] = field(default_factory=list)

    def load(self, address: int, size: int) -> bytes:
        """Speculatively load; security bytes read as zero, no fault."""
        if len(self._loads) >= self.depth:
            raise RuntimeError("speculative window exhausted")
        value, records = self.hierarchy.load(address, size)
        entry = SpeculativeLoad(
            address=address,
            size=size,
            value=value,
            would_fault=bool(records),
        )
        self._loads.append(entry)
        return value

    def squash(self) -> int:
        """Mis-speculation: discard everything; returns discarded count.

        No exception escapes — the side channel the paper closes.
        """
        discarded = len(self._loads)
        self._loads.clear()
        return discarded

    def commit(self) -> list[ExceptionRecord]:
        """Retire the window; pending violations become precise faults."""
        records: list[ExceptionRecord] = []
        for entry in self._loads:
            _, access_records = self.hierarchy.load(entry.address, entry.size)
            records.extend(access_records)
        self._loads.clear()
        return records


@dataclass
class PaddingProbeResult:
    """Outcome of the Section 7.2 padding-inference attack."""

    probes: int
    zero_reads: int
    faults_observed: int
    inferred_security_bytes: int

    @property
    def information_leaked(self) -> bool:
        """Whether the attacker learned anything at all."""
        return self.faults_observed > 0 or self.inferred_security_bytes > 0


def padding_probe_attack(
    hierarchy: MemoryHierarchy,
    suspected_offsets: list[int],
    base_address: int,
    previous_contents_nonzero: bool,
    zero_on_free: bool = True,
) -> PaddingProbeResult:
    """Run the paper's speculative padding-disclosure attack.

    The attacker speculatively reads each suspected padding byte of an
    object allocated over memory whose *previous* contents they know were
    non-zero.  Reading zero where old data should be non-zero implies a
    security byte — unless frees zero memory (``zero_on_free``), in which
    case zero is what stale data reads too and the inference fails.
    """
    window = SpeculativeWindow(hierarchy, depth=len(suspected_offsets) + 1)
    zero_reads = 0
    inferred = 0
    for offset in suspected_offsets:
        value = window.load(base_address + offset, 1)
        if value == b"\x00":
            zero_reads += 1
            stale_would_be_zero = zero_on_free or not previous_contents_nonzero
            if not stale_would_be_zero:
                # Old data was non-zero and frees do not zero: a zero can
                # only mean the hardware substituted it -> security byte.
                inferred += 1
    faults = 0  # squashed speculation never faults architecturally
    window.squash()
    return PaddingProbeResult(
        probes=len(suspected_offsets),
        zero_reads=zero_reads,
        faults_observed=faults,
        inferred_security_bytes=inferred,
    )
