"""Load/store queue with the Califorms forwarding rules (Section 5.3).

``CFORM`` occupies an LSQ entry like a store, but with two special rules:

1. **No forwarding.**  A younger load whose address matches an in-flight
   ``CFORM`` must *not* receive the CFORM's "value"; it returns zero (the
   same pre-determined value a security-byte load returns) so that the LSQ
   cannot become a side channel revealing security-byte placement.
2. **Exception marking.**  Both loads and stores younger than an in-flight
   ``CFORM`` whose addresses match are marked for a Califorms exception,
   delivered when the instruction commits (precise, non-speculative).

Plain store→load forwarding works as usual, last-writer-wins per byte.
This model is functional (program order, not cycle-accurate): it exists to
pin down the architectural contract, which the tests exercise directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core import bitvector as bv
from repro.core.cform import CformRequest
from repro.core.exceptions import (
    AccessKind,
    ExceptionRecord,
)
from repro.memory.hierarchy import MemoryHierarchy


class EntryKind(enum.Enum):
    STORE = "store"
    CFORM = "cform"


@dataclass
class LsqEntry:
    """One in-flight store-like instruction."""

    sequence: int
    kind: EntryKind
    address: int  # byte address (stores) or line address (CFORM)
    data: bytes | None = None
    request: CformRequest | None = None

    def line_span(self) -> tuple[int, int]:
        """(first_line, last_line) the entry touches."""
        if self.kind is EntryKind.CFORM:
            base = self.address
            return base, base
        start = self.address & ~(bv.LINE_SIZE - 1)
        end = (self.address + len(self.data) - 1) & ~(bv.LINE_SIZE - 1)
        return start, end


@dataclass
class LoadResult:
    """Outcome of issuing a load against the LSQ."""

    value: bytes
    forwarded_bytes: int = 0
    cform_match: bool = False
    record: ExceptionRecord | None = None


@dataclass
class LoadStoreQueue:
    """In-flight store/CFORM buffer implementing the Section 5.3 rules."""

    hierarchy: MemoryHierarchy
    _entries: list[LsqEntry] = field(default_factory=list)
    _sequence: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- issue ---------------------------------------------------------------

    def issue_store(self, address: int, data: bytes) -> LsqEntry:
        entry = LsqEntry(self._next_sequence(), EntryKind.STORE, address, bytes(data))
        self._entries.append(entry)
        return entry

    def issue_cform(self, request: CformRequest) -> LsqEntry:
        entry = LsqEntry(
            self._next_sequence(),
            EntryKind.CFORM,
            request.line_address,
            request=request,
        )
        self._entries.append(entry)
        return entry

    def issue_load(self, address: int, size: int) -> LoadResult:
        """Resolve a load against older in-flight entries plus memory.

        Byte-granular last-writer-wins forwarding from plain stores; any
        overlap with an in-flight ``CFORM``'s masked bytes yields zero for
        those bytes, no forwarding, and an exception mark.
        """
        base_value, memory_records = self.hierarchy.load(address, size)
        value = bytearray(base_value)
        forwarded = 0
        cform_hit_indices: list[int] = []

        for entry in self._entries:  # oldest -> youngest, so later wins
            if entry.kind is EntryKind.STORE:
                forwarded += _overlay_store(value, address, entry)
            else:
                cform_hit_indices.extend(
                    _zero_cform_overlap(value, address, entry.request)
                )

        record: ExceptionRecord | None = None
        if cform_hit_indices:
            record = ExceptionRecord(
                kind=AccessKind.LOAD,
                address=address,
                byte_indices=tuple(sorted(set(cform_hit_indices))),
                detail="load matched in-flight CFORM in LSQ",
            )
        elif memory_records:
            record = memory_records[0]
        return LoadResult(
            value=bytes(value),
            forwarded_bytes=forwarded,
            cform_match=bool(cform_hit_indices),
            record=record,
        )

    def check_store_against_cforms(
        self, address: int, data: bytes
    ) -> ExceptionRecord | None:
        """Mark a younger store that matches an in-flight CFORM."""
        value = bytearray(len(data))
        hits: list[int] = []
        for entry in self._entries:
            if entry.kind is EntryKind.CFORM:
                hits.extend(_zero_cform_overlap(value, address, entry.request))
        if not hits:
            return None
        return ExceptionRecord(
            kind=AccessKind.STORE,
            address=address,
            byte_indices=tuple(sorted(set(hits))),
            detail="store matched in-flight CFORM in LSQ",
        )

    # -- commit ----------------------------------------------------------------

    def commit_oldest(self) -> list[ExceptionRecord]:
        """Retire the oldest entry into the memory hierarchy."""
        if not self._entries:
            raise IndexError("LSQ is empty")
        entry = self._entries.pop(0)
        if entry.kind is EntryKind.STORE:
            return self.hierarchy.store(entry.address, entry.data)
        self.hierarchy.cform(entry.request)
        return []

    def drain(self) -> list[ExceptionRecord]:
        """Commit everything, oldest first."""
        records: list[ExceptionRecord] = []
        while self._entries:
            records.extend(self.commit_oldest())
        return records

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence


def _overlay_store(value: bytearray, load_address: int, entry: LsqEntry) -> int:
    """Forward overlapping bytes of a plain store into ``value``."""
    overlap_start = max(load_address, entry.address)
    overlap_end = min(load_address + len(value), entry.address + len(entry.data))
    forwarded = 0
    for absolute in range(overlap_start, overlap_end):
        value[absolute - load_address] = entry.data[absolute - entry.address]
        forwarded += 1
    return forwarded


def _zero_cform_overlap(
    value: bytearray, load_address: int, request: CformRequest
) -> list[int]:
    """Zero bytes of ``value`` covered by the CFORM's mask; return hits.

    Matches the paper's rule: the match is on the cache-line address first,
    then confirmed against the CFORM mask value held in the LSQ entry.
    """
    hits: list[int] = []
    line_base = request.line_address
    for index in range(len(value)):
        absolute = load_address + index
        if absolute & ~(bv.LINE_SIZE - 1) != line_base:
            continue
        byte_in_line = absolute - line_base
        if bv.test_bit(request.mask, byte_in_line):
            value[index] = 0
            hits.append(byte_in_line)
    return hits
