"""SIMD/vector load handling (Appendix B).

Wide vector loads (e.g. 512-bit AVX) complicate precise security-byte
checking; the paper sketches three alternatives and leaves the choice to
future work.  All three are implemented here so they can be compared:

``PRECISE``
    Issue per-element precise accesses (gather-style).  Exact — the same
    semantics as scalar loads — but costs one check per element.

``FAULT_ON_ANY``
    Issue the wide load as-is and raise whenever *any* touched byte is a
    security byte.  Cheapest, but a vector that merely *spans* a security
    byte it never meant to use becomes a false positive.

``PROPAGATE``
    Load the data with a poison bit per byte carried in the vector
    register; an exception is raised only when a poisoned lane is
    *consumed* by a subsequent operation.  No false positives, at the
    cost of one poison bit per register byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core import bitvector as bv
from repro.core.exceptions import (
    AccessKind,
    ExceptionRecord,
    SecurityByteAccess,
)
from repro.memory.hierarchy import MemoryHierarchy


class VectorPolicy(enum.Enum):
    """The three Appendix B alternatives."""

    PRECISE = "precise"
    FAULT_ON_ANY = "fault-on-any"
    PROPAGATE = "propagate"


@dataclass(frozen=True)
class VectorRegister:
    """A vector register with optional per-byte poison bits."""

    data: bytes
    poison: int  # bit i set = byte i derived from a security byte

    @property
    def width(self) -> int:
        return len(self.data)

    def lane(self, index: int, lane_bytes: int = 8) -> bytes:
        """Extract one lane; raises if any of its bytes is poisoned.

        This is the consume-time check of the PROPAGATE policy.
        """
        start = index * lane_bytes
        if start + lane_bytes > self.width:
            raise IndexError(f"lane {index} outside {self.width}-byte register")
        lane_mask = ((1 << lane_bytes) - 1) << start
        if self.poison & lane_mask:
            raise SecurityByteAccess(
                ExceptionRecord(
                    kind=AccessKind.LOAD,
                    address=start,
                    byte_indices=tuple(
                        i - start for i in bv.iter_set_bits(self.poison & lane_mask)
                    ),
                    detail="poisoned vector lane consumed",
                )
            )
        return self.data[start : start + lane_bytes]


class VectorUnit:
    """Executes wide loads against the hierarchy under a chosen policy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        policy: VectorPolicy = VectorPolicy.PRECISE,
        register_bytes: int = 64,  # AVX-512
    ):
        if register_bytes <= 0 or register_bytes % 8 != 0:
            raise ValueError("vector registers must be a multiple of 8 bytes")
        self.hierarchy = hierarchy
        self.policy = policy
        self.register_bytes = register_bytes
        self.false_positive_candidates = 0

    def load(
        self,
        address: int,
        width: int | None = None,
        element_mask: int | None = None,
        lane_bytes: int = 8,
    ) -> VectorRegister:
        """One wide load of ``width`` bytes (defaults to register width).

        ``element_mask`` enables lanes (bit ``i`` = lane ``i`` wanted);
        ``None`` means all lanes.  Under ``PRECISE`` the load is issued as
        a gather of the enabled lanes only, so a security byte inside a
        *disabled* lane cannot fault.  Under ``FAULT_ON_ANY`` the full
        width is fetched regardless — the policy's false-positive source,
        counted in ``false_positive_candidates``.
        """
        width = width or self.register_bytes
        if width > self.register_bytes:
            raise ValueError("load wider than the vector register")
        lanes = width // lane_bytes
        if element_mask is None:
            element_mask = (1 << lanes) - 1

        if self.policy is VectorPolicy.PRECISE:
            # Gather: per-lane precise accesses, disabled lanes untouched.
            data = bytearray(width)
            for lane in range(lanes):
                if not (element_mask >> lane) & 1:
                    continue
                start = lane * lane_bytes
                data[start : start + lane_bytes] = self.hierarchy.load_or_raise(
                    address + start, lane_bytes
                )
            return VectorRegister(bytes(data), 0)

        value, records = self.hierarchy.load(address, width)
        poison = 0
        for record in records:
            base = record.address & ~(bv.LINE_SIZE - 1)
            for byte_in_line in record.byte_indices:
                absolute = base + byte_in_line
                if address <= absolute < address + width:
                    poison = bv.set_bit(poison, absolute - address)

        if self.policy is VectorPolicy.FAULT_ON_ANY:
            if poison:
                wanted = _bytes_mask(element_mask, lanes, lane_bytes)
                if not poison & wanted:
                    # The fault came from a lane the program never asked
                    # for: a false positive of this policy.
                    self.false_positive_candidates += 1
                raise SecurityByteAccess(records[0])
            return VectorRegister(value, 0)
        return VectorRegister(value, poison)  # PROPAGATE


def _bytes_mask(element_mask: int, lanes: int, lane_bytes: int) -> int:
    """Expand a per-lane mask into a per-byte mask."""
    out = 0
    for lane in range(lanes):
        if (element_mask >> lane) & 1:
            out |= ((1 << lane_bytes) - 1) << (lane * lane_bytes)
    return out
