"""A minimal ISA for driving the Califorms memory system.

The paper extends x86-64 with one instruction, ``CFORM R1, R2, R3``
(Section 4.1).  For simulation purposes the rest of the ISA collapses to
what matters for the memory system and the timing model:

* ``LOAD`` / ``STORE`` — byte-addressed data accesses,
* ``CFORM`` — the new instruction, operands in
  :class:`~repro.core.cform.CformRequest` form,
* ``ALU`` — a stand-in for ``count`` non-memory instructions (used by the
  trace generators to model instruction mix),
* ``NOP`` — filler.

Instructions are plain frozen dataclasses so traces are cheap to build and
hash; :class:`Program` is a thin list wrapper with mix statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.cform import CformRequest


class Opcode(enum.Enum):
    LOAD = "load"
    STORE = "store"
    CFORM = "cform"
    ALU = "alu"
    NOP = "nop"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Only the fields relevant to the opcode are populated; the module-level
    factory helpers (:func:`load`, :func:`store`, ...) are the intended
    construction path and enforce that.
    """

    opcode: Opcode
    address: int | None = None
    size: int | None = None
    data: bytes | None = None
    request: CformRequest | None = None
    count: int = 1

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.CFORM)


def load(address: int, size: int) -> Instruction:
    """A LOAD of ``size`` bytes at ``address``."""
    if size <= 0:
        raise ValueError("load size must be positive")
    return Instruction(Opcode.LOAD, address=address, size=size)


def store(address: int, data: bytes) -> Instruction:
    """A STORE of ``data`` at ``address``."""
    if not data:
        raise ValueError("store data must be non-empty")
    return Instruction(Opcode.STORE, address=address, data=bytes(data))


def cform(request: CformRequest) -> Instruction:
    """A CFORM with the given operand bundle."""
    return Instruction(Opcode.CFORM, address=request.line_address, request=request)


def alu(count: int = 1) -> Instruction:
    """``count`` back-to-back non-memory instructions."""
    if count <= 0:
        raise ValueError("alu count must be positive")
    return Instruction(Opcode.ALU, count=count)


def nop() -> Instruction:
    return Instruction(Opcode.NOP)


@dataclass
class Program:
    """An ordered instruction sequence with mix statistics."""

    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        self.instructions.extend(instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def instruction_count(self) -> int:
        """Dynamic instruction count (ALU bundles expand to their count)."""
        return sum(
            instruction.count if instruction.opcode is Opcode.ALU else 1
            for instruction in self.instructions
        )

    def memory_operation_count(self) -> int:
        return sum(1 for instruction in self.instructions if instruction.is_memory)

    def cform_count(self) -> int:
        return sum(
            1
            for instruction in self.instructions
            if instruction.opcode is Opcode.CFORM
        )
