"""Functional CPU core: executes programs against the memory hierarchy.

The core binds together the ISA, the hierarchy and the privileged
exception machinery:

* every Califorms exception is delivered *precisely* when the faulting
  instruction retires (the paper's non-speculative guarantee);
* the OS whitelisting of Section 4.2/6.3 is modelled by the
  :class:`ExceptionMaskRegisters` — within a whitelisted region the
  exception is suppressed and logged instead of raised, exactly what the
  kernel handler does for ``memcpy``-style functions.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.core.exceptions import (
    CformUsageError,
    ExceptionRecord,
    SecurityByteAccess,
)
from repro.cpu.isa import Instruction, Opcode, Program
from repro.memory.hierarchy import MemoryHierarchy


@dataclass
class ExceptionMaskRegisters:
    """Privileged mask registers controlling exception delivery.

    The paper whitelists functions like ``memcpy`` "by issuing a privileged
    store instruction to modify the value of exception mask registers
    before entering and after exiting the according piece of code"
    (Section 6.3).  ``depth`` supports nested whitelisted regions.
    """

    depth: int = 0
    suppressed: list[ExceptionRecord] = field(default_factory=list)

    @property
    def masked(self) -> bool:
        return self.depth > 0

    def enter_whitelist(self) -> None:
        self.depth += 1

    def exit_whitelist(self) -> None:
        if self.depth == 0:
            raise RuntimeError("exception mask underflow: no region to exit")
        self.depth -= 1

    def deliver(self, record: ExceptionRecord) -> bool:
        """Deliver one exception record.

        Returns True when the exception was suppressed (whitelisted); the
        caller raises otherwise.
        """
        if self.masked:
            self.suppressed.append(record)
            return True
        return False


@dataclass
class CpuCounters:
    """Retired-instruction accounting."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    cforms: int = 0
    alu_ops: int = 0
    exceptions_raised: int = 0
    exceptions_suppressed: int = 0


class Cpu:
    """A simple in-order core executing :class:`Program` streams."""

    def __init__(self, hierarchy: MemoryHierarchy | None = None):
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.masks = ExceptionMaskRegisters()
        self.counters = CpuCounters()

    # -- single-instruction execution ---------------------------------------

    def execute(self, instruction: Instruction) -> bytes | None:
        """Execute one instruction; return loaded data for LOADs."""
        counters = self.counters
        opcode = instruction.opcode
        if opcode is Opcode.LOAD:
            counters.instructions += 1
            counters.loads += 1
            value, records = self.hierarchy.load(
                instruction.address, instruction.size
            )
            self._deliver(records, SecurityByteAccess)
            return value
        if opcode is Opcode.STORE:
            counters.instructions += 1
            counters.stores += 1
            records = self.hierarchy.store(instruction.address, instruction.data)
            self._deliver(records, SecurityByteAccess)
            return None
        if opcode is Opcode.CFORM:
            counters.instructions += 1
            counters.cforms += 1
            try:
                self.hierarchy.cform(instruction.request)
            except CformUsageError as error:
                if not self.masks.deliver(error.record):
                    self.counters.exceptions_raised += 1
                    raise
                self.counters.exceptions_suppressed += 1
            return None
        if opcode is Opcode.ALU:
            counters.instructions += instruction.count
            counters.alu_ops += instruction.count
            return None
        counters.instructions += 1  # NOP
        return None

    def run(self, program: Program) -> CpuCounters:
        """Execute a whole program; returns the counter block."""
        for instruction in program:
            self.execute(instruction)
        return self.counters

    # -- whitelisting ----------------------------------------------------------

    @contextlib.contextmanager
    def whitelisted(self):
        """Run a block with Califorms exceptions suppressed (OS whitelist).

        Models the kernel wrapping of ``memcpy``-style library functions;
        suppressed events stay visible in ``masks.suppressed`` for the
        security experiments to audit the exposure window.
        """
        self.masks.enter_whitelist()
        try:
            yield self.masks
        finally:
            self.masks.exit_whitelist()

    def _deliver(self, records: list[ExceptionRecord], exc_type) -> None:
        for record in records:
            if self.masks.deliver(record):
                self.counters.exceptions_suppressed += 1
            else:
                self.counters.exceptions_raised += 1
                raise exc_type(record)
