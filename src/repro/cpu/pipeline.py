"""Simple in-order timing estimator for the simulated core.

The paper evaluates on a validated OoO Westmere-like ZSim model; this
reproduction replaces it with a first-order analytical pipeline (see
DESIGN.md, substitution 2):

    cycles = instructions x base_cpi
           + (L1 misses x L2 latency
              + L2 misses x L3 latency
              + L3 misses x DRAM latency) x (1 / overlap)

``overlap`` models memory-level parallelism: an OoO core overlaps part of
each miss with useful work, so benchmarks differ in how much of the raw
penalty they actually pay.  The per-benchmark overlap factors live with the
workload profiles.

L1 *hit* latency is treated as pipelined away (standard for in-order
estimates of L1-hit-dominated code); the extra +1-cycle experiments of
Figure 10 enter through the hierarchy config's ``l2_extra_cycles`` /
``l3_extra_cycles`` knobs, which inflate the miss penalties here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class MemoryEventCounts:
    """Cache-event totals for one simulated run."""

    l1_accesses: int
    l1_misses: int
    l2_misses: int
    l3_misses: int

    def __post_init__(self) -> None:
        if not (
            self.l1_accesses >= self.l1_misses >= self.l2_misses >= self.l3_misses >= 0
        ):
            raise ConfigurationError(
                "event counts must be non-increasing down the hierarchy: "
                f"{self}"
            )


@dataclass(frozen=True)
class PipelineModel:
    """Analytical cycle model for one core configuration."""

    config: HierarchyConfig
    base_cpi: float = 0.75  # a wide OoO core retires >1 instr/cycle
    overlap: float = 2.0  # memory-level parallelism divisor

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigurationError("base_cpi must be positive")
        if self.overlap < 1.0:
            raise ConfigurationError("overlap cannot be below 1 (no speedup)")

    def memory_stall_cycles(self, events: MemoryEventCounts) -> float:
        """Raw miss-penalty cycles, divided by the overlap factor."""
        config = self.config
        raw = (
            events.l1_misses * (config.l2_latency + config.l2_extra_cycles)
            + events.l2_misses * (config.l3_latency + config.l3_extra_cycles)
            + events.l3_misses * config.dram_latency
        )
        return raw / self.overlap

    def cycles(self, instructions: int, events: MemoryEventCounts) -> float:
        """Total estimated cycles for a run."""
        return instructions * self.base_cpi + self.memory_stall_cycles(events)

    def slowdown(
        self,
        baseline_instructions: int,
        baseline_events: MemoryEventCounts,
        variant_instructions: int,
        variant_events: MemoryEventCounts,
        variant_config: HierarchyConfig | None = None,
    ) -> float:
        """Relative slowdown of a variant run over a baseline run.

        A value of 0.03 means 3 % slower.  The variant may also use a
        different hierarchy config (Figure 10's +1-cycle experiment).
        """
        base_cycles = self.cycles(baseline_instructions, baseline_events)
        variant_model = (
            self
            if variant_config is None
            else PipelineModel(variant_config, self.base_cpi, self.overlap)
        )
        new_cycles = variant_model.cycles(variant_instructions, variant_events)
        return new_cycles / base_cycles - 1.0
