"""Califorms — practical byte-granular memory blacklisting (MICRO 2019).

A full-system, laptop-scale reproduction of

    Sasaki, Arroyo, Tarek Ibn Ziad, Bhat, Sinha, Sethumadhavan.
    "Practical Byte-Granular Memory Blacklisting using Califorms."
    MICRO 2019 (arXiv:1906.01838).

Subpackages
-----------
``repro.core``
    Line formats, the sentinel codec (Algorithms 1–2), ``CFORM`` semantics
    and the Appendix A variants — the paper's primary contribution.
``repro.memory``
    The cache hierarchy and DRAM substrate the design lives in.
``repro.cpu``
    ISA, load/store queue and a simple timing core.
``repro.softstack``
    The software half: C-like type system, layout engine, the three
    security-byte insertion policies, the califorms allocator and runtime.
``repro.workloads``
    Synthetic SPEC CPU2006-like benchmarks and struct corpora.
``repro.baselines``
    REST / SafeMem / ADI / MPX / canary comparison points (Section 9).
``repro.analysis``
    Timing, VLSI and security analytics.
``repro.experiments``
    The declarative experiment registry (one driver per paper
    table/figure), RunContext, structured results and the generic
    runner behind ``python -m repro run``.
"""

__version__ = "0.9.0"


def package_version() -> str:
    """The installed distribution's version, else :data:`__version__`.

    Preferring package metadata means an installed build reports exactly
    what pip resolved; the source-tree fallback (``PYTHONPATH=src``
    development runs, where nothing is installed) reports the in-tree
    version.  ``repro --version``, the service's ``Server:`` header and
    the remote client's ``User-Agent`` all read this one function, so
    the two sides of ``repro.serve`` can see each other's versions.
    """
    try:
        from importlib.metadata import version

        return version("califorms-repro")
    except Exception:
        return __version__


from repro.core import (  # noqa: F401,E402  (re-exported convenience API)
    BitvectorLine,
    CaliformsException,
    CformRequest,
    SecurityByteAccess,
    SentinelLine,
    decode,
    encode,
)
