"""Security analytics for Section 7.3 (derandomization attacks).

Two analytic results from the paper, plus Monte-Carlo attack simulations
that check them against the actual runtime:

* **Scan attacks**: the probability of scanning a process's memory
  without ever touching a security byte is ``(1 - P/N)^O`` where ``O`` is
  the number of objects scanned, ``N`` the object size and ``P`` the
  security bytes per object.  With 10 % padding the success probability
  falls to 1e-20 by O = 250.
* **Guessing attacks**: with the attacker knowing the field order but not
  the random span sizes, each 1-7 byte span must be guessed exactly:
  success is ``(1/7)^n`` for ``n`` spans to jump.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.softstack.insertion import full
from repro.softstack.layout import layout_struct
from repro.softstack.ctypes_model import Struct

#: Width of the random span-size choice (1..7 bytes).
SPAN_CHOICES = 7


def scan_success_probability(padding_ratio: float, objects: int) -> float:
    """Probability a scan of ``objects`` objects touches no security byte.

    ``padding_ratio`` is P/N, the blacklisted fraction of each object.
    """
    if not 0.0 <= padding_ratio <= 1.0:
        raise ValueError("padding ratio must be within [0, 1]")
    if objects < 0:
        raise ValueError("object count must be non-negative")
    return (1.0 - padding_ratio) ** objects


def objects_for_target_probability(
    padding_ratio: float, target: float
) -> int:
    """Smallest O with scan success below ``target`` (paper: 250 → 1e-20)."""
    if not 0 < target < 1:
        raise ValueError("target probability must be in (0, 1)")
    per_object = math.log(1.0 - padding_ratio)
    return math.ceil(math.log(target) / per_object)


def guess_success_probability(spans_to_jump: int) -> float:
    """Probability of guessing ``n`` random 1-7 B span sizes exactly."""
    if spans_to_jump < 0:
        raise ValueError("span count must be non-negative")
    return (1.0 / SPAN_CHOICES) ** spans_to_jump


@dataclass
class ScanSimulationResult:
    trials: int
    successes: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


def simulate_scan_attack(
    struct: Struct,
    objects: int,
    trials: int = 1000,
    seed: int = 0,
    probe_bytes: int = 8,
) -> ScanSimulationResult:
    """Monte-Carlo scan attack against full-policy layouts.

    Each trial lays out ``objects`` instances (fresh random spans per
    object, as a quarantining allocator with randomised layouts would)
    and probes one random aligned window per object; the trial succeeds
    if no probe touches a security byte.  Compare against
    :func:`scan_success_probability` with the layout's measured padding
    ratio.
    """
    rng = random.Random(seed)
    natural = layout_struct(struct)
    successes = 0
    for _ in range(trials):
        caught = False
        for _ in range(objects):
            layout = full(natural, rng)
            blacklisted = layout.security_offsets_set()
            start = rng.randrange(max(layout.size - probe_bytes, 1))
            if any(
                offset in blacklisted
                for offset in range(start, start + probe_bytes)
            ):
                caught = True
                break
        if not caught:
            successes += 1
    return ScanSimulationResult(trials=trials, successes=successes)


def simulate_guess_attack(
    struct: Struct, trials: int = 10_000, seed: int = 0
) -> ScanSimulationResult:
    """Monte-Carlo guessing attack against one random-span layout.

    The attacker knows the struct definition and tries to compute the
    target field's offset by guessing every inserted span size; a trial
    succeeds when all guesses match the actual layout.
    """
    rng = random.Random(seed)
    natural = layout_struct(struct)
    successes = 0
    for _ in range(trials):
        layout = full(natural, rng, 1, SPAN_CHOICES)
        inserted = [s for s in layout.spans if s.source == "inserted"]
        guesses = [rng.randint(1, SPAN_CHOICES) for _ in inserted]
        if all(g == s.size for g, s in zip(guesses, inserted)):
            successes += 1
    return ScanSimulationResult(trials=trials, successes=successes)


def paper_headline_numbers() -> dict[str, float]:
    """The two Section 7.3 numeric claims, computed from the formulas."""
    return {
        "scan_success_at_O250_P10pct": scan_success_probability(0.10, 250),
        "objects_needed_for_1e-20": objects_for_target_probability(0.10, 1e-20),
        "guess_success_3_spans": guess_success_probability(3),
    }
