"""Ablation studies for the design choices DESIGN.md calls out.

Four knobs of the Califorms design are isolated and measured:

1. **Quarantine depth** (Section 6.1): temporal-safety window vs address
   reuse.  A freed object stays detectable until its region is recycled;
   deeper quarantine widens the use-after-free detection window.
2. **Temporal vs non-temporal CFORM** (Section 6.1, footnote 3): issuing
   deallocation CFORMs through the L1 pollutes it; the streaming flavour
   leaves the working set alone.
3. **L2+ metadata format** (Section 5.2): califorms-sentinel's 1 bit per
   line vs carrying the L1's 8 B bit vector through the entire hierarchy.
4. **Span-size range** (Section 2): wider random spans buy entropy per
   span at a memory-overhead cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.cform import CformRequest
from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.softstack.allocator import CaliformsHeap
from repro.softstack.compiler import CompilerConfig, CompilerPass
from repro.softstack.ctypes_model import CHAR, INT, Array, struct
from repro.softstack.insertion import Policy, full
from repro.softstack.layout import layout_struct
from repro.workloads.structs_corpus import HEAP_TYPE_POOL

_NODE = struct("abl_node", ("tag", INT), ("payload", Array(CHAR, 40)))


# -- 1. quarantine depth ---------------------------------------------------------


@dataclass(frozen=True)
class QuarantinePoint:
    quarantine_fraction: float
    uaf_detected: int
    uaf_missed: int

    @property
    def detection_rate(self) -> float:
        total = self.uaf_detected + self.uaf_missed
        return self.uaf_detected / total if total else 1.0


def quarantine_ablation(
    fractions: tuple[float, ...] = (0.0, 0.1, 0.3, 0.6),
    churn: int = 40,
    probes: int = 12,
    seed: int = 0,
) -> list[QuarantinePoint]:
    """Use-after-free detection rate as the quarantine grows.

    For each fraction: allocate a victim, free it, keep allocating
    (``churn`` objects), and probe the victim's old field address after
    each allocation.  A probe is *missed* when the address was already
    recycled into a new live object (the access succeeds silently).
    """
    compiler = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=seed))
    layout = compiler.transform(_NODE)
    points: list[QuarantinePoint] = []
    for fraction in fractions:
        hierarchy = MemoryHierarchy()
        heap = CaliformsHeap(
            hierarchy,
            base=0x40000,
            size=64 * 64,
            quarantine_fraction=fraction,
        )
        victim = heap.malloc(layout)
        probe_address = victim.address + layout.offset_of("tag")
        heap.free(victim)
        detected = missed = 0
        live = []
        rng = random.Random(seed)
        for _ in range(churn):
            live.append(heap.malloc(layout))
            if len(live) > 4:  # keep pressure on the free list
                heap.free(live.pop(rng.randrange(len(live))))
        for _ in range(probes):
            _, records = hierarchy.load(probe_address, 4)
            if records:
                detected += 1
            else:
                missed += 1
        points.append(QuarantinePoint(fraction, detected, missed))
    return points


# -- 2. temporal vs non-temporal CFORM ---------------------------------------------


@dataclass(frozen=True)
class CformModeResult:
    mode: str
    application_l1_misses: int


def cform_mode_ablation(cycles: int = 48) -> list[CformModeResult]:
    """L1 pollution caused by deallocation CFORMs, per CFORM flavour.

    A small hot working set is re-read between malloc/free bursts; the
    temporal CFORM drags every freed line through the L1, evicting the
    hot set, while the non-temporal flavour leaves it resident.
    """
    compiler = CompilerPass(CompilerConfig(policy=Policy.FULL, seed=1))
    layout = compiler.transform(_NODE)
    results = []
    for mode, non_temporal in (("temporal", False), ("non-temporal", True)):
        # An L1 the hot set exactly fills (8 lines, 2-way): any line the
        # CFORM path drags in must evict hot data.
        config = HierarchyConfig(l1_geometry=CacheGeometry(8 * 64, 2))
        hierarchy = MemoryHierarchy(config)
        heap = CaliformsHeap(
            hierarchy,
            base=0x80000,
            size=256 * 64,
            use_non_temporal_cform=non_temporal,
        )
        hot = [0x10000 + index * 64 for index in range(8)]
        for address in hot:
            hierarchy.store(address, b"hot")
        hierarchy.l1.stats.reset()
        application_misses = 0
        for _ in range(cycles):
            allocation = heap.malloc(layout)
            heap.free(allocation)
            before = hierarchy.l1.stats.misses
            for address in hot:
                hierarchy.load(address, 4)
            application_misses += hierarchy.l1.stats.misses - before
        results.append(CformModeResult(mode, application_misses))
    return results


# -- 3. L2+ metadata format -----------------------------------------------------------


@dataclass(frozen=True)
class MetadataFormatRow:
    format: str
    bits_per_line: int
    l2_overhead_pct: float
    l3_overhead_pct: float
    dram_overhead_note: str


def metadata_format_ablation() -> list[MetadataFormatRow]:
    """Sentinel (1 bit/line) vs bit-vector-everywhere (64 bits/line)."""
    line_bits = 64 * 8
    rows = []
    for name, bits, dram_note in (
        ("califorms-sentinel", 1, "fits in spare ECC bit"),
        ("bitvector everywhere", 64, "needs 12.5% more DRAM or wider ECC"),
    ):
        overhead = bits / line_bits * 100
        rows.append(
            MetadataFormatRow(
                format=name,
                bits_per_line=bits,
                l2_overhead_pct=round(overhead, 2),
                l3_overhead_pct=round(overhead, 2),
                dram_overhead_note=dram_note,
            )
        )
    return rows


# -- 4. span-size range ------------------------------------------------------------------


@dataclass(frozen=True)
class SpanRangePoint:
    min_bytes: int
    max_bytes: int
    average_memory_overhead_pct: float
    average_entropy_bits_per_span: float


def span_range_ablation(
    ranges: tuple[tuple[int, int], ...] = ((1, 1), (1, 3), (1, 5), (1, 7)),
    seed: int = 0,
) -> list[SpanRangePoint]:
    """Memory overhead vs per-span entropy as the random range widens."""
    import math

    points = []
    for low, high in ranges:
        rng = random.Random(seed)
        natural_total = transformed_total = 0
        for candidate in HEAP_TYPE_POOL:
            natural = layout_struct(candidate)
            transformed = full(natural, rng, low, high)
            natural_total += natural.size
            transformed_total += transformed.size
        overhead = (transformed_total / natural_total - 1.0) * 100
        entropy = math.log2(high - low + 1)
        points.append(
            SpanRangePoint(
                min_bytes=low,
                max_bytes=high,
                average_memory_overhead_pct=round(overhead, 2),
                average_entropy_bits_per_span=round(entropy, 3),
            )
        )
    return points


def render_all() -> str:
    """Run every ablation and render a combined report."""
    lines = ["Ablation studies", "================", ""]
    lines.append("1. quarantine depth vs use-after-free detection:")
    for point in quarantine_ablation():
        lines.append(
            f"   fraction {point.quarantine_fraction:.1f}: "
            f"{point.detection_rate * 100:5.1f}% of UAF probes detected"
        )
    lines.append("")
    lines.append("2. CFORM flavour vs L1 pollution (hot-set misses):")
    for result in cform_mode_ablation():
        lines.append(
            f"   {result.mode:13s} {result.application_l1_misses} hot-set misses"
        )
    lines.append("")
    lines.append("3. L2+ metadata format:")
    for row in metadata_format_ablation():
        lines.append(
            f"   {row.format:22s} {row.bits_per_line:3d} bits/line "
            f"-> +{row.l2_overhead_pct}% SRAM; {row.dram_overhead_note}"
        )
    lines.append("")
    lines.append("4. random span range (entropy vs memory):")
    for point in span_range_ablation():
        lines.append(
            f"   {point.min_bytes}-{point.max_bytes}B: "
            f"+{point.average_memory_overhead_pct:5.1f}% memory, "
            f"{point.average_entropy_bits_per_span:.2f} bits/span"
        )
    return "\n".join(lines)
