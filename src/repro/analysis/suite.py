"""Suite-level timing sweeps: the machinery behind Figures 4, 10, 11, 12.

Wraps :func:`repro.workloads.generator.slowdown` with the paper's
aggregation methodology:

* multiple *binaries* per configuration (different layout-randomisation
  seeds — the error bars of Figures 11/12),
* arithmetic-mean speedup aggregation over the benchmark list
  (Section 8.2, footnote 5),
* per-figure benchmark sets (19 for Figure 10, 16 for Figures 11/12).

With a ``store`` (a :class:`repro.corpus.CorpusStore`), every
(benchmark, scenario, seed) cell resolves through the content-addressed
trace corpus — recorded on first use, replayed bit-identically
thereafter — so repeated figure runs share one persisted corpus instead
of re-synthesising their workloads.  The numbers are identical either
way (the replay round-trip invariant); only where the event stream
comes from changes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.workloads.generator import Scenario, slowdown
from repro.workloads.specs import SPEC_PROFILES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import CorpusStore


@dataclass(frozen=True)
class BenchmarkSlowdown:
    """Slowdown of one benchmark under one configuration."""

    benchmark: str
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, benchmark: str, samples: list[float]) -> "BenchmarkSlowdown":
        return cls(benchmark, statistics.mean(samples), min(samples), max(samples))


@dataclass(frozen=True)
class SuiteResult:
    """All per-benchmark slowdowns for one configuration."""

    label: str
    per_benchmark: tuple[BenchmarkSlowdown, ...]

    @property
    def average(self) -> float:
        """Arithmetic mean across benchmarks (the paper's AVG bars)."""
        return statistics.mean(entry.mean for entry in self.per_benchmark)

    def benchmark(self, name: str) -> BenchmarkSlowdown:
        for entry in self.per_benchmark:
            if entry.benchmark == name:
                return entry
        raise KeyError(name)


def sweep(
    benchmarks: list[str],
    scenario: Scenario,
    instructions: int = 100_000,
    binary_seeds: tuple[int, ...] = (0,),
    baseline_config: HierarchyConfig = WESTMERE,
    variant_config: HierarchyConfig | None = None,
    label: str | None = None,
    store: "CorpusStore | None" = None,
) -> SuiteResult:
    """Run one configuration over a benchmark list.

    ``binary_seeds`` generates differently-randomised layouts of the same
    program (the paper compiles three binaries per random-span setup).
    ``store`` (a :class:`repro.corpus.CorpusStore`, or ``None`` for live
    synthesis) resolves each cell through the recorded-trace corpus; the
    experiment layer resolves the default store in exactly one place —
    :attr:`repro.experiments.context.RunContext.store` — so this function
    never guesses a corpus root itself.
    """
    compute = slowdown if store is None else store.slowdown
    entries = []
    for name in benchmarks:
        profile = SPEC_PROFILES[name]
        samples = [
            compute(
                profile,
                replace(scenario, binary_seed=seed),
                instructions=instructions,
                baseline_config=baseline_config,
                variant_config=variant_config,
            )
            for seed in binary_seeds
        ]
        entries.append(BenchmarkSlowdown.from_samples(name, samples))
    return SuiteResult(
        label=label or scenario.describe(), per_benchmark=tuple(entries)
    )


def render_suite(result: SuiteResult, percent: bool = True) -> str:
    """One line per benchmark plus the AVG row, like the paper's charts."""
    scale = 100.0 if percent else 1.0
    unit = "%" if percent else "x"
    lines = [f"== {result.label} =="]
    for entry in result.per_benchmark:
        lines.append(
            f"  {entry.benchmark:11s} {entry.mean * scale:7.2f}{unit}"
            f"  [{entry.minimum * scale:.2f}, {entry.maximum * scale:.2f}]"
        )
    lines.append(f"  {'AVG':11s} {result.average * scale:7.2f}{unit}")
    return "\n".join(lines)
