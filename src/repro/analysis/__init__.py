"""Analysis layer: timing sweeps, VLSI costs, security analytics, attacks.

* :mod:`repro.analysis.suite` — benchmark-suite slowdown sweeps.
* :mod:`repro.analysis.vlsi` — the Tables 2/7 gate-equivalent model.
* :mod:`repro.analysis.security` — Section 7.3 derandomization math.
* :mod:`repro.analysis.attacks` — the cross-scheme attack simulator.
"""

from repro.analysis.attacks import (
    ATTACK_NAMES,
    AttackResult,
    AttackSuiteReport,
    detection_matrix,
    render_matrix,
    run_attack_suite,
)
from repro.analysis.security import (
    guess_success_probability,
    objects_for_target_probability,
    paper_headline_numbers,
    scan_success_probability,
    simulate_guess_attack,
    simulate_scan_attack,
)
from repro.analysis.suite import (
    BenchmarkSlowdown,
    SuiteResult,
    render_suite,
    sweep,
)
from repro.analysis.vlsi import (
    baseline_l1,
    califorms_1b_l1,
    califorms_4b_l1,
    califorms_8b_l1,
    fill_cost,
    spill_cost,
    table2_rows,
    table7_rows,
)

__all__ = [
    "sweep",
    "SuiteResult",
    "BenchmarkSlowdown",
    "render_suite",
    "table2_rows",
    "table7_rows",
    "baseline_l1",
    "califorms_8b_l1",
    "califorms_4b_l1",
    "califorms_1b_l1",
    "fill_cost",
    "spill_cost",
    "scan_success_probability",
    "objects_for_target_probability",
    "guess_success_probability",
    "simulate_scan_attack",
    "simulate_guess_attack",
    "paper_headline_numbers",
    "run_attack_suite",
    "detection_matrix",
    "render_matrix",
    "AttackResult",
    "AttackSuiteReport",
    "ATTACK_NAMES",
]
