"""Attack simulator: one exploit suite run against every safety scheme.

Extends the paper's qualitative Table 4 into a measured comparison: each
attack is a concrete access pattern derived from a victim object with
known intra-object dead spans, and each scheme's functional model decides
whether it fires.  The Califorms row is additionally cross-checked against
the *real* simulated hardware by the integration tests.

Attacks modelled (Sections 7.2/7.3 plus the classic heap suite):

==========================  =====================================================
``intra_overflow``          write past an array into the next field (same object)
``intra_overread``          read past an array inside the object
``adjacent_overflow``       contiguous write past the end of the object
``adjacent_overread``       contiguous read past the end of the object
``off_by_one``              single-byte overflow
``jump_overflow``           skip ``K`` bytes past the end (defeats fixed redzones)
``underflow``               write before the object start
``use_after_free``          dereference after free
``heap_scan``               sweep a window of the heap looking for targets
==========================  =====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.base import SafetyModel, TrackedAllocation

#: Placement used for every scheme: victim then a contiguous neighbour.
_VICTIM_BASE = 0x100000
_VICTIM_SIZE = 96
#: Dead spans inside the victim (e.g. padding after an array field).
_VICTIM_SPANS = ((40, 3), (72, 5))
_ARRAY_OFFSET = 8
_ARRAY_END = 40  # the array abuts the first dead span


@dataclass
class AttackResult:
    """Outcome of one attack against one scheme."""

    attack: str
    scheme: str
    detected: bool
    detail: str = ""


@dataclass
class AttackSuiteReport:
    """All results for one scheme, with a detection-rate summary."""

    scheme: str
    results: list[AttackResult] = field(default_factory=list)

    def detected(self, attack: str) -> bool:
        for result in self.results:
            if result.attack == attack:
                return result.detected
        raise KeyError(attack)

    @property
    def detection_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.detected for r in self.results) / len(self.results)


def _setup(model: SafetyModel) -> tuple[TrackedAllocation, TrackedAllocation]:
    victim = model.on_alloc(_VICTIM_BASE, _VICTIM_SIZE, intra_spans=_VICTIM_SPANS)
    neighbour = model.on_alloc(_VICTIM_BASE + _VICTIM_SIZE + 64, 64)
    return victim, neighbour


def run_attack_suite(model: SafetyModel, seed: int = 0) -> AttackSuiteReport:
    """Run every attack against a fresh instance state of ``model``."""
    rng = random.Random(seed)
    victim, _neighbour = _setup(model)
    report = AttackSuiteReport(scheme=model.name)

    def record(attack: str, violation) -> None:
        report.results.append(
            AttackResult(
                attack=attack,
                scheme=model.name,
                detected=violation is not None,
                detail=violation.reason if violation is not None else "",
            )
        )

    base = victim.address

    # Intra-object: run from inside the array across the dead span.
    record(
        "intra_overflow",
        model.check_access(victim, base + _ARRAY_END - 4, 8, True),
    )
    record(
        "intra_overread",
        model.check_access(victim, base + _ARRAY_END - 4, 8, False),
    )
    # Contiguous past-the-end accesses.
    record(
        "adjacent_overflow",
        model.check_access(victim, base + _VICTIM_SIZE, 8, True),
    )
    record(
        "adjacent_overread",
        model.check_access(victim, base + _VICTIM_SIZE, 8, False),
    )
    record(
        "off_by_one",
        model.check_access(victim, base + _VICTIM_SIZE, 1, True),
    )
    # Jump far enough to clear the victim's redzone AND the neighbour:
    # lands in unallocated heap past the neighbour's trailing guard.
    record(
        "jump_overflow",
        model.check_access(victim, base + _VICTIM_SIZE + 240, 8, True),
    )
    record("underflow", model.check_access(victim, base - 4, 4, True))
    # Temporal: free, then dereference.
    model.on_free(victim)
    record(
        "use_after_free",
        model.check_access(victim, base + 16, 8, False),
    )
    # Scan: probe random addresses across the victim's old region.
    scan_hit = None
    for _ in range(32):
        probe = base + rng.randrange(_VICTIM_SIZE)
        scan_hit = scan_hit or model.check_access(victim, probe, 4, False)
    record("heap_scan", scan_hit)
    return report


ATTACK_NAMES = (
    "intra_overflow",
    "intra_overread",
    "adjacent_overflow",
    "adjacent_overread",
    "off_by_one",
    "jump_overflow",
    "underflow",
    "use_after_free",
    "heap_scan",
)


def detection_matrix(models: list[SafetyModel], seed: int = 0) -> dict[str, dict[str, bool]]:
    """{scheme: {attack: detected}} over a list of fresh models."""
    matrix: dict[str, dict[str, bool]] = {}
    for model in models:
        report = run_attack_suite(model, seed=seed)
        matrix[model.name] = {
            result.attack: result.detected for result in report.results
        }
    return matrix


def render_matrix(matrix: dict[str, dict[str, bool]]) -> str:
    """ASCII table: attacks down, schemes across."""
    schemes = list(matrix)
    width = max(len(name) for name in ATTACK_NAMES) + 2
    columns = [min(len(s), 12) + 2 for s in schemes]
    header = "attack".ljust(width) + "".join(
        s[:12].ljust(c) for s, c in zip(schemes, columns)
    )
    lines = [header, "-" * len(header)]
    for attack in ATTACK_NAMES:
        row = attack.ljust(width)
        for scheme, column in zip(schemes, columns):
            mark = "DETECT" if matrix[scheme][attack] else "-"
            row += mark.ljust(column)
        lines.append(row)
    return "\n".join(lines)
