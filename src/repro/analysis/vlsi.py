"""Structural VLSI cost model for the Califorms hardware (Tables 2 and 7).

The paper synthesises its L1 designs in a 65 nm TSMC library with ARM
Artisan SRAMs.  Offline we replace synthesis with a structural estimator
(DESIGN.md substitution 3): every block of Figures 8 and 9 is described by
its gate structure — decoders, find-first-index chains, comparator
arrays, crossbars — and costed with per-primitive gate-equivalent (GE),
delay and power constants.

Calibration: exactly two anchors are taken from the paper's baseline row
(the 32 KB L1's total GE and its 1.62 ns access), as a stand-in for the
foundry library we do not have.  Everything else — the ordering of fill
vs. spill latency, why califorms-4B is slower than califorms-1B, the area
ranking 8B > 4B > 1B — *emerges from the circuit structure*, which is the
shape the reproduction must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- calibrated primitive constants (65 nm-ish) -------------------------------

#: Nominal delay of one gate stage (FO4-ish), ns.
GATE_DELAY_NS = 0.11

#: Dynamic power per active GE at the evaluated frequency, mW.
POWER_PER_GE_MW = 1.35e-4

#: Switching activity assumed for datapath logic.
ACTIVITY = 0.15

#: GE per SRAM bit for the large data/tag arrays (from the paper's
#: baseline anchor: ~347 kGE for a 32 KB direct-mapped cache + tags).
SRAM_GE_PER_BIT = 1.25

#: Small SRAM arrays (metadata) pay more per bit: peripheral circuitry
#: does not amortise.  Chosen so the 8B-per-line metadata array lands
#: near the paper's 18.69 % area overhead.
SMALL_SRAM_GE_PER_BIT = 1.9

#: Baseline L1 delay anchor (paper Table 2), ns.
BASELINE_DELAY_NS = 1.62

#: Baseline L1 power anchor (paper Table 2), mW.
BASELINE_POWER_MW = 15.84


@dataclass(frozen=True)
class Block:
    """One logic block: area in GE, critical-path depth in gate stages."""

    name: str
    gates: float
    depth: int

    @property
    def area_ge(self) -> float:
        return self.gates

    @property
    def delay_ns(self) -> float:
        return self.depth * GATE_DELAY_NS

    @property
    def power_mw(self) -> float:
        return self.gates * POWER_PER_GE_MW * ACTIVITY

    def __add__(self, other: "Block") -> "Block":
        """Serial composition: areas add, depths add."""
        return Block(f"{self.name}+{other.name}", self.gates + other.gates,
                     self.depth + other.depth)

    def parallel(self, other: "Block") -> "Block":
        """Parallel composition: areas add, depth is the max."""
        return Block(
            f"{self.name}|{other.name}",
            self.gates + other.gates,
            max(self.depth, other.depth),
        )


def replicate(block: Block, count: int, *, serial: bool = False) -> Block:
    """``count`` copies of a block, in parallel (default) or in series."""
    depth = block.depth * count if serial else block.depth
    return Block(f"{count}x{block.name}", block.gates * count, depth)


# -- primitive blocks of Figures 8/9 ------------------------------------------


def decoder_6to64() -> Block:
    """A 6→64 one-hot decoder: 64 6-input ANDs plus inverters."""
    return Block("dec6x64", gates=64 * 3 + 6, depth=3)


def or_tree(width: int) -> Block:
    """A ``width``-input OR reduction."""
    import math

    depth = max(1, math.ceil(math.log2(width)))
    return Block(f"or{width}", gates=width - 1, depth=depth)


def find_first_index() -> Block:
    """Find-index block: '64 shift blocks followed by a single comparator'
    (Figure 8's green blocks)."""
    return Block("find-index", gates=64 * 18 + 30, depth=11)


def comparator(bits: int) -> Block:
    """An equality comparator over ``bits`` bits."""
    return Block(f"cmp{bits}", gates=bits * 2 + 2, depth=3)


def byte_crossbar(ways: int) -> Block:
    """Crossbar steering up to ``ways`` displaced bytes (Figure 8)."""
    return Block(f"xbar{ways}", gates=64 * 8 * 8, depth=6)


def pipeline_registers(n_bytes: int) -> Block:
    """Input/output staging flops (area only, no logic depth)."""
    return Block(f"regs{n_bytes}", gates=n_bytes * 8 * 6, depth=0)


def control_fsm() -> Block:
    """Handshake/control logic around a conversion module."""
    return Block("control", gates=1500, depth=0)


def mux2(width_bits: int) -> Block:
    """A 2:1 mux, ``width_bits`` wide."""
    return Block(f"mux2x{width_bits}", gates=width_bits * 1.5, depth=1)


# -- the spill and fill modules ---------------------------------------------------


def spill_module() -> Block:
    """Algorithm 1 datapath: bitvector → sentinel (Figure 8).

    Critical path: scan low-6-bits (64 parallel decoders) → used-values
    OR → sentinel find-index, in series with the four chained
    find-index blocks for the first security bytes, then the crossbar.
    """
    scan = replicate(decoder_6to64(), 64)
    used_values = or_tree(64)
    sentinel_path = scan + used_values + find_first_index()
    locate_four = replicate(find_first_index(), 4, serial=True)
    metadata_or = or_tree(64)
    front = sentinel_path.parallel(locate_four).parallel(metadata_or)
    return (
        front
        + byte_crossbar(4)
        + pipeline_registers(128).parallel(control_fsm())
    )


def fill_module() -> Block:
    """Algorithm 2 datapath: sentinel → bitvector (Figure 9).

    Wide but shallow: the count-code comparators and the 60-way sentinel
    comparator array all evaluate in parallel, then a mux layer restores
    the displaced bytes.
    """
    header_unpack = Block("unpack", gates=200, depth=3)
    code_checks = replicate(comparator(2), 4)
    sentinel_compare = replicate(comparator(6), 60)
    merge = or_tree(60)
    restore = replicate(mux2(8), 64) + mux2(64)
    return (
        header_unpack
        + code_checks.parallel(sentinel_compare)
        + merge
        + restore
        + pipeline_registers(128).parallel(Block("ctl", 500, 0))
    )


# -- L1 designs (Table 2 / Table 7 rows) ----------------------------------------


@dataclass(frozen=True)
class L1Design:
    """Area/delay/power of one L1 configuration."""

    name: str
    area_ge: float
    delay_ns: float
    power_mw: float

    def overhead_vs(self, baseline: "L1Design") -> tuple[float, float, float]:
        """(area %, delay %, power %) overheads over a baseline design."""
        return (
            (self.area_ge / baseline.area_ge - 1.0) * 100.0,
            (self.delay_ns / baseline.delay_ns - 1.0) * 100.0,
            (self.power_mw / baseline.power_mw - 1.0) * 100.0,
        )


_CACHE_BITS = 32 * 1024 * 8  # data array
_TAG_BITS = 512 * 25  # 512 lines of tag+state for the 32KB direct-mapped L1


def baseline_l1() -> L1Design:
    """The paper's baseline 32 KB L1 (calibration anchor)."""
    area = (_CACHE_BITS + _TAG_BITS) * SRAM_GE_PER_BIT
    return L1Design("Baseline", area, BASELINE_DELAY_NS, BASELINE_POWER_MW)


def _with_metadata(
    name: str,
    metadata_bits_per_line: int,
    extra_logic: Block,
    serial_depth: int,
) -> L1Design:
    """An L1 with a per-line metadata array plus lookup logic.

    ``serial_depth`` is how many gate stages the metadata path adds in
    *series* with the data access (zero when the lookup runs fully in
    parallel with the tag access, as califorms-8B's does).
    """
    base = baseline_l1()
    metadata_bits = 512 * metadata_bits_per_line
    area = base.area_ge + metadata_bits * SMALL_SRAM_GE_PER_BIT + extra_logic.gates
    delay = base.delay_ns + serial_depth * GATE_DELAY_NS
    power = base.power_mw * (1.0 + 0.15 * metadata_bits / (_CACHE_BITS + _TAG_BITS)) + (
        extra_logic.gates * POWER_PER_GE_MW * ACTIVITY
    )
    return L1Design(name, area, delay, power)


def califorms_8b_l1() -> L1Design:
    """Main design (Section 5.1): 8 B bit vector per line.

    The metadata lookup happens in parallel with the tag access; only the
    exception-check gating lands on the hit path (a fraction of a stage,
    modelled as zero serial stages plus one output-gating mux).
    """
    checker = replicate(comparator(1), 64) + or_tree(64)
    design = _with_metadata("Califorms-8B", 64, checker, serial_depth=0)
    # Output gating (zero-for-security-byte) adds a sliver of delay.
    return L1Design(
        design.name, design.area_ge, design.delay_ns + 0.3 * GATE_DELAY_NS,
        design.power_mw,
    )


def califorms_4b_l1() -> L1Design:
    """Appendix variant (Figure 14): vector hidden in a security byte.

    Reading the blacklist now needs the 4-bit chunk metadata, then a
    byte-select from the *data array output* (3-bit mux through eight
    bytes), then the bit test — all in series with the data access.
    """
    per_chunk = mux2(8) + mux2(8) + mux2(8) + comparator(3)  # 8:1 byte select
    logic = replicate(per_chunk, 8) + or_tree(8)
    return _with_metadata("Califorms-4B", 32, logic, serial_depth=7)


def califorms_1b_l1() -> L1Design:
    """Appendix variant (Figure 15): vector always in the header byte.

    The fixed header position removes the byte-select indirection; only
    the header fetch and bit test are serialised.
    """
    logic = replicate(comparator(1), 8) + or_tree(8)
    return _with_metadata("Califorms-1B", 8, logic, serial_depth=3)


# -- module-level costs (the Fill/Spill columns) -----------------------------------


@dataclass(frozen=True)
class ModuleCost:
    name: str
    area_ge: float
    delay_ns: float
    power_mw: float


def _module_cost(name: str, block: Block, scale: float = 1.0) -> ModuleCost:
    return ModuleCost(
        name=name,
        area_ge=block.gates * scale,
        delay_ns=block.delay_ns,
        power_mw=block.gates * scale * POWER_PER_GE_MW * ACTIVITY,
    )


def fill_cost(variant: str = "8B") -> ModuleCost:
    """Fill-module cost; variants pay a little extra steering logic."""
    extra = {"8B": 1.0, "4B": 1.1, "1B": 1.14}[variant]
    block = fill_module()
    cost = _module_cost(f"fill-{variant}", block, scale=extra)
    if variant != "8B":
        cost = ModuleCost(cost.name, cost.area_ge, cost.delay_ns + 4 * GATE_DELAY_NS,
                          cost.power_mw * 1.15)
    return cost


def spill_cost(variant: str = "8B") -> ModuleCost:
    """Spill-module cost (the slow, combinational Algorithm 1 path)."""
    extra = {"8B": 1.0, "4B": 1.035, "1B": 1.04}[variant]
    block = spill_module()
    cost = _module_cost(f"spill-{variant}", block, scale=extra)
    if variant != "8B":
        cost = ModuleCost(cost.name, cost.area_ge, cost.delay_ns + 4 * GATE_DELAY_NS,
                          cost.power_mw * 1.3)
    return cost


def table2_rows() -> list[dict[str, float | str]]:
    """The Table 2 rows: baseline and the main (8B) design."""
    base = baseline_l1()
    main = califorms_8b_l1()
    area, delay, power = main.overhead_vs(base)
    fill = fill_cost("8B")
    spill = spill_cost("8B")
    return [
        {
            "design": "Baseline",
            "area_ge": round(base.area_ge, 1),
            "delay_ns": base.delay_ns,
            "power_mw": base.power_mw,
        },
        {
            "design": "L1 Califorms (8B)",
            "area_ge": round(main.area_ge, 1),
            "delay_ns": round(main.delay_ns, 3),
            "power_mw": round(main.power_mw, 2),
            "area_overhead_pct": round(area, 2),
            "delay_overhead_pct": round(delay, 2),
            "power_overhead_pct": round(power, 2),
            "fill_area_ge": round(fill.area_ge, 1),
            "fill_delay_ns": round(fill.delay_ns, 2),
            "fill_power_mw": round(fill.power_mw, 3),
            "spill_area_ge": round(spill.area_ge, 1),
            "spill_delay_ns": round(spill.delay_ns, 2),
            "spill_power_mw": round(spill.power_mw, 3),
        },
    ]


def table7_rows() -> list[dict[str, float | str]]:
    """Table 7: the three L1 variants side by side."""
    base = baseline_l1()
    rows: list[dict[str, float | str]] = []
    for design, variant in (
        (califorms_8b_l1(), "8B"),
        (califorms_4b_l1(), "4B"),
        (califorms_1b_l1(), "1B"),
    ):
        area, delay, power = design.overhead_vs(base)
        fill = fill_cost(variant)
        spill = spill_cost(variant)
        rows.append(
            {
                "design": design.name,
                "area_overhead_pct": round(area, 2),
                "delay_overhead_pct": round(delay, 2),
                "power_overhead_pct": round(power, 2),
                "fill_delay_ns": round(fill.delay_ns, 2),
                "spill_delay_ns": round(spill.delay_ns, 2),
                "fill_area_ge": round(fill.area_ge, 1),
                "spill_area_ge": round(spill.area_ge, 1),
            }
        )
    return rows
