"""Reliability: deterministic fault injection and self-healing checks.

Real storage/serving stacks earn trust by surviving injected faults;
this package gives the reproduction the same discipline.  It has three
parts:

* :mod:`repro.reliability.faults` — a seeded, declarative
  :class:`~repro.reliability.faults.FaultPlan` that can bit-flip,
  truncate or delete corpus objects, corrupt or orphan manifest
  entries, hold the manifest lock, and fail or kill an experiment
  worker on a chosen section.  Plans activate through the
  ``REPRO_FAULTS`` environment variable or a
  :class:`~repro.experiments.context.RunContext`, so tests, CI and the
  ``python -m repro faults`` CLI all drive the same machinery.
* the **self-healing corpus** — :class:`repro.corpus.CorpusStore`
  verifies every object read against its manifest digest and, on any
  damage, quarantines the bad bytes under ``<root>/quarantine/``,
  drops the manifest entry and transparently re-records from the
  deterministic spec (see ``docs/RELIABILITY.md``).
* the **fault-tolerant runner** — a crashed or raising experiment
  section becomes a structured
  :class:`~repro.experiments.results.SectionFailure` (rendered in
  ``EXPERIMENTS.md``, recorded in ``results/index.json``) instead of
  aborting the run, with one bounded retry for infrastructure-class
  failures.

:mod:`repro.reliability.matrix` runs the whole fault × consumer matrix
end to end (``make faults-smoke``) and asserts byte-identical results
after every self-heal.
"""

from repro.reliability.faults import (
    CORPUS_FAULT_KINDS,
    ENV_FAULTS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedSectionError,
    hold_manifest_lock,
    inject_store_faults,
    trip_section_fault,
)

__all__ = [
    "CORPUS_FAULT_KINDS",
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedSectionError",
    "hold_manifest_lock",
    "inject_store_faults",
    "trip_section_fault",
]
