"""CLI for the fault-injection harness: ``python -m repro faults``.

Subcommands::

    kinds       list every injectable fault kind
    plan        print a JSON fault plan (feed to `repro run --faults` or
                export as $REPRO_FAULTS)
    inject      apply a plan's corpus faults to a store root right now
    hold-lock   hold a store's manifest lock (the lock antagonist)
    matrix      run the fault × consumer matrix (the CI faults-smoke)

Examples::

    python -m repro faults kinds
    python -m repro faults plan --kind bitflip --target 'fig/*'
    python -m repro faults inject --kind delete --root .repro-corpus
    python -m repro faults hold-lock --root .repro-corpus --seconds 5
    python -m repro faults matrix --root .repro-faults

Every fault is deterministic (seeded), so an incident reproduced here
replays exactly in a test.  See docs/RELIABILITY.md for the fault model
and the self-heal semantics the matrix asserts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.corpus.store import DEFAULT_ROOT, ENV_ROOT, CorpusStore

from repro.reliability.faults import (
    CORPUS_FAULT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    hold_manifest_lock,
    inject_store_faults,
)


def _cmd_kinds(arguments: argparse.Namespace) -> int:
    for kind in FAULT_KINDS:
        print(kind)
    return 0


def _spec_from_args(arguments: argparse.Namespace) -> FaultSpec:
    return FaultSpec(
        kind=arguments.kind,
        target=arguments.target,
        seed=arguments.seed,
        count=arguments.count,
    )


def _cmd_plan(arguments: argparse.Namespace) -> int:
    plan = FaultPlan(
        (_spec_from_args(arguments),), stamp_dir=arguments.stamp_dir
    )
    print(plan.to_json())
    return 0


def _cmd_inject(arguments: argparse.Namespace) -> int:
    spec = _spec_from_args(arguments)
    if spec.kind not in CORPUS_FAULT_KINDS:
        print(
            f"error: {spec.kind!r} is not a corpus fault "
            f"(injectable now: {', '.join(CORPUS_FAULT_KINDS)}); runner "
            f"faults travel in a plan (see `plan`)",
            file=sys.stderr,
        )
        return 2
    store = CorpusStore(arguments.root)
    actions = inject_store_faults(store, FaultPlan((spec,)))
    for action in actions:
        print(action)
    if not actions:
        print(
            f"nothing matched {spec.target!r} in {store.root} "
            f"(empty store?)",
            file=sys.stderr,
        )
        return 1
    print(
        f"{len(actions)} fault(s) injected; `python -m repro corpus "
        f"--root {store.root} verify --repair` heals them"
    )
    return 0


def _cmd_hold_lock(arguments: argparse.Namespace) -> int:
    print(
        f"holding manifest lock of {arguments.root} for "
        f"{arguments.seconds:.1f}s",
        file=sys.stderr,
    )
    hold_manifest_lock(arguments.root, arguments.seconds)
    return 0


def _cmd_matrix(arguments: argparse.Namespace) -> int:
    from repro.reliability.matrix import run_matrix

    cases = run_matrix(
        arguments.root, runner_cases=not arguments.no_runner
    )
    width = max(len(case.case) for case in cases)
    for case in cases:
        status = "ok  " if case.ok else "FAIL"
        print(f"{status} {case.case:{width}s}  {case.detail}")
    failed = [case for case in cases if not case.ok]
    print(
        f"\n{len(cases) - len(failed)}/{len(cases)} cells passed "
        f"(root {arguments.root})"
    )
    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(
                [
                    {
                        "case": case.case,
                        "ok": case.ok,
                        "detail": case.detail,
                    }
                    for case in cases
                ],
                handle,
                indent=2,
            )
            handle.write("\n")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Deterministic fault injection against the corpus "
        "store, the manifest lock and the experiment runner.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("kinds", help="list every injectable fault kind")

    def add_spec_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--kind", required=True, choices=FAULT_KINDS,
            help="fault kind to arm",
        )
        subparser.add_argument(
            "--target", default="*", metavar="GLOB",
            help="scenario/section glob the fault matches (default: *)",
        )
        subparser.add_argument(
            "--seed", type=int, default=0,
            help="which byte/bit the damage hits (default: 0)",
        )
        subparser.add_argument(
            "--count", type=int, default=1,
            help="firing budget when a stamp dir bounds it (default: 1)",
        )

    plan = commands.add_parser(
        "plan",
        help="print a JSON fault plan for `repro run --faults` / "
        "$REPRO_FAULTS",
    )
    add_spec_arguments(plan)
    plan.add_argument(
        "--stamp-dir", default=None, metavar="DIR",
        help="directory bounding firings across processes (required for "
        "a kill-section fault to fire once, not every retry)",
    )

    inject = commands.add_parser(
        "inject", help="apply a corpus fault to a store root now"
    )
    add_spec_arguments(inject)
    inject.add_argument(
        "--root",
        default=os.environ.get(ENV_ROOT, DEFAULT_ROOT),
        help=f"store root (default: ${ENV_ROOT} or {DEFAULT_ROOT})",
    )

    hold = commands.add_parser(
        "hold-lock", help="hold a store's manifest lock (lock antagonist)"
    )
    hold.add_argument(
        "--root",
        default=os.environ.get(ENV_ROOT, DEFAULT_ROOT),
        help=f"store root (default: ${ENV_ROOT} or {DEFAULT_ROOT})",
    )
    hold.add_argument(
        "--seconds", type=float, default=5.0,
        help="how long to hold the lock (default: 5)",
    )

    matrix = commands.add_parser(
        "matrix",
        help="run the fault × consumer matrix (CI faults-smoke payload)",
    )
    matrix.add_argument(
        "--root", default=".repro-faults",
        help="scratch directory for the matrix stores — wiped and "
        "recreated (default: .repro-faults)",
    )
    matrix.add_argument(
        "--no-runner", action="store_true",
        help="skip the experiment-runner cells (corpus + lock only)",
    )
    matrix.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the case results as JSON",
    )

    arguments = parser.parse_args(argv)
    handler = {
        "kinds": _cmd_kinds,
        "plan": _cmd_plan,
        "inject": _cmd_inject,
        "hold-lock": _cmd_hold_lock,
        "matrix": _cmd_matrix,
    }[arguments.command]
    try:
        return handler(arguments)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
