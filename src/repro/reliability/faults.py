"""Deterministic fault injection for the corpus store and the runner.

A fault is data: a :class:`FaultSpec` names a *kind*, a *target* (a
glob over scenario names for corpus faults, over section names for
runner faults), a *seed* (which byte/bit a flip or truncation hits is a
pure function of seed + object digest, so a test can re-inject the
exact same damage) and a firing budget.  A :class:`FaultPlan` bundles
specs and travels as JSON — through the ``REPRO_FAULTS`` environment
variable into worker processes, through
:attr:`repro.experiments.context.RunContext.faults` into the runner,
or applied immediately with :func:`inject_store_faults` (the
``python -m repro faults inject`` path).

Corpus fault kinds (applied to a store's on-disk state):

``bitflip``
    Flip one seeded bit inside a matching object file.
``truncate``
    Cut a matching object file to a seeded fraction of its length.
``delete``
    Remove a matching object file.
``corrupt-entry``
    Rewrite a matching manifest entry's content digest so it binds to
    bytes that do not exist.
``orphan-entry``
    Insert a manifest entry (fingerprint and digest both synthetic)
    whose object was never recorded and whose spec is unknown.

Runner fault kinds (tripped by :func:`trip_section_fault` inside the
executor, once per stamp budget):

``fail-section``
    Raise :class:`InjectedSectionError` — a deterministic experiment
    failure (never retried; becomes a ``SectionFailure``).
``kill-section``
    Die without unwinding — ``os._exit`` in a worker process (the pool
    sees a broken worker, exactly like an OOM kill), a raised
    :class:`InjectedWorkerCrash` when inline.  Infrastructure-class, so
    the runner's bounded retry recovers if the budget is spent.

Lock fault:

``hold-lock``
    :func:`hold_manifest_lock` grabs the store's manifest lock for
    ``seconds`` — the antagonist for lock-timeout tests.

Firing budgets use *stamp files*: a spec with ``count=1`` fires once
across every process that shares the plan's ``stamp_dir``, because each
firing claims a stamp with ``O_CREAT | O_EXCL``.  Without a
``stamp_dir`` runner faults fire on every match (corpus faults are
one-shot by nature — they mutate state).
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, replace

#: Environment variable carrying a JSON-serialised plan into workers.
ENV_FAULTS = "REPRO_FAULTS"

CORPUS_FAULT_KINDS = (
    "bitflip",
    "truncate",
    "delete",
    "corrupt-entry",
    "orphan-entry",
)
SECTION_FAULT_KINDS = ("fail-section", "kill-section")
FAULT_KINDS = CORPUS_FAULT_KINDS + SECTION_FAULT_KINDS + ("hold-lock",)

#: Exit status of a kill-section worker (distinctive in pool tracebacks).
KILL_EXIT_CODE = 73

#: Truncation keeps at least this many bytes so the magic sniff still
#: identifies the file as a trace (mid-stream truncation, the realistic
#: crashed-writer shape).
MIN_TRUNCATED_BYTES = 16


class InjectedSectionError(RuntimeError):
    """A deterministic, injected experiment failure (never retried)."""


class InjectedWorkerCrash(OSError):
    """Inline stand-in for a killed worker (infrastructure-class)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault (see module docstring for the kinds)."""

    kind: str
    target: str = "*"
    seed: int = 0
    count: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def matches(self, name: str) -> bool:
        return fnmatch.fnmatchcase(name, self.target)

    def stamp_key(self) -> str:
        """Stable identity for the stamp files of this spec."""
        payload = json.dumps(asdict(self), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the stamp directory bounding firings."""

    specs: tuple[FaultSpec, ...] = ()
    stamp_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- serialisation (env var / RunContext field) --------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "specs": [asdict(spec) for spec in self.specs],
                "stamp_dir": self.stamp_dir,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        document = json.loads(text)
        return cls(
            specs=tuple(
                FaultSpec(**spec) for spec in document.get("specs", ())
            ),
            stamp_dir=document.get("stamp_dir"),
        )

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultPlan | None":
        text = environ.get(ENV_FAULTS)
        return cls.from_json(text) if text else None

    def to_env(self, environ=os.environ) -> None:
        environ[ENV_FAULTS] = self.to_json()

    # -- firing --------------------------------------------------------------

    def claim(self, spec: FaultSpec) -> bool:
        """Claim one firing of ``spec``; False once the budget is spent.

        Atomic across processes sharing :attr:`stamp_dir` (``O_EXCL``
        stamp creation).  Without a stamp dir the budget is unbounded.
        """
        if self.stamp_dir is None:
            return True
        os.makedirs(self.stamp_dir, exist_ok=True)
        key = spec.stamp_key()
        for firing in range(spec.count):
            stamp = os.path.join(self.stamp_dir, f"{key}.{firing}")
            try:
                os.close(os.open(stamp, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False

    def section_specs(self, section: str) -> list[FaultSpec]:
        return [
            spec
            for spec in self.specs
            if spec.kind in SECTION_FAULT_KINDS and spec.matches(section)
        ]


def merged_plan(
    context_faults: str | None = None, environ=os.environ
) -> FaultPlan | None:
    """The active plan: RunContext-carried specs plus ``$REPRO_FAULTS``.

    When both are present their specs concatenate; the context plan's
    stamp dir wins (one budget ledger per run).
    """
    context_plan = (
        FaultPlan.from_json(context_faults) if context_faults else None
    )
    env_plan = FaultPlan.from_env(environ)
    if context_plan is None:
        return env_plan
    if env_plan is None:
        return context_plan
    return replace(
        context_plan,
        specs=context_plan.specs + env_plan.specs,
        stamp_dir=context_plan.stamp_dir or env_plan.stamp_dir,
    )


def trip_section_fault(
    section: str, context_faults: str | None = None, environ=os.environ
) -> None:
    """Fire any armed runner fault targeting ``section`` (or return).

    Called by the experiment executor at the top of every section, in
    the process that will run it — worker or inline.  ``kill-section``
    in a worker exits the process without unwinding (the pool observes
    a broken worker); inline it degrades to an
    :class:`InjectedWorkerCrash` so a single-process run survives to
    exercise the same retry path.
    """
    plan = merged_plan(context_faults, environ)
    if plan is None:
        return
    for spec in plan.section_specs(section):
        if not plan.claim(spec):
            continue
        if spec.kind == "fail-section":
            raise InjectedSectionError(
                f"injected failure in section {section!r} "
                f"(fault target {spec.target!r})"
            )
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(KILL_EXIT_CODE)
        raise InjectedWorkerCrash(
            f"injected worker crash in section {section!r} "
            f"(inline stand-in for kill-section)"
        )


# -- corpus-side injection ----------------------------------------------------


def _object_rng_offset(digest: str, seed: int, span: int) -> int:
    """A seeded position inside ``span`` bytes, stable per (digest, seed)."""
    payload = f"{digest}:{seed}".encode()
    value = int.from_bytes(hashlib.sha256(payload).digest()[:8], "little")
    return value % span if span else 0


def inject_object_fault(path: str, digest: str, kind: str, seed: int) -> str:
    """Damage one object file in place; returns a description."""
    if kind == "delete":
        os.remove(path)
        return f"deleted {path}"
    size = os.path.getsize(path)
    if kind == "bitflip":
        offset = _object_rng_offset(digest, seed, size)
        bit = _object_rng_offset(digest, seed + 1, 8)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            (byte,) = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << bit)]))
        return f"flipped bit {bit} of byte {offset} in {path}"
    if kind == "truncate":
        keep = MIN_TRUNCATED_BYTES + _object_rng_offset(
            digest, seed, max(1, size - MIN_TRUNCATED_BYTES)
        )
        keep = min(keep, max(MIN_TRUNCATED_BYTES, size - 1))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        return f"truncated {path} from {size} to {keep} bytes"
    raise ValueError(f"not an object fault kind: {kind!r}")


def inject_store_faults(store, plan: FaultPlan) -> list[str]:
    """Apply a plan's corpus faults to ``store``'s on-disk state now.

    Deterministic: which entries match is the manifest order, which
    byte a flip or truncation hits is seeded per object digest.
    Returns human-readable descriptions of every mutation made.
    """
    from repro.corpus.manifest import ManifestEntry, manifest_lock, save_manifest

    actions: list[str] = []
    for spec in plan.specs:
        if spec.kind not in CORPUS_FAULT_KINDS:
            continue
        if spec.kind == "orphan-entry":
            fake = hashlib.sha256(
                f"orphan:{spec.seed}".encode()
            ).hexdigest()
            entry = ManifestEntry(
                fingerprint=f"orphan-{fake[:16]}",
                scenario=f"orphan/{spec.seed}",
                driver="generator",
                instructions=0,
                digest=fake,
                records=0,
                raw_bytes=0,
                stored_bytes=0,
            )
            with manifest_lock(store.root):
                manifest = store.manifest()
                manifest.put(entry)
                save_manifest(manifest, store.manifest_path)
            actions.append(
                f"orphaned manifest entry {entry.fingerprint} "
                f"(object {fake[:12]}… never recorded)"
            )
            continue
        matched = [
            (fingerprint, entry)
            for fingerprint, entry in sorted(store.manifest().entries.items())
            if spec.matches(entry.scenario)
        ]
        for fingerprint, entry in matched:
            if spec.kind == "corrupt-entry":
                bogus = hashlib.sha256(
                    f"{entry.digest}:{spec.seed}".encode()
                ).hexdigest()
                with manifest_lock(store.root):
                    manifest = store.manifest()
                    current = manifest.get(fingerprint)
                    if current is not None:
                        manifest.put(replace(current, digest=bogus))
                        save_manifest(manifest, store.manifest_path)
                actions.append(
                    f"corrupted manifest entry for {entry.scenario}: "
                    f"digest {entry.digest[:12]}… -> {bogus[:12]}…"
                )
                continue
            path = store.object_path(entry.digest)
            if not os.path.exists(path):
                continue
            actions.append(
                f"{entry.scenario}: "
                + inject_object_fault(path, entry.digest, spec.kind, spec.seed)
            )
    return actions


def hold_manifest_lock(root: str, seconds: float) -> None:
    """Hold the store's manifest lock for ``seconds`` (lock antagonist)."""
    from repro.corpus.manifest import manifest_lock

    with manifest_lock(root, timeout=max(seconds, 1.0)):
        time.sleep(seconds)
