"""The fault × consumer matrix: every injectable fault against every
consumer that must survive it.

One :func:`run_matrix` call builds a tiny pristine corpus once, then for
each case copies it into a scratch root, injects exactly one fault and
drives one consumer (``ensure`` / ``run_result`` / ``verify --repair`` /
the experiment runner / the manifest lock), asserting the reliability
contract:

* the consumer completes instead of crashing,
* the store converges back to the *byte-identical* object (content
  addressing makes this checkable: healed digest == pristine digest),
* the damage is quarantined and recorded in the heal ledger, and
* a follow-up ``verify`` is clean.

This is the ``make faults-smoke`` payload (``python -m repro faults
matrix``) and the engine behind ``tests/reliability/test_selfheal.py``
— CI runs the same matrix the tests parametrise over.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import time
from dataclasses import dataclass

from repro.corpus.manifest import ManifestLockTimeout, manifest_lock
from repro.corpus.store import CorpusStore
from repro.traces.registry import CORPUS

from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    hold_manifest_lock,
    inject_store_faults,
)

#: Trace length of the matrix's scratch corpus: long enough to span
#: several compressed epochs (so truncation can land mid-stream), short
#: enough that a full matrix run re-records in well under a second per
#: case.
MATRIX_INSTRUCTIONS = 4_000

#: (fault kind, consumer) cells.  ``orphan-entry`` is invisible to
#: ``ensure``/``run_result`` by construction (its fingerprint belongs to
#: no real spec), so only the bulk repair path owns it.
CORPUS_CASES: tuple[tuple[str, str], ...] = (
    ("bitflip", "ensure"),
    ("bitflip", "run_result"),
    ("bitflip", "repair"),
    ("truncate", "ensure"),
    ("truncate", "run_result"),
    ("truncate", "repair"),
    ("delete", "ensure"),
    ("delete", "run_result"),
    ("delete", "repair"),
    ("corrupt-entry", "ensure"),
    ("corrupt-entry", "repair"),
    ("orphan-entry", "repair"),
)


@dataclass(frozen=True)
class FaultCase:
    """Outcome of one matrix cell."""

    case: str
    ok: bool
    detail: str


def _matrix_spec():
    """The one workload the corpus cells damage and re-heal."""
    name = sorted(CORPUS)[0]
    return CORPUS[name].scaled(MATRIX_INSTRUCTIONS)


def _build_template(root: str) -> str:
    """Record the pristine single-object store; returns its digest."""
    store = CorpusStore(root)
    return store.ensure(_matrix_spec()).entry.digest


def _corpus_case(
    template: str, root: str, kind: str, consumer: str, digest: str
) -> FaultCase:
    """Copy the pristine store, break it one way, heal it one way."""
    name = f"corpus/{kind}/{consumer}"
    shutil.copytree(template, root)
    inject_store_faults(
        CorpusStore(root), FaultPlan((FaultSpec(kind=kind, seed=1),))
    )
    store = CorpusStore(root)  # fresh handle: no verified-digest cache
    spec = _matrix_spec()
    try:
        if consumer == "ensure":
            healed = store.ensure(spec).entry.digest
            if healed != digest:
                return FaultCase(
                    name, False, f"healed digest {healed[:12]} != pristine"
                )
        elif consumer == "run_result":
            store.run_result(spec)
        elif consumer == "repair":
            problems, actions = store.repair()
            if not problems:
                return FaultCase(
                    name, False, "repair saw no problem in a damaged store"
                )
            if len(problems) != len(actions):
                return FaultCase(name, False, "problems/actions mismatch")
        else:  # pragma: no cover - matrix definition error
            return FaultCase(name, False, f"unknown consumer {consumer!r}")
    except Exception as error:  # the contract: consumers never crash
        return FaultCase(name, False, f"{type(error).__name__}: {error}")
    if store.healed == 0:
        return FaultCase(name, False, "no heal event was recorded")
    remaining = CorpusStore(root).verify()
    if remaining:
        return FaultCase(name, False, f"still damaged: {remaining[0]}")
    if consumer != "repair":
        # ensure/run_result must have restored the binding in place.
        resolved = CorpusStore(root).ensure(spec)
        if resolved.built or resolved.entry.digest != digest:
            return FaultCase(name, False, "store did not converge")
    if not os.path.isdir(os.path.join(root, "quarantine")) and kind not in (
        "corrupt-entry",
        "orphan-entry",
        "delete",
    ):
        return FaultCase(name, False, "damaged bytes were not quarantined")
    return FaultCase(name, True, f"healed after {kind}")


def _lock_case(root: str) -> FaultCase:
    """An antagonist holds the manifest lock; acquisition must time out
    with diagnostics instead of hanging."""
    name = "lock/timeout"
    os.makedirs(root, exist_ok=True)
    holder = multiprocessing.Process(
        target=hold_manifest_lock, args=(root, 2.5)
    )
    holder.start()
    try:
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            try:
                with manifest_lock(root, timeout=0.05):
                    pass  # antagonist not holding yet; try again
            except ManifestLockTimeout as error:
                if "manifest lock" not in str(error):
                    return FaultCase(
                        name, False, f"timeout lacks diagnostics: {error}"
                    )
                return FaultCase(name, True, "timed out with diagnostics")
            if not holder.is_alive():
                return FaultCase(
                    name, False, "holder exited before contention was seen"
                )
            time.sleep(0.01)
        return FaultCase(name, False, "never observed lock contention")
    finally:
        holder.join()


def _runner_fail_case(stamp_root: str) -> FaultCase:
    """An injected deterministic section failure becomes a recorded
    ``SectionFailure``; the other sections still complete."""
    from repro.experiments.context import RunContext
    from repro.experiments.registry import select
    from repro.experiments.results import SectionFailure, SectionResult
    from repro.experiments.runner import execute_report

    name = "runner/fail-section"
    plan = FaultPlan(
        (FaultSpec(kind="fail-section", target="table2"),),
        stamp_dir=os.path.join(stamp_root, "fail"),
    )
    ctx = RunContext.create(
        profile="quick", no_corpus=True, jobs=1, faults=plan
    )
    report = execute_report(select(["table1", "table2"]), ctx)
    failed = {o.name: o for o in report.outcomes if isinstance(o, SectionFailure)}
    if set(failed) != {"table2"}:
        return FaultCase(
            name, False, f"expected table2 to fail; failed={sorted(failed)}"
        )
    if failed["table2"].kind != "exception" or failed["table2"].attempts != 1:
        return FaultCase(name, False, "deterministic failure was retried")
    if not isinstance(report.outcomes[0], SectionResult):
        return FaultCase(name, False, "healthy section did not complete")
    return FaultCase(name, True, "isolated to one SectionFailure")


def _runner_kill_case(stamp_root: str) -> FaultCase:
    """A worker killed mid-section breaks the pool once; the bounded
    retry completes the run cleanly (the incident stays on the ledger)."""
    from repro.experiments.context import RunContext
    from repro.experiments.registry import select
    from repro.experiments.results import SectionResult
    from repro.experiments.runner import execute_report

    name = "runner/kill-section"
    plan = FaultPlan(
        (FaultSpec(kind="kill-section", target="table1", count=1),),
        stamp_dir=os.path.join(stamp_root, "kill"),
    )
    ctx = RunContext.create(
        profile="quick", no_corpus=True, jobs=2, faults=plan
    )
    report = execute_report(select(["table1", "table2"]), ctx)
    if not all(isinstance(o, SectionResult) for o in report.outcomes):
        return FaultCase(
            name, False, f"run did not recover: {report.failures}"
        )
    crash = [i for i in report.incidents if i["kind"] == "worker-crash"]
    if not crash or not all(i["retried"] for i in crash):
        return FaultCase(
            name, False, f"no retried worker-crash incident: {report.incidents}"
        )
    return FaultCase(name, True, "worker crash recovered by bounded retry")


def run_matrix(root: str, runner_cases: bool = True) -> list[FaultCase]:
    """Run every matrix cell under ``root``; returns one case per cell."""
    cases: list[FaultCase] = []
    if os.path.isdir(root):  # a scratch dir: previous runs are disposable
        shutil.rmtree(root)
    template = os.path.join(root, "template")
    digest = _build_template(template)
    for kind, consumer in CORPUS_CASES:
        case_root = os.path.join(root, f"{kind}-{consumer}")
        cases.append(_corpus_case(template, case_root, kind, consumer, digest))
    cases.append(_lock_case(os.path.join(root, "lock")))
    if runner_cases:
        stamp_root = os.path.join(root, "stamps")
        cases.append(_runner_fail_case(stamp_root))
        cases.append(_runner_kill_case(stamp_root))
    return cases
