"""CLI over one run's span log: ``python -m repro telemetry``.

Subcommands::

    summarize [DIR]   per-span timing table, counters and profile
                      hotspots from DIR/spans.jsonl
    export    [DIR]   merged metrics in JSON (default) or Prometheus
                      text format (--format prometheus), to stdout or
                      --out PATH

``DIR`` is the telemetry sink a run wrote (``repro run --telemetry``
defaults it to ``<results dir>/telemetry``).  Examples::

    python -m repro telemetry summarize results/telemetry
    python -m repro telemetry export results/telemetry --format prometheus
    python -m repro telemetry export results/telemetry --out metrics.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.telemetry.export import (
    metrics_document,
    prometheus_text,
    read_span_log,
    summarize_spans,
)
from repro.telemetry.runtime import SPAN_LOG_NAME

#: Default sink location: where `repro run` puts telemetry by default.
DEFAULT_DIR = os.path.join("results", "telemetry")


def _load(directory: str):
    path = os.path.join(directory, SPAN_LOG_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no span log at {path} — run with `repro run --telemetry` "
            "first, or point at the run's telemetry directory"
        )
    return read_span_log(path)


def _cmd_summarize(arguments: argparse.Namespace) -> int:
    log = _load(arguments.dir)
    spans = summarize_spans(log.spans)
    if spans:
        width = max(len(name) for name in spans)
        print(
            f"{'span':{width}s} {'count':>7s} {'total s':>10s} "
            f"{'mean s':>10s} {'max s':>10s}"
        )
        for name, row in spans.items():
            print(
                f"{name:{width}s} {row['count']:>7d} "
                f"{row['total_s']:>10.4f} {row['mean_s']:>10.4f} "
                f"{row['max_s']:>10.4f}"
            )
    else:
        print("no spans recorded")
    merged = metrics_document(log)
    counters = merged["counters"]
    if counters:
        print()
        width = max(len(key) for key in counters)
        for key, value in counters.items():
            formatted = (
                str(int(value))
                if float(value).is_integer()
                else f"{value:.4f}"
            )
            print(f"{key:{width}s} {formatted:>14s}")
    if log.profiles:
        for record in log.profiles:
            print(f"\nprofile {record.get('section', '?')} (cumulative):")
            for spot in record.get("hotspots", [])[:5]:
                print(
                    f"  {spot['cumtime_s']:9.4f}s {spot['calls']:>9} "
                    f"{spot['function']}"
                )
    if log.malformed:
        print(
            f"warning: {log.malformed} malformed line(s) in the span log",
            file=sys.stderr,
        )
    print(
        f"\n{len(log.spans)} span(s), {len(log.snapshots)} process(es), "
        f"{len(log.profiles)} profile(s)  ({arguments.dir})"
    )
    return 0


def _cmd_export(arguments: argparse.Namespace) -> int:
    document = metrics_document(_load(arguments.dir))
    if arguments.format == "prometheus":
        rendered = prometheus_text(document)
    else:
        rendered = json.dumps(document, indent=2) + "\n"
    if arguments.out:
        with open(arguments.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote {arguments.out}")
    else:
        sys.stdout.write(rendered)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Summarise and export one run's telemetry "
        "(span log + metric snapshots).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="per-span timing table + counters + hotspots"
    )
    summarize.add_argument(
        "dir", nargs="?", default=DEFAULT_DIR,
        help=f"telemetry directory (default: {DEFAULT_DIR})",
    )

    export = commands.add_parser(
        "export", help="merged metrics as JSON or Prometheus text"
    )
    export.add_argument(
        "dir", nargs="?", default=DEFAULT_DIR,
        help=f"telemetry directory (default: {DEFAULT_DIR})",
    )
    export.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="output format (default: json)",
    )
    export.add_argument(
        "--out", default=None, metavar="PATH",
        help="write to PATH instead of stdout",
    )

    arguments = parser.parse_args(argv)
    handler = {"summarize": _cmd_summarize, "export": _cmd_export}[
        arguments.command
    ]
    try:
        return handler(arguments)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
