"""Exporters over one run's span log: merge, snapshot, summarise.

The span log (``spans.jsonl``) is the single source every exporter
reads: ``span`` records are timed scopes, ``metrics`` records are
cumulative per-process registry snapshots (monotonic ``seq`` per pid),
``profile`` records carry per-section cProfile hotspots.  This module
turns that log into:

* ``metrics.json`` — one merged snapshot document
  (schema :data:`METRICS_SCHEMA`): counters summed across processes,
  gauges last-writer-wins, histograms merged bucket-wise, plus a
  per-span-name aggregation;
* Prometheus text exposition (:func:`prometheus_text`) — the format the
  future ``repro.serve`` ``/metrics`` endpoint will return verbatim;
* ``TELEMETRY.md`` (:func:`summary_markdown`) — the human summary
  written next to ``results/index.json``.

Merging is idempotent over repeated flushes: each process appends
cumulative snapshots, and only the highest-``seq`` snapshot per pid
contributes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.telemetry.runtime import SPAN_LOG_NAME
from repro.telemetry.spans import SPAN_SCHEMA, validate_span_record

#: Schema tag of the exported ``metrics.json`` document.
METRICS_SCHEMA = "repro-metrics/v1"

#: Keys every exported metrics document must carry.
METRICS_REQUIRED_KEYS = (
    "schema", "counters", "gauges", "histograms", "spans", "processes",
)


@dataclass
class RunLog:
    """Everything parsed out of one span log."""

    spans: list[dict] = field(default_factory=list)
    profiles: list[dict] = field(default_factory=list)
    #: pid -> that process's highest-seq cumulative metrics snapshot.
    snapshots: dict[int, dict] = field(default_factory=dict)
    #: Lines that failed to parse (diagnostics; should be empty).
    malformed: int = 0


def read_span_log(path: str) -> RunLog:
    """Parse a span log into spans, profiles and per-pid snapshots."""
    log = RunLog()
    if not os.path.exists(path):
        return log
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                log.malformed += 1
                continue
            kind = record.get("type")
            if kind == "span":
                log.spans.append(record)
            elif kind == "profile":
                log.profiles.append(record)
            elif kind == "metrics":
                pid = int(record.get("pid", 0))
                seq = int(record.get("seq", 0))
                best = log.snapshots.get(pid)
                if best is None or seq >= int(best.get("seq", 0)):
                    log.snapshots[pid] = record
            else:
                log.malformed += 1
    return log


def merge_snapshots(snapshots: dict[int, dict]) -> dict:
    """Combine per-process cumulative snapshots into one registry view.

    Counters sum (each process counted what it saw), gauges are
    last-writer-wins in pid order (deterministic given the snapshots),
    histograms merge bucket-wise when their bucket bounds agree — the
    normal case, since every instrumented site uses the registry
    defaults — and otherwise the later snapshot wins whole.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for pid in sorted(snapshots):
        metrics = snapshots[pid].get("metrics", {})
        for key, value in metrics.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        gauges.update(metrics.get("gauges", {}))
        for key, histogram in metrics.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None or merged["buckets"] != histogram["buckets"]:
                histograms[key] = {
                    "buckets": list(histogram["buckets"]),
                    "counts": list(histogram["counts"]),
                    "sum": histogram["sum"],
                    "count": histogram["count"],
                    "min": histogram["min"],
                    "max": histogram["max"],
                }
                continue
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], histogram["counts"])
            ]
            merged["sum"] += histogram["sum"]
            merged["count"] += histogram["count"]
            merged["min"] = min(merged["min"], histogram["min"])
            merged["max"] = max(merged["max"], histogram["max"])
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def summarize_spans(spans: list[dict]) -> dict[str, dict]:
    """Per-span-name aggregation: count, total/mean/max seconds."""
    summary: dict[str, dict] = {}
    for record in spans:
        name = record.get("name", "?")
        duration = float(record.get("duration_s", 0.0))
        row = summary.get(name)
        if row is None:
            summary[name] = {
                "count": 1,
                "total_s": duration,
                "max_s": duration,
            }
        else:
            row["count"] += 1
            row["total_s"] += duration
            row["max_s"] = max(row["max_s"], duration)
    for row in summary.values():
        row["mean_s"] = row["total_s"] / row["count"]
    return dict(sorted(summary.items()))


def metrics_document(log: RunLog) -> dict:
    """The ``metrics.json`` document for one parsed run log."""
    merged = merge_snapshots(log.snapshots)
    return {
        "schema": METRICS_SCHEMA,
        "span_schema": SPAN_SCHEMA,
        "processes": sorted(log.snapshots),
        "counters": dict(sorted(merged["counters"].items())),
        "gauges": dict(sorted(merged["gauges"].items())),
        "histograms": dict(sorted(merged["histograms"].items())),
        "spans": summarize_spans(log.spans),
    }


def validate_metrics_document(document: dict) -> list[str]:
    """Schema-check one exported metrics document; returns problems."""
    problems = []
    for key in METRICS_REQUIRED_KEYS:
        if key not in document:
            problems.append(f"metrics document missing key {key!r}")
    if document.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"unsupported metrics schema {document.get('schema')!r}"
        )
    for section in ("counters", "gauges", "histograms", "spans"):
        if section in document and not isinstance(document[section], dict):
            problems.append(f"metrics {section} is not an object")
    for key, histogram in document.get("histograms", {}).items():
        if not isinstance(histogram, dict):
            problems.append(f"histogram {key} is not an object")
            continue
        counts = histogram.get("counts", [])
        buckets = histogram.get("buckets", [])
        if len(counts) != len(buckets) + 1:
            problems.append(
                f"histogram {key}: {len(counts)} counts for "
                f"{len(buckets)} buckets (want buckets + 1)"
            )
    return problems


# -- Prometheus text exposition -----------------------------------------------


def _split_series(key: str) -> tuple[str, str]:
    """``name{labels}`` -> (name, 'k="v",...'); plain names get ''."""
    if "{" in key and key.endswith("}"):
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


def _with_label(labels: str, extra: str) -> str:
    return f"{labels},{extra}" if labels else extra


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(document: dict) -> str:
    """Prometheus text exposition (version 0.0.4) of a metrics document.

    Series keys already use the exposition's ``name{k="v"}`` syntax
    (see :func:`repro.telemetry.metrics.series_key`), so counters and
    gauges render directly; histograms expand into the conventional
    ``_bucket``/``_sum``/``_count`` triple with an ``le`` label.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in document.get("counters", {}).items():
        name, labels = _split_series(key)
        type_line(name, "counter")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}{suffix} {_format_value(value)}")
    for key, value in document.get("gauges", {}).items():
        name, labels = _split_series(key)
        type_line(name, "gauge")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}{suffix} {_format_value(value)}")
    for key, histogram in document.get("histograms", {}).items():
        name, labels = _split_series(key)
        type_line(name, "histogram")
        cumulative = 0
        bounds = list(histogram["buckets"]) + [float("inf")]
        for bound, count in zip(bounds, histogram["counts"]):
            cumulative += count
            le = _with_label(labels, f'le="{_format_value(bound)}"')
            lines.append(f"{name}_bucket{{{le}}} {cumulative}")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_format_value(histogram['sum'])}")
        lines.append(f"{name}_count{suffix} {histogram['count']}")
    return "\n".join(lines) + "\n" if lines else ""


# -- run summary --------------------------------------------------------------


def summary_markdown(document: dict, log: RunLog) -> str:
    """The ``TELEMETRY.md`` body: spans, hot counters, profile hotspots."""
    parts = [
        "# TELEMETRY — run introspection\n",
        "Non-deterministic observability sidecar of one `repro run`; "
        "the deterministic artifacts (`results/*.json`, EXPERIMENTS.md) "
        "never include these numbers.  See docs/OBSERVABILITY.md.\n",
    ]
    spans = document.get("spans", {})
    if spans:
        parts.append("## Spans\n")
        parts.append("| span | count | total s | mean s | max s |")
        parts.append("|---|---:|---:|---:|---:|")
        for name, row in spans.items():
            parts.append(
                f"| `{name}` | {row['count']} | {row['total_s']:.4f} "
                f"| {row['mean_s']:.4f} | {row['max_s']:.4f} |"
            )
        parts.append("")
    counters = document.get("counters", {})
    if counters:
        parts.append("## Counters\n")
        parts.append("| series | value |")
        parts.append("|---|---:|")
        for key, value in counters.items():
            parts.append(f"| `{key}` | {_format_value(value)} |")
        parts.append("")
    gauges = document.get("gauges", {})
    if gauges:
        parts.append("## Gauges\n")
        parts.append("| series | value |")
        parts.append("|---|---:|")
        for key, value in gauges.items():
            parts.append(f"| `{key}` | {_format_value(value)} |")
        parts.append("")
    if log.profiles:
        parts.append("## Profile hotspots (cProfile, cumulative)\n")
        for record in log.profiles:
            parts.append(f"### {record.get('section', '?')}\n")
            for spot in record.get("hotspots", []):
                parts.append(
                    f"- `{spot['function']}` — cum {spot['cumtime_s']:.4f}s, "
                    f"tot {spot['tottime_s']:.4f}s, {spot['calls']} call(s)"
                )
            parts.append("")
    return "\n".join(parts).rstrip() + "\n"


# -- one-call run export ------------------------------------------------------


def export_run(
    telemetry_dir: str, output_dir: str | None = None
) -> dict[str, str]:
    """Export one run's telemetry directory into its artifact set.

    Reads ``<telemetry_dir>/spans.jsonl`` and writes, into
    ``output_dir`` (default: the telemetry directory itself):
    ``metrics.json``, ``metrics.prom`` and ``TELEMETRY.md``.  Returns
    ``{artifact name: path}``.
    """
    output_dir = output_dir or telemetry_dir
    log = read_span_log(os.path.join(telemetry_dir, SPAN_LOG_NAME))
    document = metrics_document(log)
    os.makedirs(output_dir, exist_ok=True)
    paths = {
        "metrics": os.path.join(output_dir, "metrics.json"),
        "prometheus": os.path.join(output_dir, "metrics.prom"),
        "summary": os.path.join(output_dir, "TELEMETRY.md"),
    }
    with open(paths["metrics"], "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    with open(paths["prometheus"], "w") as handle:
        handle.write(prometheus_text(document))
    with open(paths["summary"], "w") as handle:
        handle.write(summary_markdown(document, log))
    return paths


def validate_span_log(path: str) -> list[str]:
    """Schema-check every span record in a log; returns problems."""
    problems: list[str] = []
    log = read_span_log(path)
    if log.malformed:
        problems.append(f"{log.malformed} malformed line(s)")
    for record in log.spans:
        problems.extend(validate_span_record(record))
    return problems
