"""Telemetry activation: environment-driven, zero overhead when off.

One environment variable is the whole switch: ``REPRO_TELEMETRY=<dir>``
activates telemetry with that directory as the sink.  Using the
environment (rather than a passed-around handle) is deliberate — the
experiment runner and the replayer fan work out over
``ProcessPoolExecutor`` workers, which inherit the parent's
environment, so every process in a run writes into the same span log
without any instrumented API growing a ``telemetry=`` parameter.

Hot paths gate on :func:`active`::

    tel = active()
    if tel is not None:
        tel.inc("decode_records_total", len(batch))

which costs one ``os.environ`` lookup per *batch* when telemetry is
off — nothing is allocated, opened or imported.  The module-level
:func:`span` context manager is the same gate in scope form.

All processes append to one ``spans.jsonl`` (atomic ``O_APPEND`` line
writes); each process also appends cumulative metric snapshots
(``type: "metrics"`` records with a monotonic ``seq``) at every flush,
and the exporter keeps the last snapshot per process.  Worker entry
points flush explicitly at task end because forked pool children exit
via ``os._exit`` — ``atexit`` never runs there.
"""

from __future__ import annotations

import atexit
import os
import time
from contextlib import contextmanager

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_SPAN, SpanTracer

#: The activation switch: set to a directory path to enable telemetry.
ENV_DIR = "REPRO_TELEMETRY"

#: Span-log filename inside the telemetry directory.
SPAN_LOG_NAME = "spans.jsonl"


class Telemetry:
    """One process's telemetry handle: a registry plus a span tracer."""

    def __init__(self, directory: str):
        self.directory = directory
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(os.path.join(directory, SPAN_LOG_NAME))
        self._snapshot_seq = 0

    # -- instruments ---------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        self.registry.inc(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.registry.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.observe(name, value, **labels)

    @contextmanager
    def span(self, name: str, **attrs):
        span = self.tracer.start(name, attrs)
        try:
            yield span
        finally:
            self.tracer.finish(span)

    # -- persistence ---------------------------------------------------------

    def flush(self) -> None:
        """Append this process's cumulative metric snapshot + any
        buffered spans.  Safe to call repeatedly: snapshots carry a
        monotonic ``seq`` and the exporter keeps the last per pid."""
        if self.registry:
            self._snapshot_seq += 1
            self.tracer.write_record(
                {
                    "type": "metrics",
                    "pid": os.getpid(),
                    "seq": self._snapshot_seq,
                    "ts": time.time(),
                    "metrics": self.registry.snapshot(),
                }
            )
        self.tracer.flush()

    def close(self) -> None:
        self.flush()
        self.tracer.close()


_active: Telemetry | None = None
_atexit_registered = False


def active() -> Telemetry | None:
    """The process's telemetry handle, or ``None`` when disabled.

    Resolution is by environment on every call, so enabling or moving
    the sink between runs (tests, long-lived sessions) needs no cache
    invalidation; the disabled path is one dict lookup.
    """
    global _active, _atexit_registered
    directory = os.environ.get(ENV_DIR)
    if not directory:
        return None
    if _active is None or _active.directory != directory:
        _active = Telemetry(directory)
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(_atexit_flush)
    return _active


def _atexit_flush() -> None:
    if _active is not None:
        _active.close()


def configure(directory: str, fresh: bool = False) -> Telemetry:
    """Enable telemetry for this process *and its children* by setting
    :data:`ENV_DIR`.  ``fresh`` truncates an existing span log, so an
    explicitly requested run starts a clean capture."""
    os.makedirs(directory, exist_ok=True)
    if fresh:
        log = os.path.join(directory, SPAN_LOG_NAME)
        if os.path.exists(log):
            os.remove(log)
    os.environ[ENV_DIR] = directory
    handle = active()
    assert handle is not None
    return handle


def shutdown() -> None:
    """Flush and disable (primarily for tests): drops the env switch."""
    global _active
    if _active is not None:
        _active.close()
        _active = None
    os.environ.pop(ENV_DIR, None)


def flush() -> None:
    """Flush the active handle, if any (worker task boundaries)."""
    if _active is not None:
        _active.flush()


@contextmanager
def span(name: str, **attrs):
    """Module-level span scope: a real span when telemetry is active,
    :data:`~repro.telemetry.spans.NULL_SPAN` otherwise."""
    tel = active()
    if tel is None:
        yield NULL_SPAN
        return
    with tel.span(name, **attrs) as open_span:
        yield open_span


def traced(name: str, **attrs):
    """Decorator form of :func:`span`."""

    def decorate(func):
        def wrapper(*args, **kwargs):
            with span(name, **attrs):
                return func(*args, **kwargs)

        wrapper.__name__ = getattr(func, "__name__", "wrapper")
        wrapper.__doc__ = func.__doc__
        return wrapper

    return decorate
