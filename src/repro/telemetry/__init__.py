"""Telemetry: spans, metrics and profiling for the replay stack.

The subsystem is three small layers:

* :mod:`repro.telemetry.metrics` — the in-process metrics registry
  (counters, gauges, histograms with labels);
* :mod:`repro.telemetry.spans` — the span tracer writing one shared
  JSONL log (``spans.jsonl``) per run, safe across pool workers;
* :mod:`repro.telemetry.runtime` — the activation switch: telemetry is
  **off unless** ``$REPRO_TELEMETRY`` names a sink directory, and the
  disabled path costs one dict lookup per instrumented batch.

On top sit the exporters (:mod:`repro.telemetry.export` —
``metrics.json``, Prometheus text format, the ``TELEMETRY.md`` run
summary), the opt-in per-section cProfile hooks
(:mod:`repro.telemetry.profiler`) and the ``python -m repro telemetry``
CLI (:mod:`repro.telemetry.__main__`).

Instrumented code uses the module-level helpers::

    from repro import telemetry

    tel = telemetry.active()
    if tel is not None:
        tel.inc("decode_records_total", len(batch))

    with telemetry.span("replay/timing", engine=engine) as sp:
        ...
        sp.set("touches", touches)

Telemetry never touches deterministic artifacts: ``results/*.json`` and
``EXPERIMENTS.md`` are byte-identical with telemetry on or off (pinned
by ``tests/telemetry/test_pipeline_determinism.py``).  See
``docs/OBSERVABILITY.md`` for the metric catalogue and span schema.
"""

from repro.telemetry.runtime import (
    ENV_DIR,
    SPAN_LOG_NAME,
    Telemetry,
    active,
    configure,
    flush,
    shutdown,
    span,
    traced,
)

__all__ = [
    "ENV_DIR",
    "SPAN_LOG_NAME",
    "Telemetry",
    "active",
    "configure",
    "flush",
    "shutdown",
    "span",
    "traced",
]
