"""The metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` lives per process (owned by the telemetry
runtime, :mod:`repro.telemetry.runtime`).  Series are keyed by
``(name, labels)``; the registry never allocates anything on the read
path of a disabled run — instruments exist only while telemetry is on.

The registry is deliberately tiny: plain dicts, no background threads,
no dependency beyond the standard library.  Snapshots are cumulative
per process; the exporter (:mod:`repro.telemetry.export`) merges the
*last* snapshot of every process, so flushing repeatedly is safe.
"""

from __future__ import annotations

import threading

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: 100 µs batch kernels to minutes-scale sections).  The implicit
#: +inf bucket is the final ``counts`` slot.
DEFAULT_BUCKETS = (
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


def series_key(name: str, labels: dict[str, object] | None) -> str:
    """Canonical flat key for one series: ``name{k="v",...}``.

    Prometheus exposition syntax, reused as the JSON object key in
    ``metrics.json`` so both exports address series identically.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count", "low", "high")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0
        self.low = float("inf")
        self.high = float("-inf")

    def observe(self, value: float) -> None:
        slot = 0
        for bound in self.buckets:
            if value <= bound:
                break
            slot += 1
        self.counts[slot] += 1
        self.total += value
        self.count += 1
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.low,
            "max": self.high,
        }


class MetricsRegistry:
    """Counters, gauges and histograms for one process.

    All mutators take the metric name plus keyword labels::

        registry.inc("decode_records_total", 4096, container="caltrc02")
        registry.set_gauge("runner_jobs", 4)
        registry.observe("section_seconds", 1.73, section="fig10")

    Thread-safe via one lock; the hot paths call these once per *batch*
    (thousands of records), so contention is negligible.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def inc(self, name: str, value: float = 1, **labels) -> None:
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> None:
        key = series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(buckets)
            histogram.observe(value)

    def snapshot(self) -> dict:
        """Cumulative state of every series, JSON-ready."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: histogram.to_dict()
                    for key, histogram in self._histograms.items()
                },
            }

    def __bool__(self) -> bool:
        with self._lock:
            return bool(
                self._counters or self._gauges or self._histograms
            )
