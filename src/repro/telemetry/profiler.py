"""Opt-in per-section cProfile hooks: ``repro run --profile-sections``.

Profiling rides on the telemetry runtime: each profiled scope dumps raw
``pstats`` under ``<telemetry dir>/profiles/`` and appends a
``type: "profile"`` record — the top-N cumulative hotspots — to the
span log, where the exporters and ``repro telemetry summarize`` pick it
up.  Without an active telemetry sink the context manager is a no-op,
so the hooks obey the same zero-overhead-when-off contract as every
other instrument.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import re
from contextlib import contextmanager

from repro.telemetry.runtime import active

#: Hotspots reported per profiled scope.
PROFILE_TOP_N = 10

#: Subdirectory (inside the telemetry sink) for raw pstats dumps.
PROFILES_DIR = "profiles"


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "scope"


def top_hotspots(
    profiler: cProfile.Profile, limit: int = PROFILE_TOP_N
) -> list[dict]:
    """The profiler's top functions by cumulative time, JSON-shaped."""
    stats = pstats.Stats(profiler)
    rows = []
    for func, (calls, _primitive, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        filename, line, name = func
        location = (
            name if filename == "~" else f"{filename}:{line}({name})"
        )
        rows.append(
            {
                "function": location,
                "calls": calls,
                "tottime_s": tottime,
                "cumtime_s": cumtime,
            }
        )
    rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return rows[:limit]


@contextmanager
def profiled_section(name: str, enabled: bool = True):
    """Profile one section under cProfile when telemetry is active.

    Dumps ``profiles/<name>.pstats`` into the telemetry sink and
    appends the hotspot record to the span log.  ``enabled=False`` (or
    no active telemetry) yields straight through with no profiler
    installed.
    """
    tel = active()
    if not enabled or tel is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        directory = os.path.join(tel.directory, PROFILES_DIR)
        os.makedirs(directory, exist_ok=True)
        stats_path = os.path.join(directory, f"{_safe_name(name)}.pstats")
        profiler.dump_stats(stats_path)
        tel.tracer.write_record(
            {
                "type": "profile",
                "section": name,
                "pid": os.getpid(),
                "stats_path": stats_path,
                "hotspots": top_hotspots(profiler),
            }
        )
        tel.flush()
