"""The span tracer: timed scopes appended to a JSONL span log.

A *span* is one named, timed scope — a section, a replay pass, a corpus
recording — opened as a context manager (or via the :func:`traced`
decorator) and written as a single JSON line when it closes.  Records
carry the process id, a per-process sequence number and the enclosing
span's sequence number, so a run's log reconstructs into per-process
trees even when experiment workers and the parent interleave writes.

Every line lands through one ``O_APPEND`` write, which POSIX keeps
contiguous for regular files — concurrent writers (pool workers sharing
the log) can interleave *lines* but never tear one.

Span record schema (``repro-span/v1``)::

    {"type": "span", "name": "...", "pid": 1234, "id": 7, "parent": 3,
     "ts": 1754640000.1, "duration_s": 0.0421, "attrs": {...}}

Metric-snapshot records (``type: "metrics"``) share the file; see
:mod:`repro.telemetry.runtime`.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Schema id stamped into exported documents that embed span records.
SPAN_SCHEMA = "repro-span/v1"

#: Keys every span record must carry (the validation contract).
SPAN_REQUIRED_KEYS = (
    "type", "name", "pid", "id", "parent", "ts", "duration_s", "attrs",
)

#: Buffered lines before an automatic flush.
_FLUSH_EVERY = 128


class Span:
    """One open scope.  ``set(key, value)`` attaches attributes computed
    inside the scope (record counts, engines) before the span closes."""

    __slots__ = ("name", "attrs", "_started", "_sequence", "_parent")

    def __init__(self, name: str, attrs: dict, sequence: int, parent):
        self.name = name
        self.attrs = attrs
        self._sequence = sequence
        self._parent = parent
        self._started = time.perf_counter()

    def set(self, key: str, value) -> None:
        self.attrs[key] = value


class _NullSpan:
    """The disabled-telemetry stand-in: accepts ``set()`` and vanishes."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Writes span records for one process into a shared JSONL log."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sequence = 0
        self._buffer: list[str] = []
        self._fd: int | None = None

    # -- the scope API -----------------------------------------------------

    def start(self, name: str, attrs: dict) -> Span:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        parent = stack[-1]._sequence if stack else None
        span = Span(name, attrs, sequence, parent)
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        duration = time.perf_counter() - span._started
        stack = self._local.stack
        if stack and stack[-1] is span:
            stack.pop()
        self.write_record(
            {
                "type": "span",
                "name": span.name,
                "pid": os.getpid(),
                "id": span._sequence,
                "parent": span._parent,
                "ts": time.time() - duration,
                "duration_s": duration,
                "attrs": span.attrs,
            }
        )

    # -- the line writer -----------------------------------------------------

    def write_record(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._buffer.append(line)
            if len(self._buffer) >= _FLUSH_EVERY:
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        if self._fd is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        payload = "".join(self._buffer).encode()
        self._buffer.clear()
        os.write(self._fd, payload)

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


def validate_span_record(record: dict) -> list[str]:
    """Schema-check one span record; returns problem descriptions."""
    problems = []
    for key in SPAN_REQUIRED_KEYS:
        if key not in record:
            problems.append(f"span record missing key {key!r}")
    if record.get("type") != "span":
        problems.append(f"not a span record: type={record.get('type')!r}")
    if not isinstance(record.get("attrs", {}), dict):
        problems.append("span attrs is not an object")
    for key in ("ts", "duration_s"):
        if key in record and not isinstance(record[key], (int, float)):
            problems.append(f"span {key} is not numeric")
    return problems
