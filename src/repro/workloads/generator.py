"""Synthetic trace generation and fast cache-timing runs.

This is the engine behind every timing figure (4, 10, 11, 12).  For one
benchmark profile and one *scenario* (insertion policy + whether CFORM
instructions are issued) it synthesises the benchmark's memory behaviour
and plays it through the tag-only cache hierarchy:

1. a heap population is built from the profile's object mix (structs from
   the corpus pool and raw buffers), laid out by a bump/free-list
   allocator with quarantine — under a padding policy the same logical
   objects simply occupy more bytes, which is the entire mechanism behind
   the paper's "ineffective cache usage" slowdowns;
2. a seeded access stream walks the objects (zipf-style locality, scans
   vs. pointer-ish random field accesses, a hot stack region);
3. allocation/free events occur at the profile's rate; when the scenario
   says so, each event issues the CFORM work for its object (one
   store-like access per to-be-califormed line plus setup instructions —
   the same emulation the paper uses with dummy stores, Section 8.2).

The same seed produces the *same logical event stream* across scenarios,
so two runs differ only through layout inflation and CFORM work — the two
effects the paper decomposes in Figure 11.

The generator is also the producer for the trace engine
(:mod:`repro.traces`): pass a recording ``sink`` to :func:`run_trace`
and the exact event stream (every cache touch, CFORM, alloc/free and
the warmup boundary) is emitted as ``EV_*`` records, from which a
replayer reproduces this run's statistics bit-identically without the
RNG or the heap.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.cpu.pipeline import MemoryEventCounts, PipelineModel
from repro.memory.cache import TagOnlyCache
from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.softstack.ctypes_model import Struct, align_up, is_blacklist_target
from repro.softstack.insertion import (
    CaliformedLayout,
    Policy,
    apply_policy,
    fixed_full,
    opportunistic,
)
from repro.softstack.layout import layout_struct
from repro.workloads.specs import BenchmarkProfile
from repro.workloads.structs_corpus import HEAP_TYPE_POOL

#: Instructions of bookkeeping per CFORM instruction (address arithmetic,
#: mask construction) — Section 8.2's "calculate the number of dummy
#: stores and the address they access".
CFORM_SETUP_INSTRUCTIONS = 6

# -- recorded event stream ---------------------------------------------------
#
# The generator is the producer of the trace-engine event stream
# (``repro.traces``), so the event kinds are defined here and re-exported
# by ``repro.traces.format``.  One LOAD/STORE event per cache touch; one
# CFORM event per (de)allocation-side califorming (it expands to
# ``lines`` line touches at replay); ALLOC/FREE carry no touches; WARM
# marks the end-of-warmup counter reset; EPOCH markers are inserted by
# the recording sink between bursts and delimit shard boundaries.
EV_LOAD = 0
EV_STORE = 1
EV_ALLOC = 2
EV_FREE = 3
EV_CFORM = 4
EV_WARM = 5
EV_EPOCH = 6

#: Fixed per-allocation-event hook cost when CFORM support is compiled in
#: (malloc interposition, type-info lookup, locating the padding bytes).
#: Calibrated against the opportunistic+CFORM average of Figure 11.
ALLOC_HOOK_INSTRUCTIONS = 55

_HEAP_BASE = 0x0100_0000
_STACK_BASE = 0x7FFF_0000
_STACK_HOT_BYTES = 2048


@dataclass(frozen=True)
class Scenario:
    """One software configuration of Figures 4/11/12.

    ``policy`` is ``None`` for the unprotected baseline, a
    :class:`Policy` for the three paper policies, or ``("fixed", n)`` for
    the Figure 4 fixed-padding sweep.  ``with_cform`` selects whether the
    allocation hooks issue CFORM work (the "CFORM" bars of Figure 11/12).
    """

    policy: Policy | tuple[str, int] | None = None
    with_cform: bool = False
    min_bytes: int = 1
    max_bytes: int = 7
    binary_seed: int = 0

    @classmethod
    def baseline(cls) -> "Scenario":
        return cls(policy=None, with_cform=False)

    def describe(self) -> str:
        if self.policy is None:
            name = "baseline"
        elif isinstance(self.policy, tuple):
            name = f"fixed-{self.policy[1]}B"
        else:
            name = f"{self.policy.value} {self.min_bytes}-{self.max_bytes}B"
        return name + (" +CFORM" if self.with_cform else "")


@dataclass(frozen=True)
class _TypeInfo:
    """Precomputed per-type facts for one scenario."""

    size: int
    carved: int
    field_offsets: tuple[int, ...]
    cform_lines: int  # lines containing security bytes
    #: Whether (de)allocations of this type run the CFORM hook at all.
    #: Opportunistic/full hook every compound type ("every compound data
    #: type will be/was califormed", Section 8.2); intelligent compiles
    #: hooks only for types that actually received spans.
    hooked: bool = False


@dataclass
class RunResult:
    """Outcome of one trace run, ready for the pipeline model."""

    benchmark: str
    scenario: Scenario
    instructions: int
    events: MemoryEventCounts
    cform_instructions: int = 0
    alloc_events: int = 0

    def cycles(self, config: HierarchyConfig, profile: BenchmarkProfile) -> float:
        model = PipelineModel(
            config, base_cpi=profile.base_cpi, overlap=profile.overlap
        )
        return model.cycles(self.instructions, self.events)


def _layout_for(
    struct: Struct, scenario: Scenario, rng: random.Random
) -> CaliformedLayout:
    natural = layout_struct(struct)
    if scenario.policy is None:
        return opportunistic(natural)  # offsets unchanged; spans unused
    if isinstance(scenario.policy, tuple):
        return fixed_full(natural, scenario.policy[1])
    return apply_policy(
        natural, scenario.policy, rng, scenario.min_bytes, scenario.max_bytes
    )


def _security_line_count(layout: CaliformedLayout, counts: bool) -> int:
    """Lines containing at least one security byte (base assumed aligned).

    This is the paper's CFORM cost unit: one dummy store per
    to-be-califormed cache line (Section 8.2).
    """
    if not counts:
        return 0
    lines = {offset // 64 for span in layout.spans for offset in
             (span.offset, span.end - 1)}
    return len(lines)


def build_type_catalog(scenario: Scenario) -> list[_TypeInfo]:
    """Materialise the heap type pool under one scenario."""
    rng = random.Random(f"catalog:{scenario.binary_seed}")
    catalog: list[_TypeInfo] = []
    for struct in HEAP_TYPE_POOL:
        protected = scenario.policy is not None
        layout = _layout_for(struct, scenario, rng)
        size = layout.size if protected else layout.base.size
        offsets = tuple(
            layout.field_offsets[member.name] if protected
            else layout.base.offset_of(member.name)
            for member in struct.fields
        )
        cform_lines = _security_line_count(layout, protected)
        hooked = protected and (
            cform_lines > 0 or scenario.policy is not Policy.INTELLIGENT
        )
        catalog.append(
            _TypeInfo(
                size=size,
                carved=align_up(size, 16),
                field_offsets=offsets,
                cform_lines=cform_lines,
                hooked=hooked,
            )
        )
    return catalog


#: Indices into HEAP_TYPE_POOL of types containing arrays/pointers.
_PTR_ARRAY_TYPE_INDICES = [
    index
    for index, struct in enumerate(HEAP_TYPE_POOL)
    if any(is_blacklist_target(member.ctype) for member in struct.fields)
]
_PLAIN_TYPE_INDICES = [
    index
    for index in range(len(HEAP_TYPE_POOL))
    if index not in _PTR_ARRAY_TYPE_INDICES
]


@dataclass
class _FastHeap:
    """Address-only bump allocator with size-class reuse and quarantine.

    The quarantine depth trades temporal-safety window for address reuse;
    16 events keeps reuse healthy so that allocation churn exercises the
    cache ladder rather than degenerating into a cold-miss generator.
    """

    cursor: int = _HEAP_BASE
    quarantine_delay: int = 16
    _free: dict[int, deque] = field(default_factory=dict)
    _quarantine: deque = field(default_factory=deque)

    def place(self, carved: int) -> int:
        bucket = self._free.get(carved)
        if bucket:
            return bucket.popleft()
        address = self.cursor
        self.cursor += carved
        return address

    def release(self, address: int, carved: int) -> None:
        self._quarantine.append((address, carved))
        if len(self._quarantine) > self.quarantine_delay:
            old_address, old_carved = self._quarantine.popleft()
            self._free.setdefault(old_carved, deque()).append(old_address)


def run_trace(
    profile: BenchmarkProfile,
    scenario: Scenario,
    instructions: int = 200_000,
    seed: int = 0,
    config: HierarchyConfig = WESTMERE,
    warmup_fraction: float = 1.0,
    sink=None,
    quarantine_delay: int = 16,
) -> RunResult:
    """Simulate one benchmark run under one scenario.

    ``config`` affects only which geometries the tag caches use; latency
    knobs are applied later by the pipeline model, so Figure 10 can reuse
    one run's event counts under two latency configs.

    ``warmup_fraction`` x ``instructions`` of extra work runs first with
    statistics discarded, so measured numbers reflect warm caches rather
    than cold-start effects — the role SimPoint region selection plays in
    the paper's methodology (Section 8.1).

    ``sink`` is the trace-engine tap (``repro.traces``): an object with
    ``append(kind, address, arg)`` and ``burst()`` methods receiving the
    ``EV_*`` event stream.  When ``None`` (the default) the un-instrumented
    touch functions are used and the run costs nothing extra.  The sink
    must not consume ``rng`` — the recorded run must be bit-identical to
    an unrecorded one.

    ``quarantine_delay`` sizes the allocator's deallocation quarantine
    (events held before an address becomes reusable); the default matches
    the historical built-in.
    """
    rng = random.Random(f"{profile.name}:{seed}")
    catalog = build_type_catalog(scenario)
    baseline_catalog = (
        catalog
        if scenario.policy is None
        else build_type_catalog(Scenario.baseline())
    )

    l1 = TagOnlyCache(config.l1_geometry)
    l2 = TagOnlyCache(config.l2_geometry)
    l3 = TagOnlyCache(config.l3_geometry)

    def touch(address: int) -> None:
        if not l1.access(address):
            if not l2.access(address):
                l3.access(address)

    # Recording wrappers: when no sink is attached these *are* ``touch``,
    # so the hot loops pay nothing; with a sink each touch first appends
    # its event so a replayer can reproduce the exact access sequence.
    if sink is None:
        record = None
        touch_load = touch_store = touch
    else:
        record = sink.append

        def touch_load(address: int) -> None:
            record(EV_LOAD, address, 8)
            touch(address)

        def touch_store(address: int) -> None:
            record(EV_STORE, address, 8)
            touch(address)

    # -- heap population ----------------------------------------------------
    # The live set targets ``heap_kb`` at *baseline* sizes, so every
    # scenario simulates the same logical objects; protected layouts then
    # inflate the same population.
    heap = _FastHeap(quarantine_delay=quarantine_delay)
    objects: list[tuple[int, int, int]] = []  # (address, type_index, raw_size)
    baseline_bytes = 0
    target_bytes = profile.heap_kb * 1024
    while baseline_bytes < target_bytes:
        if rng.random() < profile.struct_fraction:
            pool = (
                _PTR_ARRAY_TYPE_INDICES
                if rng.random() < profile.ptr_array_fraction
                else _PLAIN_TYPE_INDICES
            )
            type_index = pool[rng.randrange(len(pool))]
            objects.append((heap.place(catalog[type_index].carved), type_index, 0))
            baseline_bytes += baseline_catalog[type_index].carved
        else:
            raw = int(profile.raw_buffer_bytes * (0.5 + rng.random()))
            raw = max(raw, 16)
            objects.append((heap.place(align_up(raw, 16)), -1, raw))
            baseline_bytes += align_up(raw, 16)

    # Pre-warm: touch every line of every live object once, so measured
    # misses reflect capacity and conflict behaviour rather than
    # first-touch cold misses (which the paper's 500M-instruction
    # SimPoint windows amortise away, but a short trace would not).
    for address, type_index, raw_size in objects:
        size = raw_size if type_index < 0 else catalog[type_index].size
        for line_offset in range(0, max(size, 1), 64):
            touch_load(address + line_offset)

    object_count = len(objects)
    skew_exponent = 1.0 / profile.locality_skew

    # Application instructions are the *fixed logical workload*: every
    # scenario executes the same bursts and allocation events.  CFORM and
    # hook work rides on top as overhead instructions, so slowdowns
    # measure extra work rather than displaced work.
    app_instructions = 0.0
    overhead_instructions = 0.0
    cform_instructions = 0
    alloc_events = 0
    alloc_accumulator = 0.0
    burst_instructions = profile.burst_length / profile.mem_ratio

    def cform_object(address: int, lines: int) -> None:
        """Issue the CFORM work for one (de)allocation of an object."""
        nonlocal cform_instructions, overhead_instructions
        if record is not None:
            record(EV_CFORM, address, lines)
        for line_index in range(lines):
            touch(address + line_index * 64)
        cform_instructions += lines
        overhead_instructions += lines * (1 + CFORM_SETUP_INSTRUCTIONS)

    warmup_budget = instructions * warmup_fraction
    total_budget = warmup_budget + instructions
    warm = warmup_fraction == 0.0

    # -- main loop --------------------------------------------------------------
    while app_instructions < total_budget:
        if not warm and app_instructions >= warmup_budget:
            # Warmup ends: keep cache contents, discard all statistics.
            warm = True
            l1.reset_counters()
            l2.reset_counters()
            l3.reset_counters()
            app_instructions -= warmup_budget
            total_budget -= warmup_budget
            overhead_instructions = 0.0
            cform_instructions = 0
            alloc_events = 0
            if record is not None:
                record(EV_WARM, 0, 0)
        app_instructions += burst_instructions

        target = rng.random()
        if target < profile.stack_fraction:
            base = _STACK_BASE + int(rng.random() * _STACK_HOT_BYTES)
            for access in range(profile.burst_length):
                touch_store(base + access * 8)
        else:
            index = int(object_count * rng.random() ** skew_exponent)
            address, type_index, raw_size = objects[
                min(index, object_count - 1)
            ]
            if rng.random() < profile.scan_fraction:
                size = (
                    raw_size if type_index < 0 else catalog[type_index].size
                )
                for access in range(profile.burst_length):
                    touch_load(address + (access * 8) % max(size, 8))
            else:
                if type_index < 0:
                    span = max(raw_size - 8, 1)
                    for access in range(profile.burst_length):
                        touch_load(address + int(rng.random() * span))
                else:
                    offsets = catalog[type_index].field_offsets
                    for access in range(profile.burst_length):
                        touch_load(address + offsets[rng.randrange(len(offsets))])

        # Allocation/free churn at the profile's rate.
        alloc_accumulator += profile.allocs_per_kinst * burst_instructions / 1000.0
        while alloc_accumulator >= 1.0:
            alloc_accumulator -= 1.0
            alloc_events += 1
            victim = rng.randrange(object_count)
            address, type_index, raw_size = objects[victim]
            if type_index < 0:
                carved = align_up(raw_size, 16)
                heap.release(address, carved)
                new_address = heap.place(carved)
                if record is not None:
                    record(EV_FREE, address, carved)
                    record(EV_ALLOC, new_address, carved)
                objects[victim] = (new_address, -1, raw_size)
                continue
            info = catalog[type_index]
            run_hook = scenario.with_cform and info.hooked
            if run_hook:
                overhead_instructions += ALLOC_HOOK_INSTRUCTIONS
                cform_object(address, info.cform_lines)  # free side
            if record is not None:
                record(EV_FREE, address, info.carved)
            heap.release(address, info.carved)
            new_address = heap.place(info.carved)
            if record is not None:
                record(EV_ALLOC, new_address, info.carved)
            if run_hook:
                cform_object(new_address, info.cform_lines)  # alloc side
            objects[victim] = (new_address, type_index, 0)

        if sink is not None:
            sink.burst()

    return RunResult(
        benchmark=profile.name,
        scenario=scenario,
        instructions=int(app_instructions + overhead_instructions),
        events=MemoryEventCounts(
            l1_accesses=l1.accesses,
            l1_misses=l1.misses,
            l2_misses=l2.misses,
            l3_misses=l3.misses,
        ),
        cform_instructions=cform_instructions,
        alloc_events=alloc_events,
    )


def slowdown(
    profile: BenchmarkProfile,
    scenario: Scenario,
    instructions: int = 200_000,
    seed: int = 0,
    baseline_config: HierarchyConfig = WESTMERE,
    variant_config: HierarchyConfig | None = None,
) -> float:
    """Relative slowdown of ``scenario`` over the unprotected baseline.

    0.03 means 3 % slower.  ``variant_config`` lets Figure 10 charge the
    variant different latencies for the *same* scenario.
    """
    base = run_trace(profile, Scenario.baseline(), instructions, seed)
    variant = run_trace(profile, scenario, instructions, seed)
    base_cycles = base.cycles(baseline_config, profile)
    variant_cycles = variant.cycles(variant_config or baseline_config, profile)
    return variant_cycles / base_cycles - 1.0
