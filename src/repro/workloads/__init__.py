"""Synthetic SPEC CPU2006-like workloads and struct corpora.

* :mod:`repro.workloads.specs` — per-benchmark behavioural profiles.
* :mod:`repro.workloads.generator` — trace synthesis + cache timing runs.
* :mod:`repro.workloads.structs_corpus` — the Figure 3 census corpora and
  the heap type pool the traces allocate from.
"""

from repro.workloads.generator import (
    RunResult,
    Scenario,
    build_type_catalog,
    run_trace,
    slowdown,
)
from repro.workloads.specs import (
    FIG10_BENCHMARKS,
    FIG11_BENCHMARKS,
    SPEC_PROFILES,
    BenchmarkProfile,
    profile,
)
from repro.workloads.structs_corpus import (
    HEAP_TYPE_POOL,
    SPEC_PROFILE,
    V8_PROFILE,
    CorpusProfile,
    generate_corpus,
    spec_corpus,
    v8_corpus,
)

__all__ = [
    "Scenario",
    "RunResult",
    "run_trace",
    "slowdown",
    "build_type_catalog",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "FIG10_BENCHMARKS",
    "FIG11_BENCHMARKS",
    "profile",
    "CorpusProfile",
    "SPEC_PROFILE",
    "V8_PROFILE",
    "spec_corpus",
    "v8_corpus",
    "generate_corpus",
    "HEAP_TYPE_POOL",
]
