"""Behavioural profiles for the SPEC CPU2006-like benchmark suite.

The paper evaluates on SPEC CPU2006 with ref inputs; offline we replace
each benchmark with a synthetic profile capturing the properties its
results depend on (DESIGN.md substitution 1):

* how much live heap it keeps and in what kinds of objects,
* how often it allocates/frees (the CFORM cost driver),
* how its accesses are distributed (locality → cache behaviour),
* how memory-bound the core is (overlap factor → stall sensitivity).

The constants are set from the public characterisation of the suite
(``mcf``/``milc``/``lbm`` memory-bound, ``perlbench``/``xalancbmk``
malloc-intensive, ``hmmer``/``namd``/``sjeng`` compute-bound, ...) and
lightly calibrated so the *baseline* behaviour is plausible; all Califorms
effects are then emergent from the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic stand-in for one SPEC CPU2006 benchmark."""

    name: str
    #: Live heap size in KB under the *unprotected* layout.  This pins the
    #: benchmark's position on the 32KB/256KB/2MB cache ladder, which is
    #: what determines its sensitivity to layout inflation and to the
    #: Figure 10 latency bump.  The object count is derived from this at
    #: baseline sizes, so every scenario simulates the same objects.
    heap_kb: int
    #: Allocation+free *pairs* per 1000 instructions.
    allocs_per_kinst: float
    #: Fraction of dynamic instructions that access memory.
    mem_ratio: float
    #: Object-selection skew in (0, 1]: smaller = hotter working set.
    locality_skew: float
    #: Fraction of access bursts that sequentially scan an object.
    scan_fraction: float
    #: Accesses per burst.
    burst_length: int
    #: Fraction of bursts that hit the (hot, small) stack region.
    stack_fraction: float
    #: Fraction of heap objects that are compound types (structs); the
    #: rest are raw buffers which insertion policies do not touch.
    struct_fraction: float
    #: Of the struct objects, fraction whose type contains arrays or
    #: pointers (the intelligent policy's targets).
    ptr_array_fraction: float
    #: Typical raw-buffer size in bytes (arrays, I/O buffers).
    raw_buffer_bytes: int
    #: Memory-level-parallelism divisor for the pipeline model (lower =
    #: misses hurt more, e.g. pointer chasing).
    overlap: float
    #: Baseline CPI of the non-stalled core.
    base_cpi: float


def _p(
    name,
    heap_kb,
    allocs_per_kinst,
    mem_ratio,
    locality_skew,
    scan_fraction,
    burst_length,
    stack_fraction,
    struct_fraction,
    ptr_array_fraction,
    raw_buffer_bytes,
    overlap,
    base_cpi,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        heap_kb=heap_kb,
        allocs_per_kinst=allocs_per_kinst,
        mem_ratio=mem_ratio,
        locality_skew=locality_skew,
        scan_fraction=scan_fraction,
        burst_length=burst_length,
        stack_fraction=stack_fraction,
        struct_fraction=struct_fraction,
        ptr_array_fraction=ptr_array_fraction,
        raw_buffer_bytes=raw_buffer_bytes,
        overlap=overlap,
        base_cpi=base_cpi,
    )


#: All 19 benchmarks evaluated in Figure 10.
SPEC_PROFILES: dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        #    name       heapKB al/ki  mem   skew  scan  bl  stk  strct ptr   raw    ovl  cpi
        _p("astar",   800,  2.5, 0.38, 0.35, 0.25,  6, 0.20, 0.50, 0.35,   256, 3.7, 0.80),
        _p("bzip2",  2048,  0.8, 0.36, 0.40, 0.70, 12, 0.15, 0.15, 0.25,  8192, 5.8, 0.75),
        _p("dealII",  1500,  3.0, 0.40, 0.35, 0.35,  8, 0.20, 0.60, 0.30,   512, 4.6, 0.78),
        _p("gcc",  3000,  3.5, 0.40, 0.40, 0.30,  6, 0.25, 0.60, 0.30,   512, 4.2, 0.85),
        _p("gobmk",   160,  3.0, 0.34, 0.22, 0.30,  6, 0.35, 0.90, 0.85,   256, 5.1, 0.80),
        _p("h264ref",  1200,  5.0, 0.42, 0.55, 0.65, 12, 0.15, 0.60, 0.30,  2048, 3.8, 0.72),
        _p("hmmer",    96,  1.0, 0.40, 0.15, 0.55, 10, 0.40, 0.60, 0.20,   512, 6.0, 0.70),
        _p("lbm",  8192,  0.3, 0.42, 0.70, 0.90, 16, 0.05, 0.10, 0.15, 16384, 6.0, 0.72),
        _p("libquantum",  4096,  0.5, 0.35, 0.65, 0.85, 16, 0.10, 0.20, 0.20, 16384, 6.0, 0.74),
        _p("mcf",  3072,  1.5, 0.44, 0.70, 0.10,  4, 0.05, 0.45, 0.15,   256, 3.2, 0.90),
        _p("milc",  1600,  1.2, 0.42, 0.60, 0.75, 12, 0.05, 0.60, 0.15,  4096, 3.8, 0.76),
        _p("namd",   200,  0.8, 0.38, 0.25, 0.60, 10, 0.30, 0.75, 0.15,  1024, 6.0, 0.70),
        _p("omnetpp",  4096,  3.5, 0.41, 0.45, 0.15,  5, 0.15, 0.60, 0.30,   256, 3.5, 0.85),
        _p("perlbench",   700,  7.0, 0.40, 0.30, 0.25,  6, 0.30, 0.55, 0.28,   256, 4.6, 0.82),
        _p("povray",   120,  2.0, 0.37, 0.20, 0.40,  8, 0.35, 0.80, 0.25,   512, 6.0, 0.72),
        _p("sjeng",   100,  1.2, 0.33, 0.20, 0.30,  6, 0.40, 0.70, 0.30,   256, 5.8, 0.78),
        _p("soplex",  2560,  1.0, 0.43, 0.55, 0.70, 12, 0.10, 0.30, 0.15,  8192, 4.0, 0.80),
        _p("sphinx3",  1800,  1.5, 0.41, 0.50, 0.65, 10, 0.15, 0.45, 0.20,  4096, 4.5, 0.76),
        _p("xalancbmk",  8192,  4.5, 0.42, 0.80, 0.20,  5, 0.20, 0.50, 0.30,   256, 3.5, 0.88),
    ]
}

#: Figure 10's 19-benchmark set.
FIG10_BENCHMARKS: list[str] = sorted(SPEC_PROFILES)

#: Figures 11/12 drop dealII, omnetpp (library issues) and gcc (allocator
#: incompatibility) — Section 8.2's evaluation setup.
FIG11_BENCHMARKS: list[str] = [
    name for name in FIG10_BENCHMARKS if name not in ("dealII", "omnetpp", "gcc")
]


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by SPEC name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {FIG10_BENCHMARKS}"
        ) from None
