"""Struct corpora for the Figure 3 density census.

The paper runs a compiler pass over SPEC CPU2006 and the V8 JavaScript
engine, reporting that 45.7 % (SPEC) and 41.0 % (V8) of structs carry at
least one byte of alignment padding.  We have neither codebase's source
offline, so this module provides (DESIGN.md substitution 5):

* a **hand-written corpus** of struct shapes that actually occur in C
  programs of each flavour (list nodes, hash entries, tokens, headers,
  state blocks for SPEC; tagged values, hidden-class style objects and
  handles for V8), and
* a **seeded generator** that extends each corpus with random structs
  drawn from flavour-specific field-type distributions, calibrated so the
  padded fraction lands near the paper's numbers.

What the downstream experiment preserves is the *census shape*: the
fraction of padded structs and the density histogram of Figure 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.softstack.ctypes_model import (
    BOOL,
    CHAR,
    DOUBLE,
    FLOAT,
    FUNCTION_POINTER,
    INT,
    LONG,
    POINTER,
    SHORT,
    UNSIGNED_CHAR,
    UNSIGNED_INT,
    UNSIGNED_SHORT,
    Array,
    CType,
    Field,
    Struct,
)

# -- hand-written, domain-flavoured shapes ------------------------------------


def _s(name: str, *members: tuple[str, CType]) -> Struct:
    return Struct(name, tuple(Field(n, t) for n, t in members))


#: Struct shapes typical of the SPEC CPU2006 C/C++ code bases.
SPEC_HANDWRITTEN: list[Struct] = [
    _s("list_node", ("next", POINTER), ("prev", POINTER), ("value", INT)),
    _s("hash_entry", ("key", POINTER), ("hash", UNSIGNED_INT), ("chain", POINTER)),
    _s("token", ("kind", CHAR), ("flags", CHAR), ("position", INT), ("text", POINTER)),
    _s("arc", ("cost", LONG), ("tail", POINTER), ("head", POINTER),
       ("flow", LONG), ("ident", SHORT)),
    _s("node_t", ("potential", LONG), ("orientation", INT), ("child", POINTER),
       ("pred", POINTER), ("sibling", POINTER), ("basic_arc", POINTER),
       ("firstout", POINTER), ("firstin", POINTER), ("arc_tmp", POINTER),
       ("depth", INT), ("number", INT), ("time", INT)),
    _s("move_record", ("from_sq", CHAR), ("to_sq", CHAR), ("piece", CHAR),
       ("score", INT)),
    _s("board_state", ("squares", Array(CHAR, 64)), ("to_move", CHAR),
       ("castling", UNSIGNED_CHAR), ("ep_square", CHAR), ("hash", LONG)),
    _s("macroblock", ("mb_type", SHORT), ("qp", SHORT), ("cbp", INT),
       ("mvd", Array(SHORT, 16)), ("intra_pred_modes", Array(CHAR, 16))),
    _s("pixel_block", ("luma", Array(UNSIGNED_CHAR, 16)), ("stride", INT)),
    _s("hmm_state", ("transitions", Array(FLOAT, 4)), ("emission", POINTER),
       ("id", SHORT)),
    _s("lattice_site", ("field", Array(DOUBLE, 4)), ("parity", CHAR)),
    _s("grid_cell", ("velocity", Array(DOUBLE, 3)), ("density", DOUBLE),
       ("flags", UNSIGNED_CHAR)),
    _s("quantum_reg", ("width", INT), ("size", INT), ("hashw", INT),
       ("amplitudes", POINTER), ("hash", POINTER)),
    _s("search_node", ("f_cost", FLOAT), ("g_cost", FLOAT), ("parent", POINTER),
       ("state", POINTER), ("open", BOOL)),
    _s("bz_stream_state", ("next_in", POINTER), ("avail_in", UNSIGNED_INT),
       ("next_out", POINTER), ("avail_out", UNSIGNED_INT),
       ("state", POINTER), ("small", CHAR)),
    _s("perl_sv", ("any", POINTER), ("refcnt", UNSIGNED_INT),
       ("flags", UNSIGNED_INT)),
    _s("perl_hek", ("hash", UNSIGNED_INT), ("len", INT), ("key", Array(CHAR, 1))),
    _s("regexp_node", ("type", UNSIGNED_CHAR), ("flags", UNSIGNED_CHAR),
       ("next_off", UNSIGNED_SHORT), ("args", Array(INT, 1))),
    _s("ray", ("origin", Array(DOUBLE, 3)), ("direction", Array(DOUBLE, 3)),
       ("depth", INT)),
    _s("texture", ("type", SHORT), ("flags", UNSIGNED_SHORT),
       ("colour_map", POINTER), ("image", POINTER), ("gamma", FLOAT)),
    _s("simplex_row", ("index", INT), ("values", POINTER), ("nnz", INT),
       ("scale", DOUBLE)),
    _s("am_feature", ("frame", INT), ("score", FLOAT), ("active", BOOL)),
    _s("xml_attr", ("name", POINTER), ("value", POINTER), ("next", POINTER)),
    _s("xml_element", ("tag", POINTER), ("attrs", POINTER),
       ("n_children", SHORT), ("children", POINTER), ("parent", POINTER)),
    _s("go_group", ("stones", SHORT), ("liberties", SHORT), ("origin", INT),
       ("colour", CHAR)),
    _s("event_msg", ("kind", INT), ("priority", CHAR), ("payload", POINTER),
       ("timestamp", DOUBLE)),
    _s("fe_element", ("nodes", Array(INT, 8)), ("material", SHORT),
       ("jacobian", DOUBLE)),
    _s("atom", ("position", Array(DOUBLE, 3)), ("charge", FLOAT),
       ("type_id", SHORT)),
    _s("packed_coords", ("x", INT), ("y", INT)),  # dense on purpose
    _s("dense_pair", ("a", LONG), ("b", LONG)),
    _s("dense_vec3", ("v", Array(DOUBLE, 3))),
    _s("dense_counters", ("hits", LONG), ("misses", LONG), ("total", LONG)),
    # Larger scalar-only state blocks (solver/codec/simulation state): the
    # pointer-free side of real heaps is not all 16-byte records.
    _s("stats_block", *[(f"s{i}", LONG) for i in range(12)]),
    _s("matrix4", *[(f"m{i}{j}", DOUBLE) for i in range(4) for j in range(4)]),
    _s("config_block",
       *[(f"opt{i}", INT) for i in range(20)],
       *[(f"threshold{i}", DOUBLE) for i in range(4)]),
    _s("accumulator_bank", *[(f"acc{i}", LONG) for i in range(16)]),
    _s("profile_counters", *[(f"evt{i}", LONG) for i in range(24)]),
    _s("filter_state",
       ("gain", DOUBLE), ("phase", DOUBLE),
       *[(f"tap{i}", FLOAT) for i in range(24)],
       ("order", INT), ("warmup", INT)),
]

#: Struct/class shapes typical of the V8 JavaScript engine (pointer-rich,
#: tagged-value heavy, mostly word-aligned hence somewhat denser).
V8_HANDWRITTEN: list[Struct] = [
    _s("js_object_header", ("map", POINTER), ("properties", POINTER),
       ("elements", POINTER)),
    _s("heap_number", ("map", POINTER), ("value", DOUBLE)),
    _s("js_string", ("map", POINTER), ("hash", UNSIGNED_INT),
       ("length", UNSIGNED_INT), ("payload", POINTER)),
    _s("code_entry", ("instruction_start", POINTER), ("size", INT),
       ("kind", UNSIGNED_CHAR), ("reloc", POINTER)),
    _s("scope_info", ("flags", INT), ("parameter_count", SHORT),
       ("stack_local_count", SHORT), ("context_local_count", INT)),
    _s("handle_scope", ("next", POINTER), ("limit", POINTER), ("level", INT)),
    _s("isolate_counters", ("gc_count", LONG), ("alloc_bytes", LONG),
       ("in_gc", BOOL)),
    _s("descriptor", ("key", POINTER), ("value", POINTER),
       ("details", UNSIGNED_INT)),
    _s("transition_entry", ("name", POINTER), ("target", POINTER)),
    _s("bytecode_node", ("opcode", UNSIGNED_CHAR), ("operand_count", CHAR),
       ("operands", Array(UNSIGNED_INT, 3)), ("source_pos", INT)),
    _s("ast_literal", ("tag", CHAR), ("as_number", DOUBLE), ("as_ref", POINTER)),
    _s("compilation_unit", ("source", POINTER), ("length", INT),
       ("is_module", BOOL), ("shared", POINTER), ("vector", POINTER)),
    _s("ic_slot", ("handler", POINTER), ("state", UNSIGNED_CHAR)),
    _s("gc_page", ("start", POINTER), ("live_bytes", UNSIGNED_INT),
       ("flags", UNSIGNED_INT), ("freelist", POINTER)),
    _s("weak_cell", ("target", POINTER), ("next", POINTER)),
    _s("stack_frame_info", ("pc", POINTER), ("fp", POINTER), ("sp", POINTER),
       ("type", CHAR)),
    _s("dense_double_pair", ("low", DOUBLE), ("high", DOUBLE)),
    _s("dense_ptr_pair", ("first", POINTER), ("second", POINTER)),
    _s("dense_small_key", ("k", UNSIGNED_INT), ("v", UNSIGNED_INT)),
    _s("callback_info", ("callback", FUNCTION_POINTER), ("data", POINTER),
       ("enabled", BOOL)),
]


# -- seeded generator ------------------------------------------------------------


@dataclass(frozen=True)
class CorpusProfile:
    """Field-type weights and shape parameters for one code-base flavour.

    ``type_weights`` pairs candidate field types with sampling weights;
    the mix of 1/2-byte types against 4/8-byte types is what controls the
    padded fraction, which is the calibration target.
    """

    name: str
    type_weights: tuple[tuple[CType, float], ...]
    min_fields: int = 1
    max_fields: int = 10
    array_probability: float = 0.12
    max_array_length: int = 32
    #: Probability a struct uses a single field type throughout (config
    #: blocks, coordinate records, counter blocks, ...) — such structs are
    #: dense, and their prevalence is what calibrates the padded fraction.
    uniform_probability: float = 0.33
    #: Probability a mixed struct was hand-ordered by decreasing alignment
    #: (a common C optimisation) — removes interior padding, can leave a
    #: dense struct when sizes work out.
    sorted_probability: float = 0.25


SPEC_PROFILE = CorpusProfile(
    name="spec2006",
    uniform_probability=0.50,  # calibrated: padded fraction ~= 45.7 %
    type_weights=(
        (CHAR, 1.6),
        (UNSIGNED_CHAR, 0.7),
        (BOOL, 0.4),
        (SHORT, 0.9),
        (UNSIGNED_SHORT, 0.5),
        (INT, 3.2),
        (UNSIGNED_INT, 1.4),
        (LONG, 1.2),
        (FLOAT, 0.9),
        (DOUBLE, 1.3),
        (POINTER, 2.8),
        (FUNCTION_POINTER, 0.3),
    ),
)

V8_PROFILE = CorpusProfile(
    name="v8",
    uniform_probability=0.44,  # calibrated: padded fraction ~= 41.0 %
    type_weights=(
        (CHAR, 0.7),
        (UNSIGNED_CHAR, 0.5),
        (BOOL, 0.7),
        (SHORT, 0.5),
        (UNSIGNED_SHORT, 0.3),
        (INT, 2.4),
        (UNSIGNED_INT, 1.6),
        (LONG, 1.0),
        (FLOAT, 0.3),
        (DOUBLE, 1.2),
        (POINTER, 5.5),
        (FUNCTION_POINTER, 0.6),
    ),
    array_probability=0.08,
    max_array_length=16,
)


def generate_struct(profile: CorpusProfile, rng: random.Random, index: int) -> Struct:
    """Draw one random struct from a profile."""
    field_count = rng.randint(profile.min_fields, profile.max_fields)
    types = [t for t, _ in profile.type_weights]
    weights = [w for _, w in profile.type_weights]

    if rng.random() < profile.uniform_probability:
        base: CType = rng.choices(types, weights)[0]
        field_types: list[CType] = [base] * field_count
    else:
        field_types = [rng.choices(types, weights)[0] for _ in range(field_count)]
        if rng.random() < profile.sorted_probability:
            field_types.sort(key=lambda t: (t.align, t.size), reverse=True)

    members = []
    for position, ctype in enumerate(field_types):
        if rng.random() < profile.array_probability:
            ctype = Array(ctype, rng.randint(2, profile.max_array_length))
        members.append(Field(f"f{position}", ctype))
    return Struct(f"{profile.name}_gen{index}", tuple(members))


def generate_corpus(
    profile: CorpusProfile, count: int, seed: int = 0
) -> list[Struct]:
    """Generate ``count`` random structs, deterministic per seed."""
    rng = random.Random(f"{profile.name}:{seed}")
    return [generate_struct(profile, rng, index) for index in range(count)]


def spec_corpus(generated: int = 400, seed: int = 0) -> list[Struct]:
    """The SPEC-flavoured census corpus (hand-written + generated)."""
    return SPEC_HANDWRITTEN + generate_corpus(SPEC_PROFILE, generated, seed)


def v8_corpus(generated: int = 400, seed: int = 0) -> list[Struct]:
    """The V8-flavoured census corpus (hand-written + generated)."""
    return V8_HANDWRITTEN + generate_corpus(V8_PROFILE, generated, seed)


#: The allocation-facing subset used by the trace generators: structs a
#: program plausibly allocates in volume.
HEAP_TYPE_POOL: list[Struct] = [
    s
    for s in SPEC_HANDWRITTEN
    if s.size <= 512
]
