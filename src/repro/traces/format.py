"""The Califorms trace format: compact, versioned, streamable.

A trace file is a persisted workload — the exact event stream one
:func:`repro.workloads.generator.run_trace` run pushed through the cache
ladder, plus enough metadata to rebuild the run and verify the replay.

Layout (all integers little-endian)::

    magic    8 bytes   b"CALTRC01" (version is part of the magic)
    u32      header length in bytes
    JSON     header: scenario spec, cache geometry, format constants
    records  13-byte packed records, ``<BQI`` = (kind, address, arg)
    record   terminator: kind=0xFF, address=0, arg=<footer length>
    JSON     footer: summary statistics of the recorded run

Record kinds are the generator's ``EV_*`` event stream (re-exported
here): LOAD/STORE are single cache touches (``arg`` = access size in
bytes, informational for timing replay, load/store width for hierarchy
replay); CFORM is one (de)allocation-side califorming that expands to
``arg`` line touches at ``address + i*64``; ALLOC/FREE carry the carved
object size and touch nothing; WARM marks the end-of-warmup counter
reset; EPOCH markers sit between bursts and are the only legal shard
split points.

Both :class:`TraceWriter` and :class:`TraceReader` stream: the writer
buffers a bounded number of packed records before flushing, the reader
iterates the file in fixed-size chunks — neither ever holds a full trace
in memory, so traces are bounded by disk, not by RAM.

Two container versions share this module's reader:

* ``CALTRC01`` — the layout above (one fixed 13-byte struct per record);
* ``CALTRC02`` — the same preamble and footer semantics, but the record
  stream is stored as per-epoch compressed frames (delta/run-length
  tokens + zlib; see :mod:`repro.traces.compress`).

:class:`TraceReader` detects the version from the magic and yields the
identical ``(kind, address, arg)`` stream either way, so every consumer
(replay, shard, multi-core, info) is version-agnostic; writers are
chosen per version through :func:`trace_writer`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, BinaryIO, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

from repro.telemetry.runtime import active as telemetry_active
from repro.workloads.generator import (  # noqa: F401  (re-exported)
    EV_ALLOC,
    EV_CFORM,
    EV_EPOCH,
    EV_FREE,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
)

#: Bump the trailing digits when the binary layout changes shape.
MAGIC = b"CALTRC01"

#: The compressed container's magic; canonical home is
#: :data:`repro.traces.compress.MAGIC_V2` (kept as a private alias here
#: so version sniffing needs no import of the codec module).
_MAGIC_V2 = b"CALTRC02"

#: Terminator record kind; its ``arg`` is the footer's byte length.
EV_END = 0xFF

#: One record: kind (u8), address (u64), arg (u32).
RECORD = struct.Struct("<BQI")
RECORD_SIZE = RECORD.size

#: Human-readable names, for ``info`` output and error messages.
KIND_NAMES = {
    EV_LOAD: "load",
    EV_STORE: "store",
    EV_ALLOC: "alloc",
    EV_FREE: "free",
    EV_CFORM: "cform",
    EV_WARM: "warm",
    EV_EPOCH: "epoch",
}

_HEADER_LEN = struct.Struct("<I")


class TraceFormatError(ValueError):
    """Raised for malformed trace files (bad magic, truncation, ...).

    Carries the offending file's ``path`` and the byte ``offset`` where
    parsing stopped whenever the raiser knows them, so a failure inside
    a multi-shard or multi-object replay is attributable to one file and
    one position instead of only a frame/record index.  ``detail`` is
    the undecorated message (used when re-raising with added context).
    """

    def __init__(
        self,
        detail: str,
        *,
        path: str | None = None,
        offset: int | None = None,
    ):
        self.detail = detail
        self.path = path
        self.offset = offset
        message = detail
        if offset is not None:
            message = f"{message} (byte offset {offset})"
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)

    def located(
        self, path: str | None, offset: int | None = None
    ) -> "TraceFormatError":
        """This error re-decorated with location context (if missing)."""
        if self.path is not None:
            return self
        return TraceFormatError(
            self.detail, path=path, offset=self.offset if offset is None else offset
        )


class TraceIntegrityError(ValueError):
    """Raised when a replay's recomputed statistics contradict the footer."""


@dataclass(frozen=True)
class RecordColumns:
    """One decoded batch of records as parallel columns.

    The array-native equivalent of a run of ``(kind, address, arg)``
    tuples: ``kind`` is uint8, ``address`` and ``arg`` are int64 (record
    addresses are far below 2**63; signed width keeps delta/cumsum
    arithmetic and Python-int round-trips exact).  Row ``i`` of the three
    arrays is record ``i`` of the batch, in stream order — a batch holds
    one CALTRC02 frame or one CALTRC01 read chunk, so iterating batches
    yields the identical record stream :meth:`TraceReader.records` would.
    """

    kind: "numpy.ndarray"
    address: "numpy.ndarray"
    arg: "numpy.ndarray"

    def __len__(self) -> int:
        return len(self.kind)


class TraceWriterBase:
    """Shared plumbing of the streaming trace writers.

    Handles everything that is identical across container versions —
    path-vs-file-object ownership, the ``magic + header-length + header
    JSON`` preamble (serialised *before* opening, so a non-JSON-able
    header never leaves an empty file or a leaked descriptor behind),
    footer stashing, :meth:`abort` and the context-manager protocol.
    Subclasses define :attr:`MAGIC_BYTES`, the record buffer
    (:meth:`append` / :meth:`_discard_buffer`) and :meth:`close`.
    """

    MAGIC_BYTES: bytes

    def __init__(self, target: str | BinaryIO, header: dict):
        self.header = dict(header)
        header_bytes = json.dumps(self.header, sort_keys=True).encode("utf-8")
        if isinstance(target, str):
            self._file: BinaryIO = open(target, "wb")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.record_count = 0
        self._footer: dict | None = None
        try:
            self._file.write(self.MAGIC_BYTES)
            self._file.write(_HEADER_LEN.pack(len(header_bytes)))
            self._file.write(header_bytes)
        except BaseException:
            if self._owns_file:
                self._file.close()
            raise

    def set_footer(self, footer: dict) -> None:
        """Provide the summary written after the terminator."""
        self._footer = dict(footer)

    def _footer_bytes(self) -> bytes:
        return json.dumps(self._footer or {}, sort_keys=True).encode("utf-8")

    def _discard_buffer(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def abort(self) -> None:
        """Close without writing a terminator/footer (error cleanup).

        The file is left deliberately invalid-on-read; callers should
        unlink it.
        """
        self._discard_buffer()
        if self._owns_file:
            self._file.close()

    def _finish(self) -> None:
        """Flush and release the target (the tail of every close())."""
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class TraceWriter(TraceWriterBase):
    """Streaming CALTRC01 writer: header, packed records, footer last.

    ``target`` is a path or a binary file object (e.g. ``io.BytesIO``).
    Use as a context manager, or call :meth:`close` with the footer::

        with TraceWriter("x.trace", header) as writer:
            writer.append(EV_LOAD, 0x1000, 8)
            ...
            writer.set_footer({"records": writer.record_count})
    """

    MAGIC_BYTES = MAGIC

    #: Packed records buffered before a file write (~64 KB).
    FLUSH_RECORDS = 5000

    def __init__(self, target: str | BinaryIO, header: dict):
        super().__init__(target, header)
        self._buffer: list[bytes] = []
        self._pack = RECORD.pack

    def append(self, kind: int, address: int, arg: int) -> None:
        """Append one record.  This is the generator sink's hot call."""
        self._buffer.append(self._pack(kind, address, arg))
        self.record_count += 1
        if len(self._buffer) >= self.FLUSH_RECORDS:
            self._file.write(b"".join(self._buffer))
            self._buffer.clear()

    def _discard_buffer(self) -> None:
        self._buffer.clear()

    def close(self) -> None:
        footer_bytes = self._footer_bytes()
        self._buffer.append(self._pack(EV_END, 0, len(footer_bytes)))
        self._file.write(b"".join(self._buffer))
        self._buffer.clear()
        self._file.write(footer_bytes)
        self._finish()


class TraceReader:
    """Streaming reader over a trace file or binary file object.

    ``header`` is available immediately; :meth:`records` yields
    ``(kind, address, arg)`` tuples without materialising the trace;
    ``footer`` is populated once iteration reaches the terminator (or by
    :meth:`read_footer`, which drains the stream).
    """

    #: Bytes per read; chosen as a multiple of the record size so chunk
    #: boundaries never split a record.
    CHUNK_RECORDS = 8192

    def __init__(self, source: str | BinaryIO):
        if isinstance(source, str):
            self._file: BinaryIO = open(source, "rb")
            self._owns_file = True
            self.path: str | None = source
        else:
            self._file = source
            self._owns_file = False
            name = getattr(source, "name", None)
            self.path = name if isinstance(name, str) else None
        try:
            magic = self._file.read(len(MAGIC))
            if magic == MAGIC:
                self.version = 1
            elif magic == _MAGIC_V2:
                self.version = 2
            elif len(magic) < len(MAGIC):
                raise self.error(
                    f"truncated trace: file ends inside the magic "
                    f"({len(magic)} bytes)",
                    offset=0,
                )
            else:
                raise self.error(
                    f"not a Califorms trace (magic {magic!r}, wanted "
                    f"{MAGIC!r} or {_MAGIC_V2!r})",
                    offset=0,
                )
            try:
                (header_len,) = _HEADER_LEN.unpack(
                    self._file.read(_HEADER_LEN.size)
                )
            except struct.error:
                raise self.error(
                    "truncated trace header length", offset=len(MAGIC)
                ) from None
            header_bytes = self._file.read(header_len)
            if len(header_bytes) != header_len:
                raise self.error(
                    "truncated trace header",
                    offset=len(MAGIC) + _HEADER_LEN.size,
                )
            try:
                self.header: dict = json.loads(header_bytes)
            except ValueError as error:  # bad JSON or bad UTF-8
                raise self.error(
                    f"corrupt trace header JSON: {error}",
                    offset=len(MAGIC) + _HEADER_LEN.size,
                ) from None
        except BaseException:
            # Malformed input must not leak the descriptor we opened.
            if self._owns_file:
                self._file.close()
            raise
        #: Byte offset of the first record/frame (end of the preamble);
        #: record iterators count from here so errors are attributable.
        self.data_offset = len(MAGIC) + _HEADER_LEN.size + header_len
        self.footer: dict | None = None
        self._records_iter: Iterator[tuple[int, int, int]] | None = None

    def error(self, detail: str, offset: int | None = None) -> TraceFormatError:
        """A :class:`TraceFormatError` located in this reader's file."""
        return TraceFormatError(detail, path=self.path, offset=offset)

    def records(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(kind, address, arg)`` until the terminator record.

        Leaves :attr:`footer` populated.  Raises
        :class:`TraceFormatError` if the file ends without a terminator
        (a crashed or still-recording writer).

        The stream is single-pass: repeated calls return the *same*
        iterator (so a partially consumed iteration can be resumed, and
        :meth:`read_footer` drains from wherever iteration stopped
        without losing the chunk buffered by the suspended generator).
        """
        if self._records_iter is None:
            if self.version == 2:
                from repro.traces.compress import iter_compressed_records

                self._records_iter = iter_compressed_records(self)
            else:
                self._records_iter = self._iter_records()
        return self._records_iter

    def _iter_records(self) -> Iterator[tuple[int, int, int]]:
        chunk_bytes = self.CHUNK_RECORDS * RECORD_SIZE
        unpack_from = RECORD.unpack_from
        pending = b""
        position = self.data_offset  # file offset of the next record
        while True:
            chunk = pending + self._file.read(chunk_bytes)
            if not chunk:
                raise self.error(
                    "trace ends without a terminator record", offset=position
                )
            usable = len(chunk) - (len(chunk) % RECORD_SIZE)
            for offset in range(0, usable, RECORD_SIZE):
                kind, address, arg = unpack_from(chunk, offset)
                if kind == EV_END:
                    tail = chunk[offset + RECORD_SIZE :]
                    self._read_footer_bytes(
                        arg, tail, position + offset + RECORD_SIZE
                    )
                    return
                yield kind, address, arg
            pending = chunk[usable:]
            position += usable
            if usable == 0:
                raise self.error("truncated trace record", offset=position)

    #: Records per column batch on the v1 path; larger than the tuple
    #: iterator's chunk because one numpy batch amortises per-batch cost
    #: over more records (64 Ki records ≈ 832 KB resident, still bounded).
    COLUMN_CHUNK_RECORDS = 1 << 16

    #: The v1 record as a structured numpy dtype (packed, little-endian):
    #: built lazily so importing this module never requires numpy.
    _COLUMN_DTYPE = None

    def column_batches(self) -> Iterator[RecordColumns]:
        """Yield the record stream as :class:`RecordColumns` batches.

        The columnar twin of :meth:`records`: the concatenation of the
        yielded batches is exactly the ``(kind, address, arg)`` stream,
        and :attr:`footer` is populated once the terminator is reached —
        but no per-record tuples are ever built.  v2 (CALTRC02) batches
        are one epoch frame each, decoded straight from the token stream
        (:func:`repro.traces.compress.iter_compressed_columns`); v1
        batches are fixed-size read chunks lifted via ``np.frombuffer``.

        Like :meth:`records`, the stream is single-pass; mixing the two
        iteration styles on one reader is not supported.

        Requires numpy (see
        :func:`repro.memory.kernel.require_numpy`).
        """
        if self._records_iter is not None:
            raise RuntimeError(
                "column_batches() cannot resume a reader already being "
                "iterated with records()"
            )
        if self.version == 2:
            from repro.traces.compress import iter_compressed_columns

            return iter_compressed_columns(self)
        return self._iter_columns_v1()

    def _iter_columns_v1(self) -> Iterator[RecordColumns]:
        from repro.memory.kernel import require_numpy

        np = require_numpy("columnar trace decode")
        if TraceReader._COLUMN_DTYPE is None:
            TraceReader._COLUMN_DTYPE = np.dtype(
                [("kind", "u1"), ("address", "<u8"), ("arg", "<u4")]
            )
        dtype = TraceReader._COLUMN_DTYPE
        chunk_bytes = self.COLUMN_CHUNK_RECORDS * RECORD_SIZE
        pending = b""
        position = self.data_offset  # file offset of the next record
        while True:
            chunk = pending + self._file.read(chunk_bytes)
            if not chunk:
                raise self.error(
                    "trace ends without a terminator record", offset=position
                )
            usable = len(chunk) - (len(chunk) % RECORD_SIZE)
            if usable == 0:
                raise self.error("truncated trace record", offset=position)
            rows = np.frombuffer(chunk, dtype=dtype, count=usable // RECORD_SIZE)
            kinds = rows["kind"]
            terminators = np.flatnonzero(kinds == EV_END)
            stop = int(terminators[0]) if terminators.size else len(rows)
            if stop:
                batch = rows[:stop]
                addresses = batch["address"]
                if bool((addresses >> np.uint64(63)).any()):
                    raise self.error(
                        "record address exceeds the columnar engine's "
                        "int64 range", offset=position,
                    )
                tel = telemetry_active()
                if tel is not None:
                    tel.inc("decode_records_total", stop, format="v1")
                yield RecordColumns(
                    kind=np.ascontiguousarray(batch["kind"]),
                    address=addresses.astype(np.int64),
                    arg=batch["arg"].astype(np.int64),
                )
            if terminators.size:
                footer_length = int(rows["arg"][stop])
                tail = chunk[(stop + 1) * RECORD_SIZE :]
                self._read_footer_bytes(
                    footer_length, tail, position + (stop + 1) * RECORD_SIZE
                )
                return
            pending = chunk[usable:]
            position += usable

    def _read_footer_bytes(
        self, length: int, already_read: bytes, offset: int | None = None
    ) -> None:
        footer_bytes = already_read[:length]
        if len(footer_bytes) < length:
            footer_bytes += self._file.read(length - len(footer_bytes))
        if len(footer_bytes) != length:
            raise self.error("truncated trace footer", offset=offset)
        try:
            self.footer = json.loads(footer_bytes)
        except ValueError as error:  # bad JSON or bad UTF-8
            raise self.error(
                f"corrupt trace footer JSON: {error}", offset=offset
            ) from None

    def read_footer(self) -> dict:
        """Drain remaining records and return the footer summary.

        Safe mid-iteration: it continues the shared :meth:`records`
        iterator rather than re-reading the file.
        """
        if self.footer is None:
            for _ in self.records():
                pass
        if self.footer is None:
            raise TraceFormatError("trace ends without a terminator record")
        return self.footer

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def trace_writer(target: str | BinaryIO, header: dict, version: int = 1):
    """Open a streaming writer for the requested container version.

    Version 1 is the fixed-record :class:`TraceWriter`; version 2 the
    frame-compressed :class:`~repro.traces.compress.CompressedTraceWriter`.
    Both expose the same interface, so callers (recorder, sharder,
    transcoder) stay version-agnostic.
    """
    if version == 1:
        return TraceWriter(target, header)
    if version == 2:
        from repro.traces.compress import CompressedTraceWriter

        return CompressedTraceWriter(target, header)
    raise ValueError(f"unknown trace format version {version}")


def read_header(path: str) -> dict:
    """Cheaply read just the header of a trace file."""
    with TraceReader(path) as reader:
        return reader.header
