"""Recorder: tap a live generator run and persist its event stream.

The generator owns the workload logic; the recorder only listens.  A
:class:`RecordingSink` is handed to :func:`run_trace` as its ``sink`` —
it appends one record per cache touch / allocation event to a streaming
:class:`~repro.traces.format.TraceWriter` and drops an EPOCH marker
every ``epoch_bursts`` bursts (the shard split points).  The sink never
consumes the generator's RNG, so a recorded run is bit-identical to an
unrecorded one — :func:`record_spec` returns the live
:class:`~repro.workloads.generator.RunResult` alongside the trace it
wrote, and the footer stores that result's statistics for replay-time
verification.
"""

from __future__ import annotations

import os

from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.traces.compress import MAGIC_V2
from repro.traces.format import EV_EPOCH, MAGIC, trace_writer
from repro.traces.registry import SPEC_VERSION, TraceScenarioSpec
from repro.workloads.generator import RunResult, run_trace


class RecordingSink:
    """The generator-side tap feeding a :class:`TraceWriter`."""

    __slots__ = ("append", "_writer", "_epoch_bursts", "_bursts", "_epochs")

    def __init__(self, writer: TraceWriter, epoch_bursts: int):
        self._writer = writer
        #: Bound method exposed directly so the generator's hot wrappers
        #: call the writer with no intermediate frame.
        self.append = writer.append
        self._epoch_bursts = epoch_bursts
        self._bursts = 0
        self._epochs = 0

    def burst(self) -> None:
        """Generator signal: one burst (+ its churn) just finished."""
        self._bursts += 1
        if self._bursts % self._epoch_bursts == 0:
            self.append(EV_EPOCH, self._epochs, 0)
            self._epochs += 1

    @property
    def epochs(self) -> int:
        return self._epochs


def _geometry_dict(config: HierarchyConfig) -> dict:
    return {
        "l1": [config.l1_geometry.size_bytes, config.l1_geometry.associativity],
        "l2": [config.l2_geometry.size_bytes, config.l2_geometry.associativity],
        "l3": [config.l3_geometry.size_bytes, config.l3_geometry.associativity],
        "latencies": [
            config.l1_latency, config.l2_latency,
            config.l3_latency, config.dram_latency,
        ],
        # Figure 10's pessimistic-latency knobs: without these the
        # replayed cycle model would silently differ from the recorded
        # config's.
        "extra_cycles": [config.l2_extra_cycles, config.l3_extra_cycles],
    }


def _driver_for(spec: TraceScenarioSpec):
    """Resolve the spec's trace driver (the function that runs the
    workload live, with or without a sink).  ``generator`` is the
    synthetic SPEC-like engine; ``attacks`` replays the exploit-suite
    probe patterns of :mod:`repro.analysis.attacks` (heap grooming,
    overflow probes, scans) through the same cache ladder."""
    if spec.driver == "generator":
        return run_trace
    if spec.driver == "attacks":
        from repro.traces.attack_driver import run_attack_trace

        return run_attack_trace
    if spec.driver == "loadgen":
        # The composition is defined by the spec's driver_config (the
        # LoadScenario document), not by the call-site knobs, so the
        # driver is a per-spec closure.
        from repro.loadgen.compose import driver_for_spec

        return driver_for_spec(spec)
    raise ValueError(f"unknown trace driver {spec.driver!r}")


def live_run(spec: TraceScenarioSpec, config: HierarchyConfig = WESTMERE) -> RunResult:
    """Run a spec's workload live, unrecorded (driver-dispatched)."""
    return _driver_for(spec)(
        spec.profile,
        spec.build_scenario(),
        instructions=spec.instructions,
        seed=spec.seed,
        config=config,
        warmup_fraction=spec.warmup_fraction,
        quarantine_delay=spec.quarantine_delay,
    )


def record_spec(
    spec: TraceScenarioSpec,
    target,
    config: HierarchyConfig = WESTMERE,
    compress: bool = False,
) -> RunResult:
    """Record one registry scenario to ``target`` (path or file object).

    Runs the spec's driver live with the recording sink attached and
    returns the live :class:`RunResult`; the trace's footer carries the
    result's statistics so any replay can verify itself against the
    recording.  ``compress`` selects the CALTRC02 frame-compressed
    container (the logical record stream — and hence every replay
    statistic — is identical either way).
    """
    header = {
        "format": (MAGIC_V2 if compress else MAGIC).decode("ascii"),
        "spec_version": SPEC_VERSION,
        "spec": spec.to_dict(),
        "geometry": _geometry_dict(config),
    }
    try:
        return _record_to_writer(spec, target, config, header, compress)
    except BaseException:
        # A failed/interrupted recording must not leave a terminator-less
        # file behind for a later replay glob to choke on.
        if isinstance(target, str):
            try:
                os.remove(target)
            except OSError:
                pass
        raise


def _record_to_writer(spec, target, config, header, compress) -> RunResult:
    with trace_writer(target, header, version=2 if compress else 1) as writer:
        sink = RecordingSink(writer, spec.epoch_bursts)
        result = _driver_for(spec)(
            spec.profile,
            spec.build_scenario(),
            instructions=spec.instructions,
            seed=spec.seed,
            config=config,
            warmup_fraction=spec.warmup_fraction,
            sink=sink,
            quarantine_delay=spec.quarantine_delay,
        )
        writer.set_footer(
            {
                "benchmark": result.benchmark,
                "instructions": result.instructions,
                "cform_instructions": result.cform_instructions,
                "alloc_events": result.alloc_events,
                "events": {
                    "l1_accesses": result.events.l1_accesses,
                    "l1_misses": result.events.l1_misses,
                    "l2_misses": result.events.l2_misses,
                    "l3_misses": result.events.l3_misses,
                },
                "records": writer.record_count,
                "epochs": sink.epochs,
            }
        )
    return result
