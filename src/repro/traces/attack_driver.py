"""Attack-replay trace driver: exploit-suite probes as a workload.

:mod:`repro.analysis.attacks` models nine concrete exploit access
patterns (intra-object overflows, adjacent over-reads, jump overflows,
use-after-free, heap scans, ...) against the schemes' functional models.
This driver turns the *memory behaviour* of that suite into a recordable
workload with the same contract as
:func:`repro.workloads.generator.run_trace`: a deterministic campaign of
heap grooming plus attack probe bursts, played through the tag-only
cache ladder, with every touch optionally emitted to a trace-engine
sink.  A recorded ``attack-replay`` trace therefore replays
bit-identically through the standard replayers — the corpus can persist
adversarial traffic next to the benign mixes, and cache-side studies
(e.g. how probing sweeps pollute a co-runner's shared L3) run from the
same artifacts.

The campaign structure per burst:

1. pick a victim object (zipf-style, like the generator's locality);
2. run one attack pattern from the suite — the probe addresses reuse
   the geometry constants of :mod:`repro.analysis.attacks` (victim
   size, array end, jump distance), placed at the victim's address;
3. apply allocation churn at the profile's rate — the *grooming* side
   of a real exploit: frees and reallocations that recycle addresses
   (use-after-free probes deliberately target recently freed victims).

Instruction accounting mirrors the generator (``burst_length /
mem_ratio`` application instructions per burst, warmup discarded at the
``EV_WARM`` boundary), so pipeline-model cycles are comparable across
benign and adversarial traces.
"""

from __future__ import annotations

import random
from collections import deque

from repro.analysis.attacks import (
    _ARRAY_END,
    _VICTIM_SIZE,
    ATTACK_NAMES,
)
from repro.cpu.pipeline import MemoryEventCounts
from repro.memory.cache import TagOnlyCache
from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.workloads.generator import (
    EV_ALLOC,
    EV_FREE,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
    RunResult,
    Scenario,
)
from repro.workloads.specs import BenchmarkProfile

#: Heap placement mirrors the generator's synthetic address space.
_ARENA_BASE = 0x0200_0000

#: Victims are carved at the suite's object size plus a gap, so adjacent
#: and jump overflow probes land on neighbour/unallocated addresses the
#: way the suite's placement does.
_VICTIM_STRIDE = _VICTIM_SIZE + 64

#: Jump overflow distance (clears victim redzone and neighbour, as in
#: the suite's ``jump_overflow`` probe).
_JUMP_DISTANCE = _VICTIM_SIZE + 240

#: heap_scan probes per burst (the suite sweeps 32 random offsets).
_SCAN_PROBES = 32


def run_attack_trace(
    profile: BenchmarkProfile,
    scenario: Scenario,
    instructions: int = 200_000,
    seed: int = 0,
    config: HierarchyConfig = WESTMERE,
    warmup_fraction: float = 1.0,
    sink=None,
    quarantine_delay: int = 16,
) -> RunResult:
    """Simulate one attack campaign; same contract as ``run_trace``.

    The sink never consumes ``rng``, so a recorded campaign is
    bit-identical to an unrecorded one (the round-trip invariant).
    ``scenario`` participates only through the result (attack traffic
    probes raw memory; no layout inflation or CFORM work is modelled).
    """
    rng = random.Random(f"{profile.name}:{seed}")

    l1 = TagOnlyCache(config.l1_geometry)
    l2 = TagOnlyCache(config.l2_geometry)
    l3 = TagOnlyCache(config.l3_geometry)

    def touch(address: int) -> None:
        if not l1.access(address):
            if not l2.access(address):
                l3.access(address)

    if sink is None:
        record = None
        touch_load = touch_store = touch
    else:
        record = sink.append

        def touch_load(address: int) -> None:
            record(EV_LOAD, address, 8)
            touch(address)

        def touch_store(address: int) -> None:
            record(EV_STORE, address, 8)
            touch(address)

    # -- victim population --------------------------------------------------
    # A fixed-stride arena of victim slots; grooming recycles them
    # through a quarantine so UAF probes hit genuinely stale addresses.
    victim_count = max(8, (profile.heap_kb * 1024) // _VICTIM_STRIDE)
    victims = [
        _ARENA_BASE + index * _VICTIM_STRIDE for index in range(victim_count)
    ]
    next_slot = _ARENA_BASE + victim_count * _VICTIM_STRIDE
    quarantine: deque[int] = deque()
    recently_freed: deque[int] = deque(maxlen=16)

    # Pre-warm every victim line once, like the generator's first-touch
    # sweep, so measured misses reflect probe behaviour, not cold starts.
    for base in victims:
        for line_offset in range(0, _VICTIM_SIZE, 64):
            touch_load(base + line_offset)

    skew_exponent = 1.0 / profile.locality_skew
    burst_instructions = profile.burst_length / profile.mem_ratio
    app_instructions = 0.0
    alloc_events = 0
    alloc_accumulator = 0.0

    attack_kinds = ATTACK_NAMES

    warmup_budget = instructions * warmup_fraction
    total_budget = warmup_budget + instructions
    warm = warmup_fraction == 0.0

    while app_instructions < total_budget:
        if not warm and app_instructions >= warmup_budget:
            warm = True
            l1.reset_counters()
            l2.reset_counters()
            l3.reset_counters()
            app_instructions -= warmup_budget
            total_budget -= warmup_budget
            alloc_events = 0
            if record is not None:
                record(EV_WARM, 0, 0)
        app_instructions += burst_instructions

        index = int(victim_count * rng.random() ** skew_exponent)
        base = victims[min(index, victim_count - 1)]
        attack = attack_kinds[rng.randrange(len(attack_kinds))]

        if attack == "intra_overflow":
            for probe in range(profile.burst_length):
                touch_store(base + _ARRAY_END - 4 + probe)
        elif attack == "intra_overread":
            for probe in range(profile.burst_length):
                touch_load(base + _ARRAY_END - 4 + probe)
        elif attack == "adjacent_overflow":
            for probe in range(profile.burst_length):
                touch_store(base + _VICTIM_SIZE + probe)
        elif attack == "adjacent_overread":
            for probe in range(profile.burst_length):
                touch_load(base + _VICTIM_SIZE + probe)
        elif attack == "off_by_one":
            touch_store(base + _VICTIM_SIZE)
        elif attack == "jump_overflow":
            touch_store(base + _JUMP_DISTANCE)
        elif attack == "underflow":
            touch_store(base - 4)
        elif attack == "use_after_free":
            # Dereference a recently recycled victim when grooming has
            # produced one; otherwise fall back to the chosen victim.
            stale = recently_freed[-1] if recently_freed else base
            for probe in range(profile.burst_length):
                touch_load(stale + 16 + probe * 8)
        else:  # heap_scan
            for _ in range(_SCAN_PROBES):
                touch_load(base + rng.randrange(_VICTIM_SIZE))

        # Grooming churn at the profile's allocation rate.
        alloc_accumulator += profile.allocs_per_kinst * burst_instructions / 1000.0
        while alloc_accumulator >= 1.0:
            alloc_accumulator -= 1.0
            alloc_events += 1
            victim_index = rng.randrange(victim_count)
            old = victims[victim_index]
            if record is not None:
                record(EV_FREE, old, _VICTIM_SIZE)
            quarantine.append(old)
            recently_freed.append(old)
            if len(quarantine) > quarantine_delay:
                new_base = quarantine.popleft()
            else:
                new_base = next_slot
                next_slot += _VICTIM_STRIDE
            victims[victim_index] = new_base
            if record is not None:
                record(EV_ALLOC, new_base, _VICTIM_SIZE)

        if sink is not None:
            sink.burst()

    return RunResult(
        benchmark=profile.name,
        scenario=scenario,
        instructions=int(app_instructions),
        events=MemoryEventCounts(
            l1_accesses=l1.accesses,
            l1_misses=l1.misses,
            l2_misses=l2.misses,
            l3_misses=l3.misses,
        ),
        cform_instructions=0,
        alloc_events=alloc_events,
    )
