"""CLI for the trace engine: ``python -m repro.traces``.

Subcommands::

    list                              show the scenario corpus (and mixes)
    record  --scenario NAME --out F   record a registry scenario
                                      (--compress writes CALTRC02)
    info    TRACE [--frames]          header + footer + compression stats
    replay  TRACE [--mode ...]        single-process replay
                                      (--engine columnar|records)
    shard   TRACE --out-dir D -n N    split into N per-epoch-range shards
    replay-shards F... [--jobs N]     replay shards, merged accounting
    replay-mc F... [--cores N]        multi-core shared-L3 replay, one
                                      trace per core (or --mix NAME)

Examples::

    python -m repro.traces record --scenario server-churn --out sc.trace
    python -m repro.traces info sc.trace
    python -m repro.traces replay sc.trace
    python -m repro.traces shard sc.trace --out-dir shards -n 4
    python -m repro.traces replay-shards shards/*.trace --jobs 4
    python -m repro.traces replay-mc sc.trace --cores 2 --jobs 2
    python -m repro.traces replay-mc --mix server-vs-scan --instructions 8000

See the "Scenarios & traces" section of BENCHMARKS.md for the format
specification and the corpus table.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.traces.format import TraceFormatError, TraceIntegrityError, TraceReader
from repro.traces.recorder import record_spec
from repro.traces.registry import (
    CORPUS,
    MULTICORE_MIXES,
    corpus_spec,
    load_spec,
    multicore_mix,
)
from repro.traces.replayer import (
    replay_hierarchy,
    replay_multicore,
    replay_shards,
    replay_timing,
    shard_trace,
)


def _cmd_list(arguments: argparse.Namespace) -> int:
    width = max(len(name) for name in CORPUS)
    for spec in CORPUS.values():
        policy = spec.policy or "baseline"
        if spec.with_cform:
            policy += "+CFORM"
        print(
            f"{spec.name:{width}s}  {policy:20s} "
            f"seed={spec.seed:<3d} {spec.instructions:>7d} instr  "
            f"{spec.description}"
        )
    print()
    mix_width = max(len(name) for name in MULTICORE_MIXES)
    for mix in MULTICORE_MIXES.values():
        print(
            f"{mix.name:{mix_width}s}  {len(mix.cores)} cores "
            f"({' + '.join(mix.cores)})  {mix.description}"
        )
    return 0


def _resolve_spec(arguments: argparse.Namespace):
    if arguments.spec:
        spec = load_spec(arguments.spec)
    else:
        spec = corpus_spec(arguments.scenario)
    if arguments.instructions is not None:
        spec = spec.scaled(arguments.instructions)  # 0 → spec ValueError
    return spec


def _cmd_record(arguments: argparse.Namespace) -> int:
    spec = _resolve_spec(arguments)
    result = record_spec(spec, arguments.out, compress=arguments.compress)
    events = result.events
    print(
        f"recorded {spec.name} -> {arguments.out}"
        f"{' (CALTRC02 compressed)' if arguments.compress else ''}\n"
        f"  instructions {result.instructions}  "
        f"alloc events {result.alloc_events}  "
        f"cform instructions {result.cform_instructions}\n"
        f"  l1 {events.l1_accesses} accesses / {events.l1_misses} misses  "
        f"l2 {events.l2_misses} misses  l3 {events.l3_misses} misses"
    )
    return 0


def _cmd_info(arguments: argparse.Namespace) -> int:
    with TraceReader(arguments.trace) as reader:
        version = reader.version
        header = reader.header
        footer = reader.read_footer()
    spec = header.get("spec", {})
    print(
        f"format   {header.get('format')} (v{version}, "
        f"{'per-epoch compressed frames' if version == 2 else '13 B fixed records'})"
    )
    print(
        f"scenario {spec.get('name')}  policy {spec.get('policy') or 'baseline'}"
        f"{' +CFORM' if spec.get('with_cform') else ''}  seed {spec.get('seed')}"
    )
    geometry = header.get("geometry", {})
    for level in ("l1", "l2", "l3"):
        size, ways = geometry.get(level, (0, 0))
        print(f"{level}       {size // 1024} KB, {ways}-way")
    if "shard" in header:
        shard = header["shard"]
        print(f"shard    {shard['index'] + 1} of {shard['of']}")
    for key in (
        "benchmark", "instructions", "cform_instructions",
        "alloc_events", "records", "epochs", "counts",
    ):
        if key in footer:
            print(f"{key:19s}{footer[key]}")
    if "events" in footer:
        print(f"{'events':19s}{footer['events']}")
    if version == 2:
        from repro.traces.compress import compression_summary

        summary = compression_summary(arguments.trace, footer.get("records", 0))
        print(
            f"{'compression':19s}{summary['ratio']:.1f}x "
            f"({summary['raw_record_bytes']} B of records in "
            f"{summary['payload_bytes']} B of frame payload)"
        )
        print(
            f"{'frames':19s}{summary['frames']}  "
            f"records/frame min {summary['records_per_frame_min']} / "
            f"avg {summary['records_per_frame_avg']:.0f} / "
            f"max {summary['records_per_frame_max']}"
        )
        if arguments.frames:
            for index, (records, payload) in enumerate(summary["frame_detail"]):
                bytes_per_record = payload / records if records else 0.0
                print(
                    f"  frame {index:4d}  {records:8d} records  "
                    f"{payload:8d} B  {bytes_per_record:5.2f} B/record"
                )
    return 0


def _print_stats(stats, label: str) -> None:
    events = stats.events
    print(
        f"{label}: {stats.touches} touches  "
        f"l1 {events.l1_accesses}/{events.l1_misses}  "
        f"l2m {events.l2_misses}  l3m {events.l3_misses}  "
        f"cform lines {stats.cform_lines}  allocs {stats.alloc_events}  "
        f"violations {stats.violations}  amat cycles {stats.amat_cycles}"
    )


def _cmd_replay(arguments: argparse.Namespace) -> int:
    from repro.traces.format import read_header

    shard = read_header(arguments.trace).get("shard")
    if shard is not None:
        # Shard files carry no whole-run summary; replay them with the
        # region engine (cold ladder, warm markers ignored).
        merged = replay_shards(
            [arguments.trace], jobs=1, mode=arguments.mode,
            engine=arguments.engine,
        )
        _print_stats(
            merged.stats,
            f"region replay of shard {shard['index'] + 1}/{shard['of']} "
            f"({arguments.mode})",
        )
        return 0
    if arguments.mode == "hierarchy":
        stats = replay_hierarchy(arguments.trace, engine=arguments.engine)
        _print_stats(stats, "hierarchy replay")
        return 0
    result = replay_timing(
        arguments.trace, verify=not arguments.no_verify,
        engine=arguments.engine,
    )
    events = result.events
    verdict = (
        "verification skipped" if arguments.no_verify else "verified bit-identical"
    )
    print(
        f"timing replay of {result.benchmark} "
        f"({result.scenario.describe()}): {verdict}\n"
        f"  instructions {result.instructions}  "
        f"cform instructions {result.cform_instructions}  "
        f"alloc events {result.alloc_events}\n"
        f"  l1 {events.l1_accesses} accesses / {events.l1_misses} misses  "
        f"l2 {events.l2_misses} misses  l3 {events.l3_misses} misses"
    )
    return 0


def _cmd_shard(arguments: argparse.Namespace) -> int:
    paths = shard_trace(arguments.trace, arguments.out_dir, arguments.shards)
    for path in paths:
        print(path)
    return 0


def _cmd_replay_shards(arguments: argparse.Namespace) -> int:
    merged = replay_shards(
        arguments.shards, jobs=arguments.jobs, mode=arguments.mode,
        engine=arguments.engine,
    )
    _print_stats(merged.stats, f"merged over {merged.shards} shards")
    return 0


def _replay_mc_and_print(
    sources: list, labels: list[str], jobs: int, engine: str | None
) -> int:
    replay = replay_multicore(sources, jobs=jobs, engine=engine)
    for core, stats in enumerate(replay.per_core):
        _print_stats(stats, f"core {core} ({labels[core]})")
    _print_stats(replay.merged, f"merged over {replay.cores} cores")
    return 0


def _cmd_replay_mc(arguments: argparse.Namespace) -> int:
    import tempfile

    if bool(arguments.traces) == bool(arguments.mix):
        raise ValueError(
            "replay-mc needs either trace files or --mix NAME (not both)"
        )
    jobs = arguments.jobs
    if arguments.mix:
        mix = multicore_mix(arguments.mix)
        specs = mix.specs(arguments.instructions)
        if arguments.cores is not None:
            if arguments.cores <= 0:
                raise ValueError("--cores must be positive")
            specs = [specs[i % len(specs)] for i in range(arguments.cores)]
        with tempfile.TemporaryDirectory(prefix="repro-mc-") as workdir:
            recorded: dict[str, str] = {}
            sources = []
            for spec in specs:
                if spec.name not in recorded:
                    path = os.path.join(workdir, f"{spec.name}.trace")
                    record_spec(spec, path)
                    recorded[spec.name] = path
                sources.append(recorded[spec.name])
            return _replay_mc_and_print(
                sources, [spec.name for spec in specs], jobs,
                arguments.engine,
            )
    sources = list(arguments.traces)
    if arguments.cores is not None:
        if arguments.cores <= 0:
            raise ValueError("--cores must be positive")
        # Fewer files than cores: cycle them, the homogeneous
        # multi-programmed study (N instances of one workload).
        sources = [sources[i % len(sources)] for i in range(arguments.cores)]
    labels = [os.path.basename(source) for source in sources]
    return _replay_mc_and_print(sources, labels, jobs, arguments.engine)


def _add_engine_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--engine", choices=("columnar", "records"), default=None,
        help="replay engine: columnar (numpy batch kernels, the default "
        "when numpy is available) or records (pure-Python per-record "
        "oracle); statistics are bit-identical either way",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces",
        description="Record, inspect, shard and replay memory traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show the scenario corpus")

    record = commands.add_parser("record", help="record a scenario to a file")
    record.add_argument(
        "--scenario", default="server-churn",
        help=f"corpus scenario name (known: {', '.join(sorted(CORPUS))})",
    )
    record.add_argument(
        "--spec", default=None,
        help="path to a JSON spec document (overrides --scenario)",
    )
    record.add_argument(
        "--instructions", type=int, default=None,
        help="override the spec's trace length",
    )
    record.add_argument("--out", required=True, help="output trace path")
    record.add_argument(
        "--compress", action="store_true",
        help="write the CALTRC02 frame-compressed container "
        "(replay statistics are identical either way)",
    )

    info = commands.add_parser(
        "info", help="print header/footer/compression summary"
    )
    info.add_argument("trace")
    info.add_argument(
        "--frames", action="store_true",
        help="also list per-epoch frame statistics (CALTRC02 only)",
    )

    replay = commands.add_parser("replay", help="replay one trace file")
    replay.add_argument("trace")
    replay.add_argument(
        "--mode", choices=("timing", "hierarchy"), default="timing",
        help="timing: tag-only ladder, bit-identical verification; "
        "hierarchy: data-carrying stack with exception accounting",
    )
    replay.add_argument(
        "--no-verify", action="store_true",
        help="skip footer verification in timing mode",
    )
    _add_engine_argument(replay)

    shard = commands.add_parser("shard", help="split into per-epoch shards")
    shard.add_argument("trace")
    shard.add_argument("--out-dir", required=True)
    shard.add_argument("--shards", "-n", type=int, default=4)

    rs = commands.add_parser(
        "replay-shards", help="replay shard files with merged accounting"
    )
    rs.add_argument("shards", nargs="+", help="shard trace files")
    rs.add_argument("--jobs", "-j", type=int, default=1)
    rs.add_argument("--mode", choices=("timing", "hierarchy"), default="timing")
    _add_engine_argument(rs)

    mc = commands.add_parser(
        "replay-mc",
        help="multi-core shared-L3 replay: one trace stream per core",
    )
    mc.add_argument(
        "traces", nargs="*",
        help="one trace file per core (cycled up to --cores when fewer)",
    )
    mc.add_argument(
        "--mix", default=None,
        help="record and replay a named registry mix instead of files "
        f"(known: {', '.join(sorted(MULTICORE_MIXES))}; or an inline "
        "list like 'server-churn,2x pointer-chase')",
    )
    mc.add_argument(
        "--instructions", type=int, default=None,
        help="trace length per core when recording a --mix",
    )
    mc.add_argument(
        "--cores", "-c", type=int, default=None,
        help="number of cores (default: one per trace / mix entry)",
    )
    mc.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the per-core ladder phase "
        "(statistics are identical at any value)",
    )
    _add_engine_argument(mc)

    arguments = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "record": _cmd_record,
        "info": _cmd_info,
        "replay": _cmd_replay,
        "shard": _cmd_shard,
        "replay-shards": _cmd_replay_shards,
        "replay-mc": _cmd_replay_mc,
    }[arguments.command]
    try:
        return handler(arguments)
    except (TraceFormatError, TraceIntegrityError, OSError) as error:
        # Runtime failures (corrupt/divergent/missing traces) are not
        # usage errors: report plainly, exit 1, no usage banner.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as error:
        # str(KeyError) is the repr of its argument — unwrap so the
        # message is not printed inside stray quotes.
        if isinstance(error, KeyError) and error.args:
            parser.error(str(error.args[0]))
        else:
            parser.error(str(error))
        return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
