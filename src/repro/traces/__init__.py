"""Trace engine: record, persist, compress, shard and replay traces.

Workloads become first-class artifacts: the recorder taps a live driver
(the workload generator, or the attack-suite campaign driver) and
streams its event stream to a compact versioned binary format —
fixed-record ``CALTRC01`` or frame-compressed ``CALTRC02`` (readers
auto-detect; replay statistics are identical).  The replayer reproduces
the live run's cycle/exception statistics bit-identically from the
file; the scenario registry names 8 declarative realistic mixes (plus
named multi-core mixes); sharded replay splits a trace at epoch
boundaries and fans the shards across worker processes with merged
accounting; multi-core replay interleaves one trace stream per core
through private L1/L2 ladders into a shared L3 with per-core
attribution.  ``python -m repro.traces`` is the CLI
(record/replay/info/shard/replay-shards/replay-mc/list); the
content-addressed corpus store in :mod:`repro.corpus` builds on all of
this.
"""

from repro.traces.compress import CompressedTraceWriter, transcode
from repro.traces.format import (
    TraceFormatError,
    TraceIntegrityError,
    TraceReader,
    TraceWriter,
    trace_writer,
)
from repro.traces.recorder import RecordingSink, live_run, record_spec
from repro.traces.registry import (
    CORPUS,
    MULTICORE_MIXES,
    MulticoreMixSpec,
    TraceScenarioSpec,
    corpus_spec,
    expand_core_names,
    load_spec,
    multicore_mix,
)
from repro.traces.replayer import (
    MergedReplay,
    MulticoreReplay,
    ShardStats,
    replay_hierarchy,
    replay_multicore,
    replay_shards,
    replay_timing,
    shard_trace,
)

__all__ = [
    "CORPUS",
    "MULTICORE_MIXES",
    "CompressedTraceWriter",
    "MergedReplay",
    "MulticoreMixSpec",
    "MulticoreReplay",
    "RecordingSink",
    "ShardStats",
    "TraceFormatError",
    "TraceIntegrityError",
    "TraceReader",
    "TraceScenarioSpec",
    "TraceWriter",
    "corpus_spec",
    "expand_core_names",
    "live_run",
    "load_spec",
    "multicore_mix",
    "record_spec",
    "replay_hierarchy",
    "replay_multicore",
    "replay_shards",
    "replay_timing",
    "shard_trace",
    "trace_writer",
    "transcode",
]
