"""Trace engine: record, persist, shard and replay memory traces.

Workloads become first-class artifacts: the recorder taps the live
workload generator and streams its event stream to a compact versioned
binary format; the replayer reproduces the live run's cycle/exception
statistics bit-identically from the file; the scenario registry names
~6 declarative realistic mixes; sharded replay splits a trace at epoch
boundaries and fans the shards across worker processes with merged
accounting.  ``python -m repro.traces`` is the CLI
(record/replay/info/shard/replay-shards/list).
"""

from repro.traces.format import (
    TraceFormatError,
    TraceIntegrityError,
    TraceReader,
    TraceWriter,
)
from repro.traces.recorder import RecordingSink, record_spec
from repro.traces.registry import (
    CORPUS,
    TraceScenarioSpec,
    corpus_spec,
    load_spec,
)
from repro.traces.replayer import (
    MergedReplay,
    ShardStats,
    replay_hierarchy,
    replay_shards,
    replay_timing,
    shard_trace,
)

__all__ = [
    "CORPUS",
    "MergedReplay",
    "RecordingSink",
    "ShardStats",
    "TraceFormatError",
    "TraceIntegrityError",
    "TraceReader",
    "TraceScenarioSpec",
    "TraceWriter",
    "corpus_spec",
    "load_spec",
    "record_spec",
    "replay_hierarchy",
    "replay_shards",
    "replay_timing",
    "shard_trace",
]
