"""Trace engine: record, persist, shard and replay memory traces.

Workloads become first-class artifacts: the recorder taps the live
workload generator and streams its event stream to a compact versioned
binary format; the replayer reproduces the live run's cycle/exception
statistics bit-identically from the file; the scenario registry names
~6 declarative realistic mixes (plus named multi-core mixes); sharded
replay splits a trace at epoch boundaries and fans the shards across
worker processes with merged accounting; multi-core replay interleaves
one trace stream per core through private L1/L2 ladders into a shared
L3 with per-core attribution.  ``python -m repro.traces`` is the CLI
(record/replay/info/shard/replay-shards/replay-mc/list).
"""

from repro.traces.format import (
    TraceFormatError,
    TraceIntegrityError,
    TraceReader,
    TraceWriter,
)
from repro.traces.recorder import RecordingSink, record_spec
from repro.traces.registry import (
    CORPUS,
    MULTICORE_MIXES,
    MulticoreMixSpec,
    TraceScenarioSpec,
    corpus_spec,
    expand_core_names,
    load_spec,
    multicore_mix,
)
from repro.traces.replayer import (
    MergedReplay,
    MulticoreReplay,
    ShardStats,
    replay_hierarchy,
    replay_multicore,
    replay_shards,
    replay_timing,
    shard_trace,
)

__all__ = [
    "CORPUS",
    "MULTICORE_MIXES",
    "MergedReplay",
    "MulticoreMixSpec",
    "MulticoreReplay",
    "RecordingSink",
    "ShardStats",
    "TraceFormatError",
    "TraceIntegrityError",
    "TraceReader",
    "TraceScenarioSpec",
    "TraceWriter",
    "corpus_spec",
    "expand_core_names",
    "load_spec",
    "multicore_mix",
    "record_spec",
    "replay_hierarchy",
    "replay_multicore",
    "replay_shards",
    "replay_timing",
    "shard_trace",
]
