"""Replay engines: trace file → statistics, single-process or sharded.

Three consumers of the record stream:

:func:`replay_timing`
    Rebuilds the tag-only cache ladder from the recorded geometry and
    pushes every touch through it — the same work the live generator
    did, minus the RNG and heap bookkeeping.  Returns a
    :class:`~repro.workloads.generator.RunResult` that is bit-identical
    to the live run's (verified against the footer unless disabled), so
    every timing figure can run from a persisted trace.

:func:`replay_hierarchy`
    Drives the data-carrying :class:`MemoryHierarchy` through its
    batched :meth:`replay_trace` entry point, interpreting CFORM records
    as security-byte sets on the touched lines — exception accounting
    (violations) plus AMAT cycles for the same stream.

:func:`shard_trace` / :func:`replay_shards`
    Splits a trace into per-epoch-range shard files (EPOCH markers are
    the only legal split points, so allocation-event clusters are never
    torn) and replays the shards across worker processes with merged
    accounting.  Each shard replays against a cold ladder — the regions
    are independent, SimPoint-style, and warmup markers are ignored so
    the counted records depend only on the trace, not the partition —
    so merged statistics are identical whether the shards run serially
    or in parallel, and the linear AMAT model makes merged cycles equal
    the cycles of the merged counts.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.cpu.pipeline import MemoryEventCounts
from repro.memory.cache import CacheGeometry, TagOnlyCache
from repro.memory.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    amat_cycles,
)
from repro.traces.format import (
    EV_ALLOC,
    EV_CFORM,
    EV_EPOCH,
    EV_FREE,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
    KIND_NAMES,
    TraceFormatError,
    TraceIntegrityError,
    TraceReader,
    TraceWriter,
)
from repro.traces.registry import TraceScenarioSpec
from repro.workloads.generator import RunResult

#: Ops accumulated before one ``replay_trace`` batch in hierarchy mode.
HIERARCHY_BATCH_OPS = 2048

#: Byte offsets califormed per line when a CFORM record is replayed
#: through the data-carrying hierarchy.  The generator's CFORM events
#: price dummy stores, not a concrete mask; the replayer pins the span
#: to the line tail so violation accounting is deterministic.
CFORM_REPLAY_OFFSETS = (62, 63)


def _config_from_header(header: dict) -> HierarchyConfig:
    try:
        geometry = header["geometry"]
        l1_lat, l2_lat, l3_lat, dram_lat = geometry["latencies"]
        l2_extra, l3_extra = geometry.get("extra_cycles", (0, 0))
        return HierarchyConfig(
            l1_geometry=CacheGeometry(*geometry["l1"]),
            l2_geometry=CacheGeometry(*geometry["l2"]),
            l3_geometry=CacheGeometry(*geometry["l3"]),
            l1_latency=l1_lat,
            l2_latency=l2_lat,
            l3_latency=l3_lat,
            dram_latency=dram_lat,
            l2_extra_cycles=l2_extra,
            l3_extra_cycles=l3_extra,
        )
    except KeyError as missing:
        raise TraceFormatError(
            f"trace header missing {missing} — not a recorder-written trace?"
        ) from None


@dataclass(frozen=True)
class ShardStats:
    """Accounting for one replayed shard (or one whole trace)."""

    events: MemoryEventCounts
    touches: int
    cform_lines: int
    alloc_events: int
    violations: int
    amat_cycles: int

    def merged_with(self, other: "ShardStats") -> "ShardStats":
        return ShardStats(
            events=MemoryEventCounts(
                l1_accesses=self.events.l1_accesses + other.events.l1_accesses,
                l1_misses=self.events.l1_misses + other.events.l1_misses,
                l2_misses=self.events.l2_misses + other.events.l2_misses,
                l3_misses=self.events.l3_misses + other.events.l3_misses,
            ),
            touches=self.touches + other.touches,
            cform_lines=self.cform_lines + other.cform_lines,
            alloc_events=self.alloc_events + other.alloc_events,
            violations=self.violations + other.violations,
            amat_cycles=self.amat_cycles + other.amat_cycles,
        )


@dataclass(frozen=True)
class MergedReplay:
    """Summed accounting of a multi-shard replay."""

    shards: int
    stats: ShardStats


def _amat_cycles(config: HierarchyConfig, events: MemoryEventCounts) -> int:
    return amat_cycles(
        config,
        events.l1_accesses,
        events.l1_misses,
        events.l2_misses,
        events.l3_misses,
    )


def _replay_timing_stream(reader: TraceReader, honor_warm: bool = True) -> ShardStats:
    """Push one record stream through a cold tag-only ladder.

    ``honor_warm`` replays EV_WARM as the live run's counter reset —
    required for bit-identical full-trace replay.  Shard (region) replay
    passes ``False``: a region is self-contained, so every record counts
    and the merged accounting depends only on the record stream, not on
    which shard happens to contain the warmup boundary.
    """
    config = _config_from_header(reader.header)
    l1 = TagOnlyCache(config.l1_geometry)
    l2 = TagOnlyCache(config.l2_geometry)
    l3 = TagOnlyCache(config.l3_geometry)
    l1_access, l2_access, l3_access = l1.access, l2.access, l3.access
    touches = 0
    cform_lines = 0
    alloc_events = 0
    for kind, address, arg in reader.records():
        if kind == EV_LOAD or kind == EV_STORE:
            touches += 1
            if not l1_access(address):
                if not l2_access(address):
                    l3_access(address)
        elif kind == EV_CFORM:
            cform_lines += arg
            for line_index in range(arg):
                line_address = address + line_index * 64
                touches += 1
                if not l1_access(line_address):
                    if not l2_access(line_address):
                        l3_access(line_address)
        elif kind == EV_ALLOC:
            alloc_events += 1
        elif kind == EV_FREE or kind == EV_EPOCH:
            pass
        elif kind == EV_WARM:
            if honor_warm:
                l1.reset_counters()
                l2.reset_counters()
                l3.reset_counters()
                touches = 0
                cform_lines = 0
                alloc_events = 0
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    events = MemoryEventCounts(
        l1_accesses=l1.accesses,
        l1_misses=l1.misses,
        l2_misses=l2.misses,
        l3_misses=l3.misses,
    )
    return ShardStats(
        events=events,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        violations=0,
        amat_cycles=_amat_cycles(config, events),
    )


def replay_timing(source, verify: bool = True, with_footer: bool = False):
    """Replay a full trace through fresh tag caches; return its RunResult.

    With ``verify`` (the default) the recomputed event counts and the
    CFORM/allocation accounting are checked against the footer the
    recorder wrote; any divergence raises :class:`TraceIntegrityError`.
    The returned result is bit-identical to the live run's.  With
    ``with_footer`` the return value is ``(result, footer)`` so callers
    needing footer metadata (record counts, ...) avoid a second pass
    over the file.

    Only whole recorded traces carry the run summary this reconstructs;
    for shard files use :func:`replay_shards` (region accounting).
    """
    with TraceReader(source) as reader:
        stats = _replay_timing_stream(reader)
        footer = reader.read_footer()
        if "benchmark" not in footer:
            kind = footer.get("kind", "unknown")
            raise TraceFormatError(
                f"not a whole recorded trace (footer kind {kind!r}): "
                "no run summary to reconstruct — replay shard files with "
                "replay-shards / replay_shards()"
            )
        try:
            spec_document = reader.header["spec"]
        except KeyError:
            raise TraceFormatError(
                "trace header missing 'spec' — not a recorder-written trace?"
            ) from None
        spec = TraceScenarioSpec.from_dict(spec_document)
    recorded_events = footer.get("events")
    if verify and recorded_events is None:
        raise TraceIntegrityError(
            "footer carries no recorded events to verify against; "
            "pass verify=False to replay anyway"
        )
    try:
        if verify:
            replayed = {
                "l1_accesses": stats.events.l1_accesses,
                "l1_misses": stats.events.l1_misses,
                "l2_misses": stats.events.l2_misses,
                "l3_misses": stats.events.l3_misses,
            }
            if replayed != recorded_events:
                raise TraceIntegrityError(
                    f"replayed cache events {replayed} != "
                    f"recorded {recorded_events}"
                )
            if stats.cform_lines != footer["cform_instructions"]:
                raise TraceIntegrityError(
                    f"replayed {stats.cform_lines} CFORM lines, "
                    f"recorded {footer['cform_instructions']}"
                )
            if stats.alloc_events != footer["alloc_events"]:
                raise TraceIntegrityError(
                    f"replayed {stats.alloc_events} allocation events, "
                    f"recorded {footer['alloc_events']}"
                )
        result = RunResult(
            benchmark=footer["benchmark"],
            scenario=spec.build_scenario(),
            instructions=footer["instructions"],
            events=stats.events,
            cform_instructions=stats.cform_lines,
            alloc_events=stats.alloc_events,
        )
    except KeyError as missing:
        raise TraceFormatError(
            f"trace footer missing {missing} — foreign or partially "
            "written recording"
        ) from None
    return (result, footer) if with_footer else result


def _replay_hierarchy_stream(
    reader: TraceReader, honor_warm: bool = True
) -> ShardStats:
    """Drive the data-carrying hierarchy via batched ``replay_trace``.

    ``honor_warm`` as in :func:`_replay_timing_stream`.
    """
    from repro.core.cform import CformRequest

    config = _config_from_header(reader.header)
    hierarchy = MemoryHierarchy(config)
    replay_batch = hierarchy.replay_trace
    cform = hierarchy.cform
    ops: list[tuple] = []
    violations = 0
    touches = 0
    cform_lines = 0
    alloc_events = 0
    for kind, address, arg in reader.records():
        if kind == EV_LOAD:
            ops.append(("L", address, arg))
            touches += 1
            if len(ops) >= HIERARCHY_BATCH_OPS:
                violations += replay_batch(ops)
                ops = []
        elif kind == EV_STORE:
            ops.append(("S", address, bytes([address & 0xFF]) * arg))
            touches += 1
            if len(ops) >= HIERARCHY_BATCH_OPS:
                violations += replay_batch(ops)
                ops = []
        elif kind == EV_CFORM:
            if ops:
                violations += replay_batch(ops)
                ops = []
            cform_lines += arg
            for line_index in range(arg):
                line_address = (address + line_index * 64) & ~63
                # Object churn re-califorms reused lines; CFORM-set on an
                # already-set byte is an architectural usage error, so
                # only the still-clear offsets are set.
                current = hierarchy.secmask_of(line_address)
                wanted = [
                    offset
                    for offset in CFORM_REPLAY_OFFSETS
                    if not (current >> offset) & 1
                ]
                if wanted:
                    cform(CformRequest.set_bytes(line_address, wanted))
                touches += 1
        elif kind == EV_ALLOC:
            alloc_events += 1
        elif kind == EV_FREE or kind == EV_EPOCH:
            pass
        elif kind == EV_WARM:
            if honor_warm:
                if ops:
                    violations += replay_batch(ops)
                    ops = []
                hierarchy.reset_stats()
                violations = 0
                touches = 0
                cform_lines = 0
                alloc_events = 0
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    if ops:
        violations += replay_batch(ops)
    events = MemoryEventCounts(
        l1_accesses=hierarchy.l1.stats.accesses,
        l1_misses=hierarchy.l1.stats.misses,
        l2_misses=hierarchy.l2.stats.misses,
        l3_misses=hierarchy.l3.stats.misses,
    )
    return ShardStats(
        events=events,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        violations=violations,
        amat_cycles=hierarchy.total_cycles(),
    )


def replay_hierarchy(source) -> ShardStats:
    """Full-fidelity replay: data movement, exceptions, AMAT cycles."""
    with TraceReader(source) as reader:
        stats = _replay_hierarchy_stream(reader)
        reader.read_footer()
    return stats


# -- sharding ----------------------------------------------------------------


def shard_trace(path: str, out_dir: str, shards: int) -> list[str]:
    """Split ``path`` into ``shards`` contiguous per-epoch-range files.

    EPOCH markers (inserted between bursts by the recorder) are the only
    split points, so a shard never tears an allocation event's
    FREE/ALLOC/CFORM cluster.  Each shard is itself a valid trace file
    carrying the original header plus a ``shard`` stanza; shard footers
    hold per-shard record counts (events are recomputed at replay — a
    cold ladder per shard, SimPoint-style).
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    with TraceReader(path) as reader:
        footer = reader.read_footer()
    epochs = footer.get("epochs", 0)
    segments = epochs + 1  # trailing records after the last marker
    per_shard = max(1, -(-segments // shards))
    os.makedirs(out_dir, exist_ok=True)
    base = os.path.splitext(os.path.basename(path))[0]

    reader = TraceReader(path)
    writers: list[TraceWriter] = []
    counts: list[dict] = []
    paths: list[str] = []
    completed = False
    try:
        for index in range(shards):
            header = dict(reader.header)
            header["shard"] = {"index": index, "of": shards}
            shard_path = os.path.join(out_dir, f"{base}.shard{index:03d}.trace")
            writers.append(TraceWriter(shard_path, header))
            counts.append({KIND_NAMES[k]: 0 for k in KIND_NAMES})
            paths.append(shard_path)
        segment = 0
        for kind, address, arg in reader.records():
            name = KIND_NAMES.get(kind)
            if name is None:
                raise TraceFormatError(f"unknown record kind {kind}")
            shard_index = min(segment // per_shard, shards - 1)
            writers[shard_index].append(kind, address, arg)
            counts[shard_index][name] += 1
            if kind == EV_EPOCH:
                segment += 1
        for index, writer in enumerate(writers):
            writer.set_footer(
                {
                    "kind": "shard",
                    "shard": {"index": index, "of": shards},
                    "records": writer.record_count,
                    "counts": counts[index],
                    "source_records": footer.get("records"),
                }
            )
            writer.close()
        completed = True
    finally:
        reader.close()
        if not completed:
            # A failed split must not leave terminator-less shard files
            # behind for a later replay-shards glob to choke on.
            for writer, shard_path in zip(writers, paths):
                writer.abort()
                try:
                    os.remove(shard_path)
                except OSError:
                    pass
    return paths


def _replay_shard_worker(task: tuple[str, str]) -> ShardStats:
    """Process-pool entry point: replay one shard (region) file.

    Region semantics: EV_WARM does not reset counters here, so the
    merged accounting covers every record in the stream and is a
    function of the trace alone — the shard count only moves the cold
    cache boundaries.
    """
    shard_path, mode = task
    with TraceReader(shard_path) as reader:
        if mode == "hierarchy":
            stats = _replay_hierarchy_stream(reader, honor_warm=False)
        else:
            stats = _replay_timing_stream(reader, honor_warm=False)
        reader.read_footer()
    return stats


def replay_shards(
    shard_paths: list[str], jobs: int = 1, mode: str = "timing"
) -> MergedReplay:
    """Replay shard files (serially or across processes) and merge.

    ``jobs`` only changes wall-clock time: each shard replays against
    its own cold ladder, so the merged accounting is identical for any
    worker count — the invariant the round-trip tests pin down.

    Region semantics: EV_WARM markers are ignored (no counter reset),
    so every record in the stream is counted and the merged touch/
    CFORM/allocation totals are independent of the shard count; only
    the cache-boundary effects (cold starts per region) move with the
    partition.
    """
    if mode not in ("timing", "hierarchy"):
        raise ValueError(f"unknown replay mode {mode!r}")
    if not shard_paths:
        raise ValueError("no shard files to replay")
    tasks = [(path, mode) for path in shard_paths]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_replay_shard_worker, tasks))
    else:
        results = [_replay_shard_worker(task) for task in tasks]
    merged = results[0]
    for stats in results[1:]:
        merged = merged.merged_with(stats)
    return MergedReplay(shards=len(results), stats=merged)
