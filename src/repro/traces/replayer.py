"""Replay engines: trace file → statistics, single-process or sharded.

Three consumers of the record stream:

:func:`replay_timing`
    Rebuilds the tag-only cache ladder from the recorded geometry and
    pushes every touch through it — the same work the live generator
    did, minus the RNG and heap bookkeeping.  Returns a
    :class:`~repro.workloads.generator.RunResult` that is bit-identical
    to the live run's (verified against the footer unless disabled), so
    every timing figure can run from a persisted trace.

:func:`replay_hierarchy`
    Drives the data-carrying :class:`MemoryHierarchy` through its
    batched :meth:`replay_trace` entry point, interpreting CFORM records
    as security-byte sets on the touched lines — exception accounting
    (violations) plus AMAT cycles for the same stream.

:func:`shard_trace` / :func:`replay_shards`
    Splits a trace into per-epoch-range shard files (EPOCH markers are
    the only legal split points, so allocation-event clusters are never
    torn) and replays the shards across worker processes with merged
    accounting.  Each shard replays against a cold ladder — the regions
    are independent, SimPoint-style, and warmup markers are ignored so
    the counted records depend only on the trace, not the partition —
    so merged statistics are identical whether the shards run serially
    or in parallel, and the linear AMAT model makes merged cycles equal
    the cycles of the merged counts.

:func:`replay_multicore`
    Feeds one recorded trace (or shard stream) per core through private
    per-core L1/L2 tag ladders into one shared L3, interleaving the
    streams round-robin at record granularity.  The work splits at the
    L2/L3 boundary: each core's private-ladder filtering depends only on
    its own stream (so ``jobs`` fans the cores across worker processes),
    while the shared L3 always consumes the deterministically merged
    per-core miss streams serially — per-core and merged accounting are
    therefore identical at any worker count, and a 1-core run reproduces
    the single-ladder replay exactly.
"""

from __future__ import annotations

import heapq
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from operator import itemgetter

from repro.cpu.pipeline import MemoryEventCounts
from repro.memory.cache import CacheGeometry, TagOnlyCache
from repro.memory.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    amat_cycles,
)
from repro.memory.kernel import (
    HAVE_NUMPY,
    KIND_ALLOC,
    KIND_CFORM,
    KIND_EPOCH,
    KIND_LOAD,
    KIND_STORE,
    KIND_WARM,
    LadderKernel,
    expand_touches,
    require_numpy,
)
from repro.memory.multicore import PrivateLadder, SharedL3, SharedL3Kernel
from repro.telemetry.runtime import active as telemetry_active
from repro.telemetry.runtime import flush as telemetry_flush
from repro.telemetry.runtime import span as telemetry_span
from repro.traces.format import (
    EV_ALLOC,
    EV_CFORM,
    EV_EPOCH,
    EV_FREE,
    EV_LOAD,
    EV_STORE,
    EV_WARM,
    KIND_NAMES,
    TraceFormatError,
    TraceIntegrityError,
    TraceReader,
    trace_writer,
)
from repro.traces.registry import TraceScenarioSpec
from repro.workloads.generator import RunResult

#: Ops accumulated before one ``replay_trace`` batch in hierarchy mode.
HIERARCHY_BATCH_OPS = 2048

#: Byte offsets califormed per line when a CFORM record is replayed
#: through the data-carrying hierarchy.  The generator's CFORM events
#: price dummy stores, not a concrete mask; the replayer pins the span
#: to the line tail so violation accounting is deterministic.
CFORM_REPLAY_OFFSETS = (62, 63)


def _config_from_header(header: dict) -> HierarchyConfig:
    try:
        geometry = header["geometry"]
        l1_lat, l2_lat, l3_lat, dram_lat = geometry["latencies"]
        l2_extra, l3_extra = geometry.get("extra_cycles", (0, 0))
        return HierarchyConfig(
            l1_geometry=CacheGeometry(*geometry["l1"]),
            l2_geometry=CacheGeometry(*geometry["l2"]),
            l3_geometry=CacheGeometry(*geometry["l3"]),
            l1_latency=l1_lat,
            l2_latency=l2_lat,
            l3_latency=l3_lat,
            dram_latency=dram_lat,
            l2_extra_cycles=l2_extra,
            l3_extra_cycles=l3_extra,
        )
    except KeyError as missing:
        raise TraceFormatError(
            f"trace header missing {missing} — not a recorder-written trace?"
        ) from None


@dataclass(frozen=True)
class ShardStats:
    """Accounting for one replayed shard (or one whole trace)."""

    events: MemoryEventCounts
    touches: int
    cform_lines: int
    alloc_events: int
    violations: int
    amat_cycles: int

    def merged_with(self, other: "ShardStats") -> "ShardStats":
        return ShardStats(
            events=MemoryEventCounts(
                l1_accesses=self.events.l1_accesses + other.events.l1_accesses,
                l1_misses=self.events.l1_misses + other.events.l1_misses,
                l2_misses=self.events.l2_misses + other.events.l2_misses,
                l3_misses=self.events.l3_misses + other.events.l3_misses,
            ),
            touches=self.touches + other.touches,
            cform_lines=self.cform_lines + other.cform_lines,
            alloc_events=self.alloc_events + other.alloc_events,
            violations=self.violations + other.violations,
            amat_cycles=self.amat_cycles + other.amat_cycles,
        )


@dataclass(frozen=True)
class MergedReplay:
    """Summed accounting of a multi-shard replay."""

    shards: int
    stats: ShardStats


def _report_ladder(ladder) -> None:
    """Feed a finished ladder's batch-algorithm health into telemetry.

    Reported per level: vectorized rounds executed, accesses that fell
    to the per-set Python tail, and total accesses (the tail-fraction
    denominator).  No-op without an active telemetry sink.
    """
    tel = telemetry_active()
    if tel is None:
        return
    for name, level in ladder.levels:
        tel.inc("kernel_rounds_total", level.rounds, level=name)
        tel.inc("kernel_tail_accesses_total", level.tail_accesses, level=name)
        tel.inc("kernel_accesses_total", level.accesses, level=name)


def _amat_cycles(config: HierarchyConfig, events: MemoryEventCounts) -> int:
    return amat_cycles(
        config,
        events.l1_accesses,
        events.l1_misses,
        events.l2_misses,
        events.l3_misses,
    )


# -- engine selection ---------------------------------------------------------
#
# Every replay entry point runs on one of two engines producing
# bit-identical statistics:
#
#   "columnar"   column_batches() decode + the batched tag kernels of
#                :mod:`repro.memory.kernel` — the default when numpy is
#                importable, and the fast path for everything at scale;
#   "records"    the original record-at-a-time loops below — pure
#                Python, kept intact both as the numpy-less fallback and
#                as the oracle the differential tests replay against.

#: The engine names accepted everywhere an ``engine`` parameter appears.
ENGINES = ("columnar", "records")


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine choice to a concrete engine name.

    ``None`` selects ``"columnar"`` when numpy is importable and
    ``"records"`` otherwise; an explicit ``"columnar"`` without numpy
    raises the directed :class:`ImportError` of
    :func:`repro.memory.kernel.require_numpy`.
    """
    if engine is None:
        return "columnar" if HAVE_NUMPY else "records"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown replay engine {engine!r} (choose 'columnar' or "
            "'records')"
        )
    if engine == "columnar":
        require_numpy()
    return engine


def _first_unknown_kind(np, kinds):
    """First out-of-range kind code in a batch, or None.

    The columnar loops hoist the per-record ``unknown record kind``
    check to one vectorized scan per batch; the raised message matches
    the per-record engine's.
    """
    unknown = np.flatnonzero(kinds > KIND_EPOCH)
    return int(kinds[unknown[0]]) if unknown.size else None


def _warm_segments(np, kinds, honor_warm: bool):
    """Split one batch into ``(start, stop, warm_position)`` segments.

    With ``honor_warm``, the batch is split at every EV_WARM record so
    the caller can reset its counters exactly where the per-record loop
    would; ``warm_position`` is the WARM record's batch index (``None``
    for the final segment).  Without it the whole batch is one segment —
    WARM expands to zero touches, so no split is needed.
    """
    if honor_warm:
        start = 0
        for position in np.flatnonzero(kinds == KIND_WARM).tolist():
            yield start, position, position
            start = position + 1
        yield start, len(kinds), None
    else:
        yield 0, len(kinds), None


def _replay_timing_stream(reader: TraceReader, honor_warm: bool = True) -> ShardStats:
    """Push one record stream through a cold tag-only ladder.

    ``honor_warm`` replays EV_WARM as the live run's counter reset —
    required for bit-identical full-trace replay.  Shard (region) replay
    passes ``False``: a region is self-contained, so every record counts
    and the merged accounting depends only on the record stream, not on
    which shard happens to contain the warmup boundary.
    """
    config = _config_from_header(reader.header)
    l1 = TagOnlyCache(config.l1_geometry)
    l2 = TagOnlyCache(config.l2_geometry)
    l3 = TagOnlyCache(config.l3_geometry)
    l1_access, l2_access, l3_access = l1.access, l2.access, l3.access
    touches = 0
    cform_lines = 0
    alloc_events = 0
    for kind, address, arg in reader.records():
        if kind == EV_LOAD or kind == EV_STORE:
            touches += 1
            if not l1_access(address):
                if not l2_access(address):
                    l3_access(address)
        elif kind == EV_CFORM:
            cform_lines += arg
            for line_index in range(arg):
                line_address = address + line_index * 64
                touches += 1
                if not l1_access(line_address):
                    if not l2_access(line_address):
                        l3_access(line_address)
        elif kind == EV_ALLOC:
            alloc_events += 1
        elif kind == EV_FREE or kind == EV_EPOCH:
            pass
        elif kind == EV_WARM:
            if honor_warm:
                l1.reset_counters()
                l2.reset_counters()
                l3.reset_counters()
                touches = 0
                cform_lines = 0
                alloc_events = 0
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    events = MemoryEventCounts(
        l1_accesses=l1.accesses,
        l1_misses=l1.misses,
        l2_misses=l2.misses,
        l3_misses=l3.misses,
    )
    return ShardStats(
        events=events,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        violations=0,
        amat_cycles=_amat_cycles(config, events),
    )


def _replay_timing_columns(
    reader: TraceReader, honor_warm: bool = True
) -> ShardStats:
    """Columnar twin of :func:`_replay_timing_stream`.

    Decodes the trace as :class:`RecordColumns` batches and runs the
    touch columns through a 3-level :class:`LadderKernel`; the kernel's
    MRU-collapse argument (see :mod:`repro.memory.kernel`) is what makes
    the returned statistics bit-identical to the per-record loop's.
    """
    np = require_numpy()
    config = _config_from_header(reader.header)
    ladder = LadderKernel(config, levels=3)
    touches = 0
    cform_lines = 0
    alloc_events = 0
    for batch in reader.column_batches():
        kinds = batch.kind
        unknown = _first_unknown_kind(np, kinds)
        if unknown is not None:
            raise TraceFormatError(f"unknown record kind {unknown}")
        for start, stop, warm in _warm_segments(np, kinds, honor_warm):
            if stop > start:
                segment_kinds = kinds[start:stop]
                segment_args = batch.arg[start:stop]
                touch_addresses, _ = expand_touches(
                    segment_kinds, batch.address[start:stop], segment_args
                )
                ladder.touch_block(touch_addresses)
                touches += len(touch_addresses)
                cform_lines += int(
                    segment_args[segment_kinds == KIND_CFORM].sum()
                )
                alloc_events += int((segment_kinds == KIND_ALLOC).sum())
            if warm is not None:
                ladder.reset_counters()
                touches = 0
                cform_lines = 0
                alloc_events = 0
    _report_ladder(ladder)
    events = MemoryEventCounts(
        l1_accesses=ladder.l1.accesses,
        l1_misses=ladder.l1.misses,
        l2_misses=ladder.l2.misses,
        l3_misses=ladder.l3.misses,
    )
    return ShardStats(
        events=events,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        violations=0,
        amat_cycles=_amat_cycles(config, events),
    )


def replay_timing(
    source,
    verify: bool = True,
    with_footer: bool = False,
    engine: str | None = None,
):
    """Replay a full trace through fresh tag caches; return its RunResult.

    With ``verify`` (the default) the recomputed event counts and the
    CFORM/allocation accounting are checked against the footer the
    recorder wrote; any divergence raises :class:`TraceIntegrityError`.
    The returned result is bit-identical to the live run's.  With
    ``with_footer`` the return value is ``(result, footer)`` so callers
    needing footer metadata (record counts, ...) avoid a second pass
    over the file.

    ``engine`` picks the replay implementation (see :func:`resolve_engine`);
    both engines produce identical results, so the choice is purely a
    speed/dependency trade.

    Only whole recorded traces carry the run summary this reconstructs;
    for shard files use :func:`replay_shards` (region accounting).
    """
    engine = resolve_engine(engine)
    with telemetry_span("replay/timing", engine=engine) as tspan, \
            TraceReader(source) as reader:
        if engine == "columnar":
            stats = _replay_timing_columns(reader)
        else:
            stats = _replay_timing_stream(reader)
        tspan.set("touches", stats.touches)
        footer = reader.read_footer()
        if "benchmark" not in footer:
            kind = footer.get("kind", "unknown")
            raise TraceFormatError(
                f"not a whole recorded trace (footer kind {kind!r}): "
                "no run summary to reconstruct — replay shard files with "
                "replay-shards / replay_shards()"
            )
        try:
            spec_document = reader.header["spec"]
        except KeyError:
            raise TraceFormatError(
                "trace header missing 'spec' — not a recorder-written trace?"
            ) from None
        spec = TraceScenarioSpec.from_dict(spec_document)
    recorded_events = footer.get("events")
    if verify and recorded_events is None:
        raise TraceIntegrityError(
            "footer carries no recorded events to verify against; "
            "pass verify=False to replay anyway"
        )
    try:
        if verify:
            replayed = {
                "l1_accesses": stats.events.l1_accesses,
                "l1_misses": stats.events.l1_misses,
                "l2_misses": stats.events.l2_misses,
                "l3_misses": stats.events.l3_misses,
            }
            if replayed != recorded_events:
                raise TraceIntegrityError(
                    f"replayed cache events {replayed} != "
                    f"recorded {recorded_events}"
                )
            if stats.cform_lines != footer["cform_instructions"]:
                raise TraceIntegrityError(
                    f"replayed {stats.cform_lines} CFORM lines, "
                    f"recorded {footer['cform_instructions']}"
                )
            if stats.alloc_events != footer["alloc_events"]:
                raise TraceIntegrityError(
                    f"replayed {stats.alloc_events} allocation events, "
                    f"recorded {footer['alloc_events']}"
                )
        result = RunResult(
            benchmark=footer["benchmark"],
            scenario=spec.build_scenario(),
            instructions=footer["instructions"],
            events=stats.events,
            cform_instructions=stats.cform_lines,
            alloc_events=stats.alloc_events,
        )
    except KeyError as missing:
        raise TraceFormatError(
            f"trace footer missing {missing} — foreign or partially "
            "written recording"
        ) from None
    return (result, footer) if with_footer else result


def _replay_hierarchy_stream(
    reader: TraceReader, honor_warm: bool = True
) -> ShardStats:
    """Drive the data-carrying hierarchy via batched ``replay_trace``.

    ``honor_warm`` as in :func:`_replay_timing_stream`.
    """
    from repro.core.cform import CformRequest

    config = _config_from_header(reader.header)
    hierarchy = MemoryHierarchy(config)
    replay_batch = hierarchy.replay_trace
    cform = hierarchy.cform
    ops: list[tuple] = []
    violations = 0
    touches = 0
    cform_lines = 0
    alloc_events = 0
    for kind, address, arg in reader.records():
        if kind == EV_LOAD:
            ops.append(("L", address, arg))
            touches += 1
            if len(ops) >= HIERARCHY_BATCH_OPS:
                violations += replay_batch(ops)
                ops = []
        elif kind == EV_STORE:
            ops.append(("S", address, bytes([address & 0xFF]) * arg))
            touches += 1
            if len(ops) >= HIERARCHY_BATCH_OPS:
                violations += replay_batch(ops)
                ops = []
        elif kind == EV_CFORM:
            if ops:
                violations += replay_batch(ops)
                ops = []
            cform_lines += arg
            for line_index in range(arg):
                line_address = (address + line_index * 64) & ~63
                # Object churn re-califorms reused lines; CFORM-set on an
                # already-set byte is an architectural usage error, so
                # only the still-clear offsets are set.
                current = hierarchy.secmask_of(line_address)
                wanted = [
                    offset
                    for offset in CFORM_REPLAY_OFFSETS
                    if not (current >> offset) & 1
                ]
                if wanted:
                    cform(CformRequest.set_bytes(line_address, wanted))
                touches += 1
        elif kind == EV_ALLOC:
            alloc_events += 1
        elif kind == EV_FREE or kind == EV_EPOCH:
            pass
        elif kind == EV_WARM:
            if honor_warm:
                if ops:
                    violations += replay_batch(ops)
                    ops = []
                hierarchy.reset_stats()
                violations = 0
                touches = 0
                cform_lines = 0
                alloc_events = 0
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    if ops:
        violations += replay_batch(ops)
    events = MemoryEventCounts(
        l1_accesses=hierarchy.l1.stats.accesses,
        l1_misses=hierarchy.l1.stats.misses,
        l2_misses=hierarchy.l2.stats.misses,
        l3_misses=hierarchy.l3.stats.misses,
    )
    return ShardStats(
        events=events,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        violations=violations,
        amat_cycles=hierarchy.total_cycles(),
    )


def _replay_hierarchy_columns(
    reader: TraceReader, honor_warm: bool = True
) -> ShardStats:
    """Columnar twin of :func:`_replay_hierarchy_stream`.

    The data-carrying hierarchy moves real bytes per access, so the
    per-access work stays sequential — the columnar win here is the
    array-native decode plus :meth:`MemoryHierarchy.replay_columns`,
    which consumes whole column segments without building op tuples.
    State evolution is record-order either way (the per-record path's op
    batching is a pure buffering artifact), so statistics and violation
    counts are bit-identical.
    """
    np = require_numpy()
    config = _config_from_header(reader.header)
    hierarchy = MemoryHierarchy(config)
    replay_columns = hierarchy.replay_columns
    violations = 0
    touches = 0
    cform_lines = 0
    alloc_events = 0
    for batch in reader.column_batches():
        kinds = batch.kind
        unknown = _first_unknown_kind(np, kinds)
        if unknown is not None:
            raise TraceFormatError(f"unknown record kind {unknown}")
        for start, stop, warm in _warm_segments(np, kinds, honor_warm):
            if stop > start:
                segment_kinds = kinds[start:stop]
                segment_args = batch.arg[start:stop]
                violations += replay_columns(
                    segment_kinds,
                    batch.address[start:stop],
                    segment_args,
                    cform_offsets=CFORM_REPLAY_OFFSETS,
                )
                cform = int(segment_args[segment_kinds == KIND_CFORM].sum())
                touches += cform + int(
                    (
                        (segment_kinds == KIND_LOAD)
                        | (segment_kinds == KIND_STORE)
                    ).sum()
                )
                cform_lines += cform
                alloc_events += int((segment_kinds == KIND_ALLOC).sum())
            if warm is not None:
                hierarchy.reset_stats()
                violations = 0
                touches = 0
                cform_lines = 0
                alloc_events = 0
    events = MemoryEventCounts(
        l1_accesses=hierarchy.l1.stats.accesses,
        l1_misses=hierarchy.l1.stats.misses,
        l2_misses=hierarchy.l2.stats.misses,
        l3_misses=hierarchy.l3.stats.misses,
    )
    return ShardStats(
        events=events,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        violations=violations,
        amat_cycles=hierarchy.total_cycles(),
    )


def replay_hierarchy(source, engine: str | None = None) -> ShardStats:
    """Full-fidelity replay: data movement, exceptions, AMAT cycles."""
    engine = resolve_engine(engine)
    with telemetry_span("replay/hierarchy", engine=engine) as tspan, \
            TraceReader(source) as reader:
        if engine == "columnar":
            stats = _replay_hierarchy_columns(reader)
        else:
            stats = _replay_hierarchy_stream(reader)
        tspan.set("touches", stats.touches)
        tspan.set("violations", stats.violations)
        reader.read_footer()
    return stats


# -- sharding ----------------------------------------------------------------


def shard_trace(path: str, out_dir: str, shards: int) -> list[str]:
    """Split ``path`` into ``shards`` contiguous per-epoch-range files.

    EPOCH markers (inserted between bursts by the recorder) are the only
    split points, so a shard never tears an allocation event's
    FREE/ALLOC/CFORM cluster.  Each shard is itself a valid trace file
    carrying the original header plus a ``shard`` stanza; shard footers
    hold per-shard record counts (events are recomputed at replay — a
    cold ladder per shard, SimPoint-style).  Shards inherit the source's
    container version, so splitting a compressed (CALTRC02) trace yields
    compressed shards.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    with TraceReader(path) as reader:
        footer = reader.read_footer()
    epochs = footer.get("epochs", 0)
    segments = epochs + 1  # trailing records after the last marker
    per_shard = max(1, -(-segments // shards))
    os.makedirs(out_dir, exist_ok=True)
    base = os.path.splitext(os.path.basename(path))[0]

    reader = TraceReader(path)
    writers: list = []
    counts: list[dict] = []
    paths: list[str] = []
    completed = False
    try:
        for index in range(shards):
            header = dict(reader.header)
            header["shard"] = {"index": index, "of": shards}
            shard_path = os.path.join(out_dir, f"{base}.shard{index:03d}.trace")
            writers.append(trace_writer(shard_path, header, reader.version))
            counts.append({KIND_NAMES[k]: 0 for k in KIND_NAMES})
            paths.append(shard_path)
        segment = 0
        for kind, address, arg in reader.records():
            name = KIND_NAMES.get(kind)
            if name is None:
                raise TraceFormatError(f"unknown record kind {kind}")
            shard_index = min(segment // per_shard, shards - 1)
            writers[shard_index].append(kind, address, arg)
            counts[shard_index][name] += 1
            if kind == EV_EPOCH:
                segment += 1
        for index, writer in enumerate(writers):
            writer.set_footer(
                {
                    "kind": "shard",
                    "shard": {"index": index, "of": shards},
                    "records": writer.record_count,
                    "counts": counts[index],
                    "source_records": footer.get("records"),
                }
            )
            writer.close()
        completed = True
    finally:
        reader.close()
        if not completed:
            # A failed split must not leave terminator-less shard files
            # behind for a later replay-shards glob to choke on.
            for writer, shard_path in zip(writers, paths):
                writer.abort()
                try:
                    os.remove(shard_path)
                except OSError:
                    pass
    return paths


_SHARD_STREAMS = {
    ("timing", "records"): _replay_timing_stream,
    ("timing", "columnar"): _replay_timing_columns,
    ("hierarchy", "records"): _replay_hierarchy_stream,
    ("hierarchy", "columnar"): _replay_hierarchy_columns,
}


def _replay_shard_worker(task: tuple[str, str, str]) -> ShardStats:
    """Process-pool entry point: replay one shard (region) file.

    Region semantics: EV_WARM does not reset counters here, so the
    merged accounting covers every record in the stream and is a
    function of the trace alone — the shard count only moves the cold
    cache boundaries.
    """
    shard_path, mode, engine = task
    replay_stream = _SHARD_STREAMS[mode, engine]
    with TraceReader(shard_path) as reader:
        stats = replay_stream(reader, honor_warm=False)
        reader.read_footer()
    # Pool children exit via os._exit (no atexit), so any metrics this
    # worker accumulated must hit the span log before the task returns.
    telemetry_flush()
    return stats


def replay_shards(
    shard_paths: list[str],
    jobs: int = 1,
    mode: str = "timing",
    engine: str | None = None,
) -> MergedReplay:
    """Replay shard files (serially or across processes) and merge.

    ``jobs`` only changes wall-clock time: each shard replays against
    its own cold ladder, so the merged accounting is identical for any
    worker count — the invariant the round-trip tests pin down.

    Region semantics: EV_WARM markers are ignored (no counter reset),
    so every record in the stream is counted and the merged touch/
    CFORM/allocation totals are independent of the shard count; only
    the cache-boundary effects (cold starts per region) move with the
    partition.
    """
    if mode not in ("timing", "hierarchy"):
        raise ValueError(f"unknown replay mode {mode!r}")
    if not shard_paths:
        raise ValueError("no shard files to replay")
    engine = resolve_engine(engine)
    tasks = [(path, mode, engine) for path in shard_paths]
    with telemetry_span(
        "replay/shards",
        shards=len(tasks), jobs=jobs, mode=mode, engine=engine,
    ) as tspan:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_replay_shard_worker, tasks))
        else:
            results = [_replay_shard_worker(task) for task in tasks]
        with telemetry_span("replay/shards/merge", shards=len(results)):
            merged = results[0]
            for stats in results[1:]:
                merged = merged.merged_with(stats)
        tspan.set("touches", merged.touches)
    return MergedReplay(shards=len(results), stats=merged)


# -- multi-core shared-L3 replay ---------------------------------------------
#
# Record streams interleave round-robin at record granularity: the j-th
# record of core c occupies global slot ``j * cores + c``, so slots from
# different cores can never collide and the merged order is a pure
# function of the inputs.  The simulation splits at the L2/L3 boundary:
#
#   phase 1 (parallelisable per core)  each core's stream runs through
#       its own private L1/L2 tag ladder; the residue — the L3 request
#       stream — is captured as (slot, address) pairs;
#   phase 2 (always serial)            the per-core L3 request streams
#       are merged by slot and fed through one shared L3 tag array with
#       per-core hit/miss attribution.
#
# Because phase 1 depends only on one core's records and phase 2 is a
# deterministic merge, per-core and merged accounting are identical at
# any ``jobs`` value, and a 1-core run degenerates to the single-ladder
# replay exactly.

#: Sentinel address in a phase-1 entry list marking a core's warmup
#: boundary: phase 2 resets that core's shared-L3 attribution there
#: (contents stay warm), mirroring the single-ladder EV_WARM handling.
_WARM_RESET = -1

#: Per-core physical-address stride for the shared L3.  Co-running
#: programs occupy disjoint physical pages, but every recorded trace
#: uses the generator's one synthetic address space (same heap/stack
#: bases), so without disambiguation co-runners would constructively
#: share L3 lines instead of contending.  Each core's L3 requests are
#: offset by ``core * stride``; the stride is far above any recorded
#: address and a multiple of every level's way span, so a core's own
#: set/tag behaviour — and hence every solo statistic — is unchanged.
_CORE_ADDRESS_STRIDE = 1 << 44


@dataclass(frozen=True)
class _CoreFilter:
    """Phase-1 output for one core: private-ladder stats + L3 residue."""

    config: HierarchyConfig
    l1_accesses: int
    l1_misses: int
    l2_misses: int
    touches: int
    cform_lines: int
    alloc_events: int
    entries: list[tuple[int, int]]  # (slot, address | _WARM_RESET)


@dataclass(frozen=True)
class MulticoreReplay:
    """Accounting of one multi-core shared-L3 replay."""

    cores: int
    per_core: tuple[ShardStats, ...]
    merged: ShardStats


def _filter_core_stream(
    core: int, cores: int, sources, config: HierarchyConfig | None
) -> _CoreFilter:
    """Phase 1: run one core's record stream through its private ladder.

    ``sources`` is that core's sequence of trace files (paths or binary
    file objects), replayed as one concatenated stream.  Warm markers
    are honored for whole recorded traces (counter reset, as in
    :func:`replay_timing`) and ignored for shard files (region
    semantics, as in :func:`replay_shards`).
    """
    explicit_config = config
    ladder: PrivateLadder | None = None
    ladder_access = None
    entries: list[tuple[int, int]] = []
    touches = 0
    cform_lines = 0
    alloc_events = 0
    offset = core * _CORE_ADDRESS_STRIDE  # disjoint physical spaces
    slot = core  # global slot of this core's next record
    for source in sources:
        with TraceReader(source) as reader:
            source_config = _config_from_header(reader.header)
            if config is None:
                # No caller override: the first file pins the config a
                # caller override would otherwise supply; later files of
                # the same stream must agree or the ladder geometry
                # would silently misrepresent them.
                config = source_config
            elif explicit_config is None and source_config != config:
                raise TraceFormatError(
                    "trace files of one core stream were recorded under "
                    "different hierarchy configurations"
                )
            if ladder is None:
                ladder = PrivateLadder(config)
                ladder_access = ladder.access
            honor_warm = "shard" not in reader.header
            for kind, address, arg in reader.records():
                if kind == EV_LOAD or kind == EV_STORE:
                    touches += 1
                    if not ladder_access(address):
                        entries.append((slot, address + offset))
                elif kind == EV_CFORM:
                    cform_lines += arg
                    for line_index in range(arg):
                        line_address = address + line_index * 64
                        touches += 1
                        if not ladder_access(line_address):
                            entries.append((slot, line_address + offset))
                elif kind == EV_ALLOC:
                    alloc_events += 1
                elif kind == EV_FREE or kind == EV_EPOCH:
                    pass
                elif kind == EV_WARM:
                    if honor_warm:
                        ladder.reset_counters()
                        touches = 0
                        cform_lines = 0
                        alloc_events = 0
                        entries.append((slot, _WARM_RESET))
                else:
                    raise TraceFormatError(f"unknown record kind {kind}")
                slot += cores
            reader.read_footer()
    if ladder is None:  # no sources for this core
        raise ValueError(f"core {core} has no trace sources")
    return _CoreFilter(
        config=config,
        l1_accesses=ladder.l1.accesses,
        l1_misses=ladder.l1.misses,
        l2_misses=ladder.l2.misses,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        entries=entries,
    )


def _filter_core_worker(task: tuple) -> _CoreFilter:
    """Process-pool entry point for phase 1 (paths only)."""
    core, cores, paths, config = task
    filtered = _filter_core_stream(core, cores, paths, config)
    telemetry_flush()  # pool children exit without atexit
    return filtered


@dataclass(frozen=True)
class _CoreFilterColumns:
    """Phase-1 output for one core on the columnar engine.

    Same accounting as :class:`_CoreFilter`, but the L3 residue is a
    pair of parallel int64 arrays (``slots`` / ``addresses``) instead of
    tuple entries; warm boundaries appear as ``_WARM_RESET`` addresses
    exactly like the per-record entries.
    """

    config: HierarchyConfig
    l1_accesses: int
    l1_misses: int
    l2_misses: int
    touches: int
    cform_lines: int
    alloc_events: int
    slots: "object"  # numpy int64 array
    addresses: "object"  # numpy int64 array


def _filter_core_columns(
    core: int, cores: int, sources, config: HierarchyConfig | None
) -> _CoreFilterColumns:
    """Columnar twin of :func:`_filter_core_stream`.

    A 2-level :class:`LadderKernel` filters the expanded touch columns;
    the surviving touches keep their record's global slot (``record
    index * cores + core``) so phase 2 can merge the per-core residues
    into the recorded interleaving.  CFORM touches share their record's
    slot with intra-record order preserved, matching the per-record
    entries exactly.
    """
    np = require_numpy()
    explicit_config = config
    ladder: LadderKernel | None = None
    slot_blocks: list = []
    address_blocks: list = []
    touches = 0
    cform_lines = 0
    alloc_events = 0
    offset = core * _CORE_ADDRESS_STRIDE  # disjoint physical spaces
    stream_index = 0  # records consumed; this core's next slot is
    #                   core + stream_index * cores
    for source in sources:
        with TraceReader(source) as reader:
            source_config = _config_from_header(reader.header)
            if config is None:
                config = source_config
            elif explicit_config is None and source_config != config:
                raise TraceFormatError(
                    "trace files of one core stream were recorded under "
                    "different hierarchy configurations"
                )
            if ladder is None:
                ladder = LadderKernel(config, levels=2)
            honor_warm = "shard" not in reader.header
            for batch in reader.column_batches():
                kinds = batch.kind
                unknown = _first_unknown_kind(np, kinds)
                if unknown is not None:
                    raise TraceFormatError(f"unknown record kind {unknown}")
                record_slots = core + (
                    stream_index + np.arange(len(kinds), dtype=np.int64)
                ) * cores
                for start, stop, warm in _warm_segments(np, kinds, honor_warm):
                    if stop > start:
                        segment_kinds = kinds[start:stop]
                        segment_args = batch.arg[start:stop]
                        touch_addresses, counts = expand_touches(
                            segment_kinds,
                            batch.address[start:stop],
                            segment_args,
                        )
                        missed = ladder.touch_block(touch_addresses)
                        if missed.size:
                            touch_slots = np.repeat(
                                record_slots[start:stop], counts
                            )
                            slot_blocks.append(touch_slots[missed])
                            address_blocks.append(
                                touch_addresses[missed] + offset
                            )
                        touches += len(touch_addresses)
                        cform_lines += int(
                            segment_args[segment_kinds == KIND_CFORM].sum()
                        )
                        alloc_events += int(
                            (segment_kinds == KIND_ALLOC).sum()
                        )
                    if warm is not None:
                        ladder.reset_counters()
                        touches = 0
                        cform_lines = 0
                        alloc_events = 0
                        slot_blocks.append(record_slots[warm : warm + 1])
                        address_blocks.append(
                            np.full(1, _WARM_RESET, dtype=np.int64)
                        )
                stream_index += len(kinds)
            reader.read_footer()
    if ladder is None:  # no sources for this core
        raise ValueError(f"core {core} has no trace sources")
    _report_ladder(ladder)
    if slot_blocks:
        slots = np.concatenate(slot_blocks)
        addresses = np.concatenate(address_blocks)
    else:
        slots = np.empty(0, dtype=np.int64)
        addresses = np.empty(0, dtype=np.int64)
    return _CoreFilterColumns(
        config=config,
        l1_accesses=ladder.l1.accesses,
        l1_misses=ladder.l1.misses,
        l2_misses=ladder.l2.misses,
        touches=touches,
        cform_lines=cform_lines,
        alloc_events=alloc_events,
        slots=slots,
        addresses=addresses,
    )


def _filter_core_columns_worker(task: tuple) -> _CoreFilterColumns:
    """Process-pool entry point for columnar phase 1 (paths only)."""
    core, cores, paths, config = task
    filtered = _filter_core_columns(core, cores, paths, config)
    telemetry_flush()  # pool children exit without atexit
    return filtered


def _merge_shared_columns(
    config: HierarchyConfig, cores: int, filters: list
) -> list[int]:
    """Columnar phase 2: merge the residues into one shared-L3 kernel.

    A stable sort on the concatenated slot arrays reproduces the
    ``heapq.merge`` interleaving exactly: cross-core slots are unique
    (``slot % cores == core``), and equal slots — a CFORM record's line
    touches — are contiguous per core in stream order, which stable
    sorting preserves.  Warm-reset sentinels split the stream so each
    core's attribution resets at its recorded boundary while the tag
    contents stay warm.  Returns the per-core shared-L3 miss counts.
    """
    np = require_numpy()
    shared = SharedL3Kernel(config, cores)
    slots = np.concatenate([filtered.slots for filtered in filters])
    addresses = np.concatenate([filtered.addresses for filtered in filters])
    order = np.argsort(slots, kind="stable")
    slots = slots[order]
    addresses = addresses[order]
    core_column = slots % cores
    start = 0
    for position in np.flatnonzero(addresses == _WARM_RESET).tolist():
        if position > start:
            shared.replay_columns(
                core_column[start:position], addresses[start:position]
            )
        shared.reset_core(int(core_column[position]))
        start = position + 1
    if start < len(addresses):
        shared.replay_columns(core_column[start:], addresses[start:])
    return shared.misses


def replay_multicore(
    core_sources: list,
    jobs: int = 1,
    config: HierarchyConfig | None = None,
    engine: str | None = None,
) -> MulticoreReplay:
    """Replay one trace stream per core against a shared L3.

    ``core_sources`` holds one entry per core: a trace path (or binary
    file object), or a list of them replayed as one concatenated stream
    (e.g. a core's shard files in order).  ``jobs`` fans the per-core
    private-ladder phase across worker processes — the shared-L3 phase
    is always the same deterministic serial merge, so the returned
    accounting is identical for any worker count.  ``config`` overrides
    the recorded hierarchy configuration (e.g. the Figure-10 pessimistic
    extra-latency knobs); by default every trace must have been recorded
    under the same configuration, which is then used.

    ``engine`` picks the replay implementation for both phases (see
    :func:`resolve_engine`); the returned accounting is identical either
    way.

    Returns per-core :class:`ShardStats` (shared-L3 misses attributed to
    the requesting core, cycles from the shared AMAT helper) plus their
    merged sum.
    """
    if not core_sources:
        raise ValueError("no cores to replay")
    engine = resolve_engine(engine)
    normalized: list[tuple] = []
    for entry in core_sources:
        if isinstance(entry, (list, tuple)):
            normalized.append(tuple(entry))
        else:
            normalized.append((entry,))
    cores = len(normalized)
    tasks = [
        (core, cores, sources, config)
        for core, sources in enumerate(normalized)
    ]
    worker = (
        _filter_core_columns_worker
        if engine == "columnar"
        else _filter_core_worker
    )
    with telemetry_span(
        "replay/mc", cores=cores, jobs=jobs, engine=engine
    ) as tspan:
        if jobs > 1:
            if not all(
                isinstance(source, str)
                for sources in normalized
                for source in sources
            ):
                raise ValueError(
                    "jobs > 1 requires path sources (file objects cannot "
                    "cross process boundaries)"
                )
            with ProcessPoolExecutor(max_workers=min(jobs, cores)) as pool:
                filters = list(pool.map(worker, tasks))
        else:
            filters = [worker(task) for task in tasks]
        resolved = filters[0].config
        for core, filtered in enumerate(filters):
            if filtered.config != resolved:
                raise TraceFormatError(
                    f"core {core} was recorded under a different hierarchy "
                    "configuration; pass an explicit config override"
                )

        # Phase 2: deterministic serial merge into the shared L3.  Slots
        # are unique (slot % cores == core), so the merge order is total
        # and heapq.merge keeps each core's own entries in stream order.
        with telemetry_span("replay/mc/merge", cores=cores):
            if engine == "columnar":
                shared_misses = _merge_shared_columns(
                    resolved, cores, filters
                )
            else:
                shared = SharedL3(resolved, cores)
                shared_access = shared.access
                reset_core = shared.reset_core
                for slot, address in heapq.merge(
                    *(filtered.entries for filtered in filters),
                    key=itemgetter(0),
                ):
                    core = slot % cores
                    if address == _WARM_RESET:
                        reset_core(core)
                    else:
                        shared_access(core, address)
                shared_misses = shared.misses
        tspan.set("touches", sum(f.touches for f in filters))

    per_core: list[ShardStats] = []
    for core, filtered in enumerate(filters):
        events = MemoryEventCounts(
            l1_accesses=filtered.l1_accesses,
            l1_misses=filtered.l1_misses,
            l2_misses=filtered.l2_misses,
            l3_misses=shared_misses[core],
        )
        per_core.append(
            ShardStats(
                events=events,
                touches=filtered.touches,
                cform_lines=filtered.cform_lines,
                alloc_events=filtered.alloc_events,
                violations=0,
                amat_cycles=_amat_cycles(resolved, events),
            )
        )
    merged = per_core[0]
    for stats in per_core[1:]:
        merged = merged.merged_with(stats)
    return MulticoreReplay(
        cores=cores, per_core=tuple(per_core), merged=merged
    )
