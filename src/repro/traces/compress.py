"""CALTRC02: the epoch-framed compressed trace format.

``CALTRC01`` (:mod:`repro.traces.format`) persists one fixed 13-byte
struct per record — simple, seekable, but cold traces are highly
redundant: addresses walk in small strides, ``arg`` is almost always the
access width, and scans/pre-warm loops emit thousands of constant-stride
touches.  ``CALTRC02`` keeps the container shape (magic, JSON header,
record stream, JSON footer) but stores the record stream as a sequence of
independently decodable *frames*:

* one frame per recorded **epoch** (the sink's shard split points), so
  frame boundaries coincide with the only legal shard boundaries and
  sharded/multi-core replay stream frame-by-frame exactly as before;
* inside a frame, records are byte-tokenised: **delta-encoded addresses**
  (zigzag varints against the previous record's address), **varint args**
  and **run tokens** that collapse a monotone constant-stride burst
  (scans, the pre-warm sweep, CFORM line walks) into one token;
* the token stream is then **zlib-deflated**, frame by frame.

Frame wire format (after the v1-shaped ``magic + u32 header-length +
header JSON`` preamble, all integers little-endian)::

    0x01  u32 record_count  u32 payload_length  <deflate(tokens)>   * N
    0xFF  u32 footer_length  <footer JSON>

Tokens (``kind`` is the ``EV_*`` record kind, 0..6)::

    kind                 zigzag-varint Δaddress  varint arg
    kind | 0x08 (run)    varint count  zigzag-varint Δstart
                         zigzag-varint stride    varint arg

A run token expands to ``count`` records of the same kind and arg whose
addresses step by ``stride``; the delta base resets to 0 at every frame
boundary so frames decode independently.  Encode and decode are both
fully streaming: the writer buffers at most one frame of records, the
reader inflates one frame at a time — compression never changes what the
replayers see, only how many bytes hold it.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator

from repro.traces.format import (
    EV_EPOCH,
    MAGIC,
    RECORD_SIZE,
    TraceFormatError,
    TraceReader,
    TraceWriterBase,
)

#: The compressed container's magic (same family, next version digit).
MAGIC_V2 = b"CALTRC02"

#: Frame type bytes.
FRAME_RECORDS = 0x01
FRAME_END = 0xFF

#: zlib level: 6 is the sweet spot for these token streams (9 buys a few
#: percent for a multiple of the encode time).
COMPRESSION_LEVEL = 6

#: Frames are cut at EPOCH records; epoch-less traces (foreign writers,
#: tests) still flush after this many records so memory stays bounded.
MAX_FRAME_RECORDS = 1 << 16

#: A constant-stride same-kind/same-arg run must be at least this long
#: before the encoder emits a run token (shorter runs compress fine as
#: plain delta tokens).
MIN_RUN = 4

#: Run flag on the token's kind byte.  EV_* kinds occupy 3 bits.
_RUN_FLAG = 0x08

_FRAME_RECORDS_HEAD = struct.Struct("<BII")
_FRAME_END_HEAD = struct.Struct("<BI")


# -- varint primitives --------------------------------------------------------


def _append_varint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_signed(out: bytearray, value: int) -> None:
    _append_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    try:
        while True:
            byte = data[offset]
            offset += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value, offset
            shift += 7
    except IndexError:
        raise TraceFormatError("corrupt frame: truncated varint") from None


def _read_signed(data: bytes, offset: int) -> tuple[int, int]:
    zigzag, offset = _read_varint(data, offset)
    return ((zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1)), offset


# -- frame codec --------------------------------------------------------------


def encode_frame(records: list[tuple[int, int, int]]) -> bytes:
    """Tokenise + deflate one frame's records (delta base starts at 0)."""
    tokens = bytearray()
    previous = 0
    count = len(records)
    index = 0
    while index < count:
        kind, address, arg = records[index]
        # Probe for a constant-stride run of the same kind and arg.
        run = index + 1
        if run < count and records[run][0] == kind and records[run][2] == arg:
            stride = records[run][1] - address
            expected = records[run][1]
            while run < count:
                candidate = records[run]
                if (
                    candidate[0] != kind
                    or candidate[2] != arg
                    or candidate[1] != expected
                ):
                    break
                expected += stride
                run += 1
        length = run - index
        if length >= MIN_RUN:
            tokens.append(kind | _RUN_FLAG)
            _append_varint(tokens, length)
            _append_signed(tokens, address - previous)
            _append_signed(tokens, records[run - 1][1] - records[run - 2][1])
            _append_varint(tokens, arg)
            previous = records[run - 1][1]
            index = run
        else:
            tokens.append(kind)
            _append_signed(tokens, address - previous)
            _append_varint(tokens, arg)
            previous = address
            index += 1
    return zlib.compress(bytes(tokens), COMPRESSION_LEVEL)


def decode_frame(
    payload: bytes, record_count: int
) -> Iterator[tuple[int, int, int]]:
    """Inflate + de-tokenise one frame; yields exactly ``record_count``."""
    try:
        tokens = zlib.decompress(payload)
    except zlib.error as error:
        raise TraceFormatError(f"corrupt frame: {error}") from None
    offset = 0
    end = len(tokens)
    previous = 0
    produced = 0
    while offset < end:
        token = tokens[offset]
        offset += 1
        kind = token & ~_RUN_FLAG
        if kind > EV_EPOCH:
            # Fail before yielding anything downstream: a corrupt kind
            # byte must not be masked into a plausible record.
            raise TraceFormatError(
                f"corrupt frame: invalid record kind byte 0x{token:02X}"
            )
        if token & _RUN_FLAG:
            length, offset = _read_varint(tokens, offset)
            delta, offset = _read_signed(tokens, offset)
            stride, offset = _read_signed(tokens, offset)
            arg, offset = _read_varint(tokens, offset)
            produced += length
            if produced > record_count:
                raise TraceFormatError(
                    f"corrupt frame: decodes past the {record_count} "
                    "records its header promised"
                )
            address = previous + delta
            for _ in range(length):
                yield kind, address, arg
                address += stride
            previous = address - stride
        else:
            delta, offset = _read_signed(tokens, offset)
            arg, offset = _read_varint(tokens, offset)
            produced += 1
            if produced > record_count:
                raise TraceFormatError(
                    f"corrupt frame: decodes past the {record_count} "
                    "records its header promised"
                )
            previous += delta
            yield kind, previous, arg
    if produced != record_count:
        raise TraceFormatError(
            f"corrupt frame: decoded {produced} records, "
            f"frame header promised {record_count}"
        )


# -- streaming writer ---------------------------------------------------------


class CompressedTraceWriter(TraceWriterBase):
    """Streaming CALTRC02 writer; drop-in for :class:`TraceWriter`.

    Identical interface (``append`` / ``set_footer`` / ``close`` /
    ``abort`` / context manager / ``record_count``): the recorder, the
    sharder and :func:`transcode` pick their writer by format version and
    never look inside.  The target/preamble/abort plumbing is the shared
    :class:`~repro.traces.format.TraceWriterBase`; this class only owns
    the frame buffer.
    """

    MAGIC_BYTES = MAGIC_V2

    def __init__(self, target: str | BinaryIO, header: dict):
        super().__init__(target, header)
        self.frame_count = 0
        self._buffer: list[tuple[int, int, int]] = []

    def append(self, kind: int, address: int, arg: int) -> None:
        """Append one record; flushes a frame at epoch boundaries."""
        self._buffer.append((kind, address, arg))
        self.record_count += 1
        if kind == EV_EPOCH or len(self._buffer) >= MAX_FRAME_RECORDS:
            self._flush_frame()

    def _flush_frame(self) -> None:
        if not self._buffer:
            return
        payload = encode_frame(self._buffer)
        self._file.write(
            _FRAME_RECORDS_HEAD.pack(
                FRAME_RECORDS, len(self._buffer), len(payload)
            )
        )
        self._file.write(payload)
        self.frame_count += 1
        self._buffer.clear()

    def _discard_buffer(self) -> None:
        self._buffer.clear()

    def close(self) -> None:
        self._flush_frame()
        footer_bytes = self._footer_bytes()
        self._file.write(_FRAME_END_HEAD.pack(FRAME_END, len(footer_bytes)))
        self._file.write(footer_bytes)
        self._finish()


# -- streaming reader side (driven by TraceReader) ----------------------------


def _read_exact(
    file: BinaryIO,
    size: int,
    what: str,
    path: str | None = None,
    offset: int | None = None,
) -> bytes:
    data = file.read(size)
    if len(data) != size:
        raise TraceFormatError(
            f"truncated compressed trace: {what}", path=path, offset=offset
        )
    return data


def iter_compressed_records(reader: TraceReader) -> Iterator[tuple[int, int, int]]:
    """Record iterator for a :class:`TraceReader` positioned after the
    header of a CALTRC02 file.  Populates ``reader.footer`` when the end
    frame is reached, mirroring the v1 iterator's contract.  Errors —
    including frame-payload corruption detected inside
    :func:`decode_frame` — are located at the offending frame's byte
    offset in the reader's file."""
    import json

    file = reader._file
    path = reader.path
    position = reader.data_offset  # offset of the next frame's type byte
    while True:
        frame_start = position
        type_byte = file.read(1)
        if not type_byte:
            raise reader.error(
                "compressed trace ends without a terminator frame",
                offset=frame_start,
            )
        frame_type = type_byte[0]
        if frame_type == FRAME_RECORDS:
            head = _read_exact(
                file, _FRAME_RECORDS_HEAD.size - 1, "frame header",
                path=path, offset=frame_start,
            )
            record_count, payload_length = struct.unpack("<II", head)
            payload = _read_exact(
                file, payload_length, "frame payload",
                path=path, offset=frame_start,
            )
            position = frame_start + _FRAME_RECORDS_HEAD.size + payload_length
            try:
                yield from decode_frame(payload, record_count)
            except TraceFormatError as error:
                raise error.located(path, frame_start) from None
        elif frame_type == FRAME_END:
            head = _read_exact(
                file, _FRAME_END_HEAD.size - 1, "footer length",
                path=path, offset=frame_start,
            )
            (footer_length,) = struct.unpack("<I", head)
            footer_bytes = _read_exact(
                file, footer_length, "footer", path=path, offset=frame_start
            )
            try:
                reader.footer = json.loads(footer_bytes)
            except ValueError as error:
                raise reader.error(
                    f"corrupt trace footer JSON: {error}", offset=frame_start
                ) from None
            return
        else:
            raise reader.error(
                f"corrupt compressed trace: unknown frame type "
                f"0x{frame_type:02X}",
                offset=frame_start,
            )


# -- frame statistics (no decompression) --------------------------------------


def frame_stats(path: str) -> list[tuple[int, int]]:
    """Per-frame ``(records, compressed_payload_bytes)`` of a CALTRC02
    file, by scanning frame headers and seeking past payloads — no
    decompression, so ``trace info`` stays cheap on big traces."""
    with TraceReader(path) as reader:
        if reader.version != 2:
            raise TraceFormatError(
                f"{path} is not a compressed (CALTRC02) trace"
            )
        file = reader._file
        frames: list[tuple[int, int]] = []
        position = reader.data_offset
        while True:
            frame_start = position
            type_byte = file.read(1)
            if not type_byte:
                raise reader.error(
                    "compressed trace ends without a terminator frame",
                    offset=frame_start,
                )
            frame_type = type_byte[0]
            if frame_type == FRAME_RECORDS:
                head = _read_exact(
                    file, _FRAME_RECORDS_HEAD.size - 1, "frame header",
                    path=path, offset=frame_start,
                )
                record_count, payload_length = struct.unpack("<II", head)
                file.seek(payload_length, 1)
                position = (
                    frame_start + _FRAME_RECORDS_HEAD.size + payload_length
                )
                frames.append((record_count, payload_length))
            elif frame_type == FRAME_END:
                return frames
            else:
                raise reader.error(
                    "corrupt compressed trace: unknown frame type "
                    f"0x{frame_type:02X}",
                    offset=frame_start,
                )


def compression_summary(path: str, records: int) -> dict:
    """Ratio + frame aggregates for ``trace info`` (CALTRC02 only)."""
    frames = frame_stats(path)
    payload_bytes = sum(size for _, size in frames)
    raw_bytes = records * RECORD_SIZE
    per_frame = [count for count, _ in frames]
    return {
        "frames": len(frames),
        "payload_bytes": payload_bytes,
        "raw_record_bytes": raw_bytes,
        "ratio": (raw_bytes / payload_bytes) if payload_bytes else float("inf"),
        "records_per_frame_min": min(per_frame) if per_frame else 0,
        "records_per_frame_max": max(per_frame) if per_frame else 0,
        "records_per_frame_avg": (records / len(frames)) if frames else 0.0,
        "frame_detail": frames,
    }


# -- transcoding --------------------------------------------------------------


def transcode(source, target, version: int) -> int:
    """Stream any-version ``source`` into ``target`` at ``version``.

    Preserves the header (with ``format`` updated), every record, and the
    footer byte-for-byte in JSON terms, so the canonical identity — and
    every replay statistic — is unchanged.  Returns the record count.
    """
    from repro.traces.format import trace_writer

    magic = {1: MAGIC, 2: MAGIC_V2}.get(version)
    if magic is None:
        raise ValueError(f"unknown trace format version {version}")
    with TraceReader(source) as reader:
        header = dict(reader.header)
        if "format" in header:
            header["format"] = magic.decode("ascii")
        with trace_writer(target, header, version=version) as writer:
            append = writer.append
            for kind, address, arg in reader.records():
                append(kind, address, arg)
            writer.set_footer(reader.read_footer())
    return writer.record_count
