"""CALTRC02: the epoch-framed compressed trace format.

``CALTRC01`` (:mod:`repro.traces.format`) persists one fixed 13-byte
struct per record — simple, seekable, but cold traces are highly
redundant: addresses walk in small strides, ``arg`` is almost always the
access width, and scans/pre-warm loops emit thousands of constant-stride
touches.  ``CALTRC02`` keeps the container shape (magic, JSON header,
record stream, JSON footer) but stores the record stream as a sequence of
independently decodable *frames*:

* one frame per recorded **epoch** (the sink's shard split points), so
  frame boundaries coincide with the only legal shard boundaries and
  sharded/multi-core replay stream frame-by-frame exactly as before;
* inside a frame, records are byte-tokenised: **delta-encoded addresses**
  (zigzag varints against the previous record's address), **varint args**
  and **run tokens** that collapse a monotone constant-stride burst
  (scans, the pre-warm sweep, CFORM line walks) into one token;
* the token stream is then **zlib-deflated**, frame by frame.

Frame wire format (after the v1-shaped ``magic + u32 header-length +
header JSON`` preamble, all integers little-endian)::

    0x01  u32 record_count  u32 payload_length  <deflate(tokens)>   * N
    0xFF  u32 footer_length  <footer JSON>

Tokens (``kind`` is the ``EV_*`` record kind, 0..6)::

    kind                 zigzag-varint Δaddress  varint arg
    kind | 0x08 (run)    varint count  zigzag-varint Δstart
                         zigzag-varint stride    varint arg

A run token expands to ``count`` records of the same kind and arg whose
addresses step by ``stride``; the delta base resets to 0 at every frame
boundary so frames decode independently.  Encode and decode are both
fully streaming: the writer buffers at most one frame of records, the
reader inflates one frame at a time — compression never changes what the
replayers see, only how many bytes hold it.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator

from repro.telemetry.runtime import active as telemetry_active
from repro.traces.format import (
    EV_EPOCH,
    MAGIC,
    RECORD_SIZE,
    TraceFormatError,
    TraceReader,
    TraceWriterBase,
)

#: The compressed container's magic (same family, next version digit).
MAGIC_V2 = b"CALTRC02"

#: Frame type bytes.
FRAME_RECORDS = 0x01
FRAME_END = 0xFF

#: zlib level: 6 is the sweet spot for these token streams (9 buys a few
#: percent for a multiple of the encode time).
COMPRESSION_LEVEL = 6

#: Frames are cut at EPOCH records; epoch-less traces (foreign writers,
#: tests) still flush after this many records so memory stays bounded.
MAX_FRAME_RECORDS = 1 << 16

#: A constant-stride same-kind/same-arg run must be at least this long
#: before the encoder emits a run token (shorter runs compress fine as
#: plain delta tokens).
MIN_RUN = 4

#: Run flag on the token's kind byte.  EV_* kinds occupy 3 bits.
_RUN_FLAG = 0x08

_FRAME_RECORDS_HEAD = struct.Struct("<BII")
_FRAME_END_HEAD = struct.Struct("<BI")


# -- varint primitives --------------------------------------------------------


def _append_varint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_signed(out: bytearray, value: int) -> None:
    _append_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    try:
        while True:
            byte = data[offset]
            offset += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value, offset
            shift += 7
    except IndexError:
        raise TraceFormatError("corrupt frame: truncated varint") from None


def _read_signed(data: bytes, offset: int) -> tuple[int, int]:
    zigzag, offset = _read_varint(data, offset)
    return ((zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1)), offset


# -- frame codec --------------------------------------------------------------


def encode_frame(records: list[tuple[int, int, int]]) -> bytes:
    """Tokenise + deflate one frame's records (delta base starts at 0)."""
    tokens = bytearray()
    previous = 0
    count = len(records)
    index = 0
    while index < count:
        kind, address, arg = records[index]
        # Probe for a constant-stride run of the same kind and arg.
        run = index + 1
        if run < count and records[run][0] == kind and records[run][2] == arg:
            stride = records[run][1] - address
            expected = records[run][1]
            while run < count:
                candidate = records[run]
                if (
                    candidate[0] != kind
                    or candidate[2] != arg
                    or candidate[1] != expected
                ):
                    break
                expected += stride
                run += 1
        length = run - index
        if length >= MIN_RUN:
            tokens.append(kind | _RUN_FLAG)
            _append_varint(tokens, length)
            _append_signed(tokens, address - previous)
            _append_signed(tokens, records[run - 1][1] - records[run - 2][1])
            _append_varint(tokens, arg)
            previous = records[run - 1][1]
            index = run
        else:
            tokens.append(kind)
            _append_signed(tokens, address - previous)
            _append_varint(tokens, arg)
            previous = address
            index += 1
    return zlib.compress(bytes(tokens), COMPRESSION_LEVEL)


def decode_frame(
    payload: bytes, record_count: int
) -> Iterator[tuple[int, int, int]]:
    """Inflate + de-tokenise one frame; yields exactly ``record_count``."""
    try:
        tokens = zlib.decompress(payload)
    except zlib.error as error:
        raise TraceFormatError(f"corrupt frame: {error}") from None
    offset = 0
    end = len(tokens)
    previous = 0
    produced = 0
    while offset < end:
        token = tokens[offset]
        offset += 1
        kind = token & ~_RUN_FLAG
        if kind > EV_EPOCH:
            # Fail before yielding anything downstream: a corrupt kind
            # byte must not be masked into a plausible record.
            raise TraceFormatError(
                f"corrupt frame: invalid record kind byte 0x{token:02X}"
            )
        if token & _RUN_FLAG:
            length, offset = _read_varint(tokens, offset)
            delta, offset = _read_signed(tokens, offset)
            stride, offset = _read_signed(tokens, offset)
            arg, offset = _read_varint(tokens, offset)
            produced += length
            if produced > record_count:
                raise TraceFormatError(
                    f"corrupt frame: decodes past the {record_count} "
                    "records its header promised"
                )
            address = previous + delta
            for _ in range(length):
                yield kind, address, arg
                address += stride
            previous = address - stride
        else:
            delta, offset = _read_signed(tokens, offset)
            arg, offset = _read_varint(tokens, offset)
            produced += 1
            if produced > record_count:
                raise TraceFormatError(
                    f"corrupt frame: decodes past the {record_count} "
                    "records its header promised"
                )
            previous += delta
            yield kind, previous, arg
    if produced != record_count:
        raise TraceFormatError(
            f"corrupt frame: decoded {produced} records, "
            f"frame header promised {record_count}"
        )


def decode_frame_columns(payload: bytes, record_count: int):
    """Inflate + de-tokenise one frame into column arrays.

    The columnar twin of :func:`decode_frame`: returns a
    :class:`~repro.traces.format.RecordColumns` with exactly
    ``record_count`` rows instead of yielding per-record tuples.  Well-
    formed frames decode on the vectorized path of
    :func:`_decode_frames_fast`; anything it declines falls back to the
    per-token walk of :func:`_decode_frame_columns_tokens`, which raises
    the same :class:`TraceFormatError` diagnostics as the per-record
    decoder on corrupt payloads.  Requires numpy.
    """
    from repro.memory.kernel import require_numpy

    np = require_numpy("columnar frame decode")
    try:
        tokens = zlib.decompress(payload)
    except zlib.error as error:
        raise TraceFormatError(f"corrupt frame: {error}") from None
    columns = _decode_frames_fast(np, [tokens], [record_count])
    if columns is not None:
        return columns
    return _decode_frame_columns_tokens(np, tokens, record_count)


def _decode_frame_columns_tokens(np, tokens: bytes, record_count: int):
    """Per-token fallback decoder (also the corrupt-frame diagnoser).

    One Python step per token; exactly the validation order of
    :func:`decode_frame`, so every corrupt payload raises the identical
    :class:`TraceFormatError` message whichever engine hits it first.
    """
    offset = 0
    end = len(tokens)
    kinds: list[int] = []
    counts: list[int] = []
    args: list[int] = []
    first_deltas: list[int] = []
    strides: list[int] = []
    produced = 0
    while offset < end:
        token = tokens[offset]
        offset += 1
        kind = token & ~_RUN_FLAG
        if kind > EV_EPOCH:
            raise TraceFormatError(
                f"corrupt frame: invalid record kind byte 0x{token:02X}"
            )
        if token & _RUN_FLAG:
            length, offset = _read_varint(tokens, offset)
            delta, offset = _read_signed(tokens, offset)
            stride, offset = _read_signed(tokens, offset)
            arg, offset = _read_varint(tokens, offset)
        else:
            length = 1
            delta, offset = _read_signed(tokens, offset)
            stride = 0
            arg, offset = _read_varint(tokens, offset)
        produced += length
        if produced > record_count:
            raise TraceFormatError(
                f"corrupt frame: decodes past the {record_count} "
                "records its header promised"
            )
        kinds.append(kind)
        counts.append(length)
        args.append(arg)
        first_deltas.append(delta)
        strides.append(stride)
    if produced != record_count:
        raise TraceFormatError(
            f"corrupt frame: decoded {produced} records, "
            f"frame header promised {record_count}"
        )
    try:
        count_column = np.array(counts, dtype=np.int64)
        kind_column = np.repeat(np.array(kinds, dtype=np.uint8), count_column)
        arg_column = np.repeat(np.array(args, dtype=np.int64), count_column)
        increments = np.repeat(np.array(strides, dtype=np.int64), count_column)
        if counts:
            starts = np.cumsum(count_column) - count_column
            increments[starts] = np.array(first_deltas, dtype=np.int64)
        address_column = np.cumsum(increments)
    except OverflowError:
        raise TraceFormatError(
            "corrupt frame: address delta exceeds the columnar engine's "
            "int64 range"
        ) from None
    from repro.traces.format import RecordColumns

    return RecordColumns(
        kind=kind_column, address=address_column, arg=arg_column
    )


def _decode_frames_fast(np, streams, record_counts):
    """Vectorized decode of one or more inflated token streams.

    Returns the concatenated :class:`RecordColumns` of every frame, or
    ``None`` for anything irregular — truncated or over-long varints,
    token/frame misalignment, invalid kind bytes, record-count
    mismatches — so the caller can re-run the per-token walk and raise
    its exact diagnostics.  The trick is that *every* unit of the token
    stream — a kind byte (always ``< 0x80``) or a varint — ends at the
    first byte with the continuation bit clear, so one vectorized scan
    splits the whole stream into units and decodes every varint at once;
    only the token-boundary walk (3 or 5 units per token) stays a Python
    loop, one cheap step per token.
    """
    from repro.traces.format import RecordColumns

    data = streams[0] if len(streams) == 1 else b"".join(streams)
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size == 0 or (raw[-1] & 0x80):
        return None
    # Unit split: every byte with bit 7 clear terminates a unit.
    unit_ends = np.flatnonzero((raw & 0x80) == 0)
    unit_total = unit_ends.size
    unit_starts = np.empty(unit_total, dtype=np.int64)
    unit_starts[0] = 0
    unit_starts[1:] = unit_ends[:-1] + 1
    unit_lengths = unit_ends + 1 - unit_starts
    max_length = int(unit_lengths.max())
    if max_length > 9:
        return None  # a 10+-byte varint would overflow the int64 shifts
    # Varint values: 7-bit groups, little-endian.  Most units are one
    # byte, so start from the lead byte and accumulate the longer units
    # column by column over a rapidly shrinking index set.
    values = (raw[unit_starts] & 0x7F).astype(np.int64)
    if max_length > 1:
        longer = np.flatnonzero(unit_lengths > 1)
        for column in range(1, max_length):
            if column > 1:
                longer = longer[unit_lengths[longer] > column]
            values[longer] |= (
                raw[unit_starts[longer] + column] & 0x7F
            ).astype(np.int64) << (7 * column)
    # Frame boundaries must coincide with unit boundaries.
    if any(len(stream) == 0 for stream in streams):
        return None
    frame_byte_starts = np.zeros(len(streams), dtype=np.int64)
    frame_byte_starts[1:] = np.cumsum(
        [len(stream) for stream in streams[:-1]]
    )
    frame_units = np.searchsorted(unit_starts, frame_byte_starts)
    if (frame_units >= unit_total).any() or (
        unit_starts[frame_units] != frame_byte_starts
    ).any():
        return None
    # Token walk: per frame, tokens span 3 units (plain) or 5 (run).
    # Only the (rare) run tokens are collected; every start position is
    # then reconstructed with one cumulative sum over the step widths.
    values_list = values.tolist()
    run_token_list: list[int] = []
    append = run_token_list.append
    frame_token_counts: list[int] = []
    unit = 0
    token_total = 0
    for limit in frame_units[1:].tolist() + [unit_total]:
        token_count = 0
        while unit < limit:
            if values_list[unit] & _RUN_FLAG:
                append(token_total + token_count)
                unit += 5
            else:
                unit += 3
            token_count += 1
        if unit != limit or token_count == 0:
            return None
        frame_token_counts.append(token_count)
        token_total += token_count
    run_tokens = np.array(run_token_list, dtype=np.int64)
    steps = np.full(token_total, 3, dtype=np.int64)
    steps[run_tokens] = 5
    starts = np.cumsum(steps) - steps
    # The walk's step decisions used decoded unit values; they match the
    # scalar decoder's raw kind bytes only where the kind unit really is
    # a single byte, so multi-byte "kind" units force the fallback.
    kind_bytes = values[starts]
    if ((kind_bytes & ~_RUN_FLAG) > EV_EPOCH).any() or (
        unit_lengths[starts] != 1
    ).any():
        return None
    run_starts = starts[run_tokens]
    counts = np.ones(token_total, dtype=np.int64)
    counts[run_tokens] = values[run_starts + 1]
    if (counts[run_tokens] <= 0).any():
        return None  # zero-length runs shift the delta base: fall back
    run_offset = np.zeros(token_total, dtype=np.int64)
    run_offset[run_tokens] = 1
    zigzag = values[starts + 1 + run_offset]
    first_deltas = (zigzag >> 1) ^ -(zigzag & 1)
    strides = np.zeros(token_total, dtype=np.int64)
    zigzag_strides = values[run_starts + 3]
    strides[run_tokens] = (zigzag_strides >> 1) ^ -(zigzag_strides & 1)
    args = values[starts + 2 + 2 * run_offset]
    frame_token_starts = np.zeros(len(streams), dtype=np.int64)
    frame_token_starts[1:] = np.cumsum(frame_token_counts[:-1])
    produced = np.add.reduceat(counts, frame_token_starts)
    if (produced != np.asarray(record_counts, dtype=np.int64)).any():
        return None
    # Expansion: per-record address increments are a token's delta on
    # its first record and the run stride afterwards; the cumulative sum
    # re-bases at every frame boundary (the encoder resets the delta
    # base to 0 per frame).
    kind_column = np.repeat((kind_bytes & ~_RUN_FLAG).astype(np.uint8), counts)
    arg_column = np.repeat(args, counts)
    increments = np.repeat(strides, counts)
    record_starts = np.cumsum(counts) - counts
    increments[record_starts] = first_deltas
    address_column = np.cumsum(increments)
    if len(streams) > 1:
        frame_record_starts = np.cumsum(produced) - produced
        bases = np.zeros(len(streams), dtype=np.int64)
        bases[1:] = address_column[frame_record_starts[1:] - 1]
        address_column = address_column - np.repeat(bases, produced)
    return RecordColumns(
        kind=kind_column, address=address_column, arg=arg_column
    )


# -- streaming writer ---------------------------------------------------------


class CompressedTraceWriter(TraceWriterBase):
    """Streaming CALTRC02 writer; drop-in for :class:`TraceWriter`.

    Identical interface (``append`` / ``set_footer`` / ``close`` /
    ``abort`` / context manager / ``record_count``): the recorder, the
    sharder and :func:`transcode` pick their writer by format version and
    never look inside.  The target/preamble/abort plumbing is the shared
    :class:`~repro.traces.format.TraceWriterBase`; this class only owns
    the frame buffer.
    """

    MAGIC_BYTES = MAGIC_V2

    def __init__(self, target: str | BinaryIO, header: dict):
        super().__init__(target, header)
        self.frame_count = 0
        self._buffer: list[tuple[int, int, int]] = []

    def append(self, kind: int, address: int, arg: int) -> None:
        """Append one record; flushes a frame at epoch boundaries."""
        self._buffer.append((kind, address, arg))
        self.record_count += 1
        if kind == EV_EPOCH or len(self._buffer) >= MAX_FRAME_RECORDS:
            self._flush_frame()

    def _flush_frame(self) -> None:
        if not self._buffer:
            return
        payload = encode_frame(self._buffer)
        self._file.write(
            _FRAME_RECORDS_HEAD.pack(
                FRAME_RECORDS, len(self._buffer), len(payload)
            )
        )
        self._file.write(payload)
        self.frame_count += 1
        self._buffer.clear()

    def _discard_buffer(self) -> None:
        self._buffer.clear()

    def close(self) -> None:
        self._flush_frame()
        footer_bytes = self._footer_bytes()
        self._file.write(_FRAME_END_HEAD.pack(FRAME_END, len(footer_bytes)))
        self._file.write(footer_bytes)
        self._finish()


# -- streaming reader side (driven by TraceReader) ----------------------------


def _read_exact(
    file: BinaryIO,
    size: int,
    what: str,
    path: str | None = None,
    offset: int | None = None,
) -> bytes:
    data = file.read(size)
    if len(data) != size:
        raise TraceFormatError(
            f"truncated compressed trace: {what}", path=path, offset=offset
        )
    return data


def _iter_frames(reader: TraceReader) -> Iterator[tuple[int, int, bytes]]:
    """Walk a CALTRC02 reader's frames: ``(frame_offset, records, payload)``.

    The shared stream layer under both record-tuple and columnar
    iteration: reads each record frame's header + compressed payload,
    parses the terminator frame's footer into ``reader.footer``, and
    attributes truncation/corruption to the offending frame's byte
    offset.  Payload decoding is the caller's business.
    """
    import json

    file = reader._file
    path = reader.path
    position = reader.data_offset  # offset of the next frame's type byte
    while True:
        frame_start = position
        type_byte = file.read(1)
        if not type_byte:
            raise reader.error(
                "compressed trace ends without a terminator frame",
                offset=frame_start,
            )
        frame_type = type_byte[0]
        if frame_type == FRAME_RECORDS:
            head = _read_exact(
                file, _FRAME_RECORDS_HEAD.size - 1, "frame header",
                path=path, offset=frame_start,
            )
            record_count, payload_length = struct.unpack("<II", head)
            payload = _read_exact(
                file, payload_length, "frame payload",
                path=path, offset=frame_start,
            )
            position = frame_start + _FRAME_RECORDS_HEAD.size + payload_length
            yield frame_start, record_count, payload
        elif frame_type == FRAME_END:
            head = _read_exact(
                file, _FRAME_END_HEAD.size - 1, "footer length",
                path=path, offset=frame_start,
            )
            (footer_length,) = struct.unpack("<I", head)
            footer_bytes = _read_exact(
                file, footer_length, "footer", path=path, offset=frame_start
            )
            try:
                reader.footer = json.loads(footer_bytes)
            except ValueError as error:
                raise reader.error(
                    f"corrupt trace footer JSON: {error}", offset=frame_start
                ) from None
            return
        else:
            raise reader.error(
                f"corrupt compressed trace: unknown frame type "
                f"0x{frame_type:02X}",
                offset=frame_start,
            )


def iter_compressed_records(reader: TraceReader) -> Iterator[tuple[int, int, int]]:
    """Record iterator for a :class:`TraceReader` positioned after the
    header of a CALTRC02 file.  Populates ``reader.footer`` when the end
    frame is reached, mirroring the v1 iterator's contract.  Errors —
    including frame-payload corruption detected inside
    :func:`decode_frame` — are located at the offending frame's byte
    offset in the reader's file."""
    path = reader.path
    for frame_start, record_count, payload in _iter_frames(reader):
        try:
            yield from decode_frame(payload, record_count)
        except TraceFormatError as error:
            raise error.located(path, frame_start) from None


#: Records accumulated before one grouped columnar decode.  Epoch frames
#: are a few hundred records each; decoding a group of them as one
#: vectorized pass amortises the array-op overhead that would otherwise
#: dominate per-frame columns.
FRAME_GROUP_RECORDS = 1 << 18


def _decode_group(np, reader, group):
    """Decode a list of ``(frame_start, record_count, payload)`` frames
    into one concatenated :class:`RecordColumns`, or — when the fast
    path declines — per-frame token-walk columns with the standard
    located errors."""
    from repro.traces.format import RecordColumns

    path = reader.path
    streams = []
    for frame_start, _, payload in group:
        try:
            streams.append(zlib.decompress(payload))
        except zlib.error as error:
            raise TraceFormatError(f"corrupt frame: {error}").located(
                path, frame_start
            ) from None
    columns = _decode_frames_fast(
        np, streams, [record_count for _, record_count, _ in group]
    )
    tel = telemetry_active()
    if tel is not None:
        tel.inc("decode_frames_total", len(group))
        tel.inc(
            "decode_records_total",
            sum(record_count for _, record_count, _ in group),
        )
        if columns is None:
            tel.inc("decode_scalar_fallback_total", len(group))
    if columns is not None:
        return columns
    parts = []
    for (frame_start, record_count, _), tokens in zip(group, streams):
        try:
            parts.append(
                _decode_frame_columns_tokens(np, tokens, record_count)
            )
        except TraceFormatError as error:
            raise error.located(path, frame_start) from None
    return RecordColumns(
        kind=np.concatenate([part.kind for part in parts]),
        address=np.concatenate([part.address for part in parts]),
        arg=np.concatenate([part.arg for part in parts]),
    )


def iter_compressed_columns(reader: TraceReader):
    """Columnar frame iterator: one
    :class:`~repro.traces.format.RecordColumns` per *group* of record
    frames (up to :data:`FRAME_GROUP_RECORDS` records).

    The array-native side of :meth:`TraceReader.column_batches` for
    CALTRC02 files; same footer and error-location contract as
    :func:`iter_compressed_records`.  Batch boundaries are a decoding
    artifact — consumers see the identical concatenated record stream
    whatever the grouping.
    """
    from repro.memory.kernel import require_numpy

    np = require_numpy("columnar frame decode")
    group: list[tuple[int, int, bytes]] = []
    pending = 0
    for frame_start, record_count, payload in _iter_frames(reader):
        group.append((frame_start, record_count, payload))
        pending += record_count
        if pending >= FRAME_GROUP_RECORDS:
            yield _decode_group(np, reader, group)
            group = []
            pending = 0
    if group:
        yield _decode_group(np, reader, group)


# -- frame statistics (no decompression) --------------------------------------


def frame_stats(path: str) -> list[tuple[int, int]]:
    """Per-frame ``(records, compressed_payload_bytes)`` of a CALTRC02
    file, by scanning frame headers and seeking past payloads — no
    decompression, so ``trace info`` stays cheap on big traces."""
    with TraceReader(path) as reader:
        if reader.version != 2:
            raise TraceFormatError(
                f"{path} is not a compressed (CALTRC02) trace"
            )
        file = reader._file
        frames: list[tuple[int, int]] = []
        position = reader.data_offset
        while True:
            frame_start = position
            type_byte = file.read(1)
            if not type_byte:
                raise reader.error(
                    "compressed trace ends without a terminator frame",
                    offset=frame_start,
                )
            frame_type = type_byte[0]
            if frame_type == FRAME_RECORDS:
                head = _read_exact(
                    file, _FRAME_RECORDS_HEAD.size - 1, "frame header",
                    path=path, offset=frame_start,
                )
                record_count, payload_length = struct.unpack("<II", head)
                file.seek(payload_length, 1)
                position = (
                    frame_start + _FRAME_RECORDS_HEAD.size + payload_length
                )
                frames.append((record_count, payload_length))
            elif frame_type == FRAME_END:
                return frames
            else:
                raise reader.error(
                    "corrupt compressed trace: unknown frame type "
                    f"0x{frame_type:02X}",
                    offset=frame_start,
                )


def compression_summary(path: str, records: int) -> dict:
    """Ratio + frame aggregates for ``trace info`` (CALTRC02 only)."""
    frames = frame_stats(path)
    payload_bytes = sum(size for _, size in frames)
    raw_bytes = records * RECORD_SIZE
    per_frame = [count for count, _ in frames]
    return {
        "frames": len(frames),
        "payload_bytes": payload_bytes,
        "raw_record_bytes": raw_bytes,
        "ratio": (raw_bytes / payload_bytes) if payload_bytes else float("inf"),
        "records_per_frame_min": min(per_frame) if per_frame else 0,
        "records_per_frame_max": max(per_frame) if per_frame else 0,
        "records_per_frame_avg": (records / len(frames)) if frames else 0.0,
        "frame_detail": frames,
    }


# -- transcoding --------------------------------------------------------------


def transcode(source, target, version: int) -> int:
    """Stream any-version ``source`` into ``target`` at ``version``.

    Preserves the header (with ``format`` updated), every record, and the
    footer byte-for-byte in JSON terms, so the canonical identity — and
    every replay statistic — is unchanged.  Returns the record count.
    """
    from repro.traces.format import trace_writer

    magic = {1: MAGIC, 2: MAGIC_V2}.get(version)
    if magic is None:
        raise ValueError(f"unknown trace format version {version}")
    with TraceReader(source) as reader:
        header = dict(reader.header)
        if "format" in header:
            header["format"] = magic.decode("ascii")
        with trace_writer(target, header, version=version) as writer:
            append = writer.append
            for kind, address, arg in reader.records():
                append(kind, address, arg)
            writer.set_footer(reader.read_footer())
    return writer.record_count
