"""Declarative scenario registry for the trace engine.

A :class:`TraceScenarioSpec` is a plain, JSON-serialisable document that
pins *everything* a recorded run depends on: the synthetic benchmark
profile, the Califorms scenario (insertion policy, CFORM on/off, padding
range, layout seed), the RNG seed, the trace length, the warmup fraction
and the allocator's quarantine depth.  Recording the same spec twice
yields byte-identical traces; replaying a trace reproduces the live
run's statistics exactly (the round-trip invariant the test suite
enforces).

The built-in :data:`CORPUS` holds eight named realistic mixes, spanning
the axes the paper's SPEC suite spans — allocation churn, streaming
scans, pointer chasing, quarantine pressure, DMA-style bulk traffic,
allocator fragmentation and an exploit-suite attack campaign — so
experiments can share persisted workloads instead of re-synthesising
them per figure.  The content-addressed corpus store
(:mod:`repro.corpus`) binds these specs (by fingerprint) to recorded
trace objects on disk.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, fields, replace

from repro.softstack.insertion import Policy
from repro.workloads.generator import Scenario
from repro.workloads.specs import SPEC_PROFILES, BenchmarkProfile

#: Bump when the spec document gains/renames required keys.
SPEC_VERSION = 1

#: Trace drivers a spec may name: ``generator`` is the synthetic
#: SPEC-like workload engine (:func:`repro.workloads.generator.run_trace`);
#: ``attacks`` drives the exploit-suite probe patterns of
#: :mod:`repro.analysis.attacks` through the recorder
#: (:func:`repro.traces.attack_driver.run_attack_trace`); ``loadgen``
#: composes N open-loop tenant streams into one interleaved trace
#: (:mod:`repro.loadgen.compose`) from the
#: :class:`~repro.loadgen.schema.LoadScenario` document carried in
#: ``driver_config``.
KNOWN_DRIVERS = ("generator", "attacks", "loadgen")


def policy_to_str(policy: Policy | tuple[str, int] | None) -> str | None:
    """Serialise a generator policy to its registry string form."""
    if policy is None:
        return None
    if isinstance(policy, tuple):
        return f"fixed:{policy[1]}"
    return policy.value


def policy_from_str(text: str | None) -> Policy | tuple[str, int] | None:
    """Parse ``None``, ``"fixed:N"`` or a :class:`Policy` value name."""
    if text is None:
        return None
    if text.startswith("fixed:"):
        return ("fixed", int(text.split(":", 1)[1]))
    try:
        return Policy(text)
    except ValueError:
        known = ", ".join(p.value for p in Policy)
        raise ValueError(
            f"unknown policy {text!r}; expected one of {known}, "
            "'fixed:N' or null"
        ) from None


@dataclass(frozen=True)
class TraceScenarioSpec:
    """One declarative workload document (see module docstring)."""

    name: str
    description: str
    profile: BenchmarkProfile
    policy: str | None = None
    with_cform: bool = False
    min_bytes: int = 1
    max_bytes: int = 7
    binary_seed: int = 0
    seed: int = 0
    instructions: int = 40_000
    warmup_fraction: float = 1.0
    quarantine_delay: int = 16
    #: Bursts per epoch; epochs are the shard split granularity.
    epoch_bursts: int = 64
    #: Which live engine produces the event stream (see KNOWN_DRIVERS).
    driver: str = "generator"
    #: Driver-private configuration document (JSON text, or ``None``).
    #: The ``loadgen`` driver requires its serialised
    #: :class:`~repro.loadgen.schema.LoadScenario` here; carried as text
    #: so the spec stays hashable and trivially JSON-serialisable.
    driver_config: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if self.driver not in KNOWN_DRIVERS:
            raise ValueError(
                f"unknown driver {self.driver!r}; "
                f"expected one of {', '.join(KNOWN_DRIVERS)}"
            )
        if self.driver == "loadgen":
            if not self.driver_config:
                raise ValueError(
                    "driver 'loadgen' requires a driver_config document"
                )
            # Lazy import: loadgen validates mix profile names against
            # this module's CORPUS.
            from repro.loadgen.schema import LoadScenario

            LoadScenario.from_json(self.driver_config)  # validates eagerly
        elif self.driver_config is not None:
            raise ValueError(
                f"driver {self.driver!r} takes no driver_config"
            )
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.warmup_fraction < 0:
            raise ValueError("warmup_fraction cannot be negative")
        if self.quarantine_delay < 0:
            raise ValueError("quarantine_delay cannot be negative")
        if self.epoch_bursts <= 0:
            raise ValueError("epoch_bursts must be positive")
        policy_from_str(self.policy)  # validates eagerly

    def build_scenario(self) -> Scenario:
        """The generator-level scenario this spec pins down."""
        return Scenario(
            policy=policy_from_str(self.policy),
            with_cform=self.with_cform,
            min_bytes=self.min_bytes,
            max_bytes=self.max_bytes,
            binary_seed=self.binary_seed,
        )

    def scaled(self, instructions: int) -> "TraceScenarioSpec":
        """The same mix at a different trace length (quick modes, tests)."""
        return replace(self, instructions=instructions)

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        document = asdict(self)  # deep: converts the nested profile too
        document["spec_version"] = SPEC_VERSION
        # Omitted when absent, so pre-loadgen spec documents — and hence
        # every existing corpus fingerprint and CI cache key — are
        # byte-identical to what this field's introduction found.
        if document["driver_config"] is None:
            del document["driver_config"]
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "TraceScenarioSpec":
        document = dict(document)
        version = document.pop("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"spec version {version} not supported (expected {SPEC_VERSION})"
            )
        try:
            profile = document.pop("profile")
        except KeyError:
            raise ValueError("spec document needs a 'profile'") from None
        known = {f.name for f in fields(cls)} - {"profile"}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(
                f"unknown spec key(s) {unknown}; known: {sorted(known)}"
            )
        missing = sorted({"name", "description"} - set(document))
        if missing:
            raise ValueError(f"spec document missing required key(s) {missing}")
        if isinstance(profile, str):
            profile = SPEC_PROFILES[profile]
        elif isinstance(profile, dict):
            profile = BenchmarkProfile(**profile)
        return cls(profile=profile, **document)


def load_spec(path: str) -> TraceScenarioSpec:
    """Load a user-authored JSON spec document."""
    with open(path) as handle:
        return TraceScenarioSpec.from_dict(json.load(handle))


def _profile(name: str, **kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, **kwargs)


#: The eight named realistic mixes.  Profile constants follow the same
#: calibration logic as ``workloads.specs`` (heap size pins the cache-
#: ladder position, alloc rate drives CFORM cost, scan/skew shape
#: locality); each mix stresses one axis the SPEC profiles only touch
#: in passing.
CORPUS: dict[str, TraceScenarioSpec] = {
    spec.name: spec
    for spec in (
        TraceScenarioSpec(
            name="server-churn",
            description="request/response server: hot struct set, steady "
            "malloc churn, opportunistic policy with CFORM",
            profile=_profile(
                "server-churn", heap_kb=900, allocs_per_kinst=8.0,
                mem_ratio=0.41, locality_skew=0.30, scan_fraction=0.20,
                burst_length=6, stack_fraction=0.25, struct_fraction=0.65,
                ptr_array_fraction=0.35, raw_buffer_bytes=256,
                overlap=4.2, base_cpi=0.82,
            ),
            policy="opportunistic", with_cform=True, seed=11,
        ),
        TraceScenarioSpec(
            name="allocator-stress",
            description="allocator-bound: very high alloc/free rate on "
            "small structs, full policy with CFORM",
            profile=_profile(
                "allocator-stress", heap_kb=400, allocs_per_kinst=14.0,
                mem_ratio=0.40, locality_skew=0.25, scan_fraction=0.15,
                burst_length=4, stack_fraction=0.30, struct_fraction=0.80,
                ptr_array_fraction=0.40, raw_buffer_bytes=128,
                overlap=4.8, base_cpi=0.80,
            ),
            policy="full", with_cform=True, seed=22,
        ),
        TraceScenarioSpec(
            name="scan-heavy",
            description="streaming kernels over large raw buffers "
            "(lbm-like); layout inflation only, no CFORM",
            profile=_profile(
                "scan-heavy", heap_kb=4096, allocs_per_kinst=0.4,
                mem_ratio=0.42, locality_skew=0.70, scan_fraction=0.90,
                burst_length=16, stack_fraction=0.05, struct_fraction=0.15,
                ptr_array_fraction=0.15, raw_buffer_bytes=16384,
                overlap=6.0, base_cpi=0.72,
            ),
            policy="opportunistic", with_cform=False, seed=33,
        ),
        TraceScenarioSpec(
            name="pointer-chase",
            description="mcf-like dependent pointer walks with poor "
            "locality, intelligent policy with CFORM",
            profile=_profile(
                "pointer-chase", heap_kb=3072, allocs_per_kinst=1.5,
                mem_ratio=0.44, locality_skew=0.75, scan_fraction=0.05,
                burst_length=4, stack_fraction=0.05, struct_fraction=0.55,
                ptr_array_fraction=0.60, raw_buffer_bytes=256,
                overlap=3.2, base_cpi=0.90,
            ),
            policy="intelligent", with_cform=True, seed=44,
        ),
        TraceScenarioSpec(
            name="quarantine-pressure",
            description="high churn through a deep deallocation "
            "quarantine — address reuse delayed, cold-miss pressure",
            profile=_profile(
                "quarantine-pressure", heap_kb=600, allocs_per_kinst=10.0,
                mem_ratio=0.40, locality_skew=0.35, scan_fraction=0.20,
                burst_length=5, stack_fraction=0.20, struct_fraction=0.70,
                ptr_array_fraction=0.30, raw_buffer_bytes=256,
                overlap=4.0, base_cpi=0.82,
            ),
            policy="full", with_cform=True, seed=55, quarantine_delay=256,
        ),
        TraceScenarioSpec(
            name="dma-mixed",
            description="DMA-style bulk streaming interleaved with struct "
            "field traffic, opportunistic policy with CFORM",
            profile=_profile(
                "dma-mixed", heap_kb=2048, allocs_per_kinst=2.0,
                mem_ratio=0.42, locality_skew=0.55, scan_fraction=0.60,
                burst_length=16, stack_fraction=0.05, struct_fraction=0.45,
                ptr_array_fraction=0.30, raw_buffer_bytes=8192,
                overlap=5.0, base_cpi=0.76,
            ),
            policy="opportunistic", with_cform=True, seed=66,
        ),
        TraceScenarioSpec(
            name="fragmentation-heavy",
            description="mixed small-struct and odd-sized buffer churn "
            "through a deep quarantine: free lists fragment, reuse "
            "scatters, full policy with CFORM",
            profile=_profile(
                "fragmentation-heavy", heap_kb=800, allocs_per_kinst=12.0,
                mem_ratio=0.41, locality_skew=0.30, scan_fraction=0.10,
                burst_length=5, stack_fraction=0.15, struct_fraction=0.50,
                ptr_array_fraction=0.35, raw_buffer_bytes=600,
                overlap=4.4, base_cpi=0.84,
            ),
            policy="full", with_cform=True, seed=77, quarantine_delay=128,
        ),
        TraceScenarioSpec(
            name="attack-replay",
            description="exploit-suite campaign from analysis.attacks: "
            "heap grooming plus overflow/UAF/scan probe bursts",
            profile=_profile(
                "attack-replay", heap_kb=512, allocs_per_kinst=6.0,
                mem_ratio=0.40, locality_skew=0.45, scan_fraction=0.30,
                burst_length=8, stack_fraction=0.10, struct_fraction=0.60,
                ptr_array_fraction=0.30, raw_buffer_bytes=256,
                overlap=4.0, base_cpi=0.85,
            ),
            policy=None, with_cform=False, seed=88, driver="attacks",
        ),
    )
}


def corpus_spec(name: str) -> TraceScenarioSpec:
    """Look up a built-in scenario by name."""
    try:
        return CORPUS[name]
    except KeyError:
        known = ", ".join(sorted(CORPUS))
        raise KeyError(f"unknown trace scenario {name!r}; known: {known}") from None


# -- multi-core mixes ---------------------------------------------------------

_COUNT_PREFIX = re.compile(r"^(\d+)\s*[x*]\s*(.+)$")


def expand_core_names(items) -> tuple[str, ...]:
    """Expand a per-core mix list into one scenario name per core.

    Each item is either a corpus scenario name or a counted form like
    ``"2x pointer-chase"`` / ``"2*pointer-chase"``; the expansion of
    ``["server-churn", "2x pointer-chase"]`` is a 3-core list.  Names
    are validated against the corpus eagerly.
    """
    names: list[str] = []
    for item in items:
        match = _COUNT_PREFIX.match(item.strip())
        if match:
            count, name = int(match.group(1)), match.group(2).strip()
        else:
            count, name = 1, item.strip()
        if count <= 0:
            raise ValueError(f"core count in {item!r} must be positive")
        corpus_spec(name)  # validates; raises KeyError naming the corpus
        names.extend([name] * count)
    if not names:
        raise ValueError("a mix needs at least one core")
    return tuple(names)


@dataclass(frozen=True)
class MulticoreMixSpec:
    """A named multi-programmed mix: one corpus scenario per core."""

    name: str
    description: str
    cores: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("mix needs a name")
        if not self.cores:
            raise ValueError("mix needs at least one core")

    def specs(self, instructions: int | None = None) -> list[TraceScenarioSpec]:
        """Resolve to one :class:`TraceScenarioSpec` per core."""
        specs = []
        for scenario_name in self.cores:
            spec = corpus_spec(scenario_name)
            if instructions is not None:
                spec = spec.scaled(instructions)
            specs.append(spec)
        return specs


#: Named multi-programmed mixes for ``replay-mc`` and the experiments
#: runner: antagonist pairings chosen so the shared L3 is genuinely
#: contended (streaming scans evict the churn/chase working sets).
MULTICORE_MIXES: dict[str, MulticoreMixSpec] = {
    mix.name: mix
    for mix in (
        MulticoreMixSpec(
            name="duel-pointer-chase",
            description="two pointer-chase instances thrash the shared L3",
            cores=expand_core_names(["2x pointer-chase"]),
        ),
        MulticoreMixSpec(
            name="server-vs-scan",
            description="latency-sensitive server churn next to a "
            "streaming-scan antagonist",
            cores=("server-churn", "scan-heavy"),
        ),
        MulticoreMixSpec(
            name="crowded-l3",
            description="four-core pressure mix: server churn + streaming "
            "scan + two pointer chasers",
            cores=expand_core_names(["server-churn", "scan-heavy", "2x pointer-chase"]),
        ),
    )
}


def multicore_mix(name: str) -> MulticoreMixSpec:
    """Look up a named multi-core mix, or parse an inline one.

    ``name`` is either a key of :data:`MULTICORE_MIXES` or an inline
    per-core list expanded through :func:`expand_core_names` —
    comma-separated (``"server-churn,2x pointer-chase"``), a single
    counted entry (``"2x pointer-chase"``), or a bare corpus scenario
    name (a 1-core mix).  Named mixes take precedence.
    """
    if name in MULTICORE_MIXES:
        return MULTICORE_MIXES[name]
    try:
        cores = expand_core_names(
            [part for part in name.split(",") if part.strip()]
        )
    except (KeyError, ValueError):
        known = ", ".join(sorted(MULTICORE_MIXES))
        raise KeyError(
            f"unknown multicore mix {name!r}; known: {known}, "
            "or an inline list like 'server-churn,2x pointer-chase'"
        ) from None
    return MulticoreMixSpec(
        name="inline", description="inline per-core list", cores=cores
    )
