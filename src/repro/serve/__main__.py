"""``python -m repro serve`` / ``python -m repro.serve`` — run the service.

Binds the :class:`~repro.serve.app.ServeApp` and serves until
interrupted.  ``--port 0`` binds an ephemeral port (the bound address is
printed, and written to ``--port-file`` when given, so smoke tests and
scripts can discover it race-free).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.app import DEFAULT_HOST, DEFAULT_PORT, ServeApp


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the trace corpus, cached results and a job queue "
        "over HTTP.",
    )
    parser.add_argument(
        "--host", default=DEFAULT_HOST, help=f"bind address (default "
        f"{DEFAULT_HOST})"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port; 0 picks an ephemeral port (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--corpus",
        default="corpus",
        help="corpus store root to serve (default: corpus)",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="results directory for GET /results (default: results)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="job worker tasks (default: 1)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening (for scripts)",
    )
    return parser


async def serve(arguments: argparse.Namespace) -> int:
    app = ServeApp(
        corpus_root=arguments.corpus,
        results_dir=arguments.results_dir,
        workers=arguments.workers,
    )
    server = await app.start(arguments.host, arguments.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"{app.server_header} listening on http://{host}:{port}", flush=True)
    print(
        f"  corpus={arguments.corpus} results={arguments.results_dir} "
        f"workers={arguments.workers}",
        flush=True,
    )
    if arguments.port_file:
        with open(arguments.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    try:
        async with server:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await app.close()
        server.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        return asyncio.run(serve(arguments))
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
