"""The ``repro.serve`` application: routes, state and the asyncio server.

One :class:`ServeApp` owns the service's state — a read-side
:class:`~repro.corpus.store.CorpusStore` handle, the
:class:`~repro.serve.cache.ResultsCache`, the
:class:`~repro.serve.jobs.JobQueue` and a
:class:`~repro.telemetry.metrics.MetricsRegistry` of its own — and maps
requests to responses:

====================  ========================================================
``GET /healthz``      liveness + version + store/results summary
``GET /metrics``      Prometheus text: the server registry merged with the
                      process's active ``repro.telemetry`` snapshot
``GET /manifest``     the corpus manifest document (ETag: content digest)
``GET /objects/<d>``  one trace object by canonical digest, integrity
                      re-hashed on first read; ``ETag: <digest>`` / 304
``GET /results``      section index
``GET /results/<s>``  cached SectionResult JSON; ETag = body sha256 / 304
``GET /packs``        pack index (id, members, bytes)
``GET /packs/<id>``   one pack file (content-addressed; ETag / 304)
``POST /jobs``        queue a record/replay job; streams ndjson progress
                      (``?wait=0`` → 202 + job id immediately)
``GET /jobs``         job table
``GET /jobs/<id>``    one job document (state, events, result)
====================  ========================================================

Everything is read-only against the corpus except ``POST /jobs``, whose
recordings go through ``CorpusStore.ensure`` — the same deterministic,
self-healing write path local builds use.

The server is deliberately single-process: replication is horizontal
(several replicas over one packed corpus), and the corpus store's
content addressing makes every replica's ``/objects`` responses
byte-identical.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os

from repro import package_version
from repro.corpus.packs import pack_id, read_pack
from repro.corpus.store import CorpusStore, canonical_digest
from repro.serve.cache import ResultsCache, SectionNotFound
from repro.serve.jobs import JobQueue, JobSpecError, parse_job_spec
from repro.telemetry.export import merge_snapshots, prometheus_text
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import active as telemetry_active

from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    StreamResponse,
    read_request,
    write_response,
    write_stream,
)

#: Default bind address/port of ``python -m repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8023

#: Hex alphabet of a sha256 digest path component.
_HEX = set("0123456789abcdef")


def _is_digest(text: str) -> bool:
    return len(text) == 64 and set(text) <= _HEX


class ServeApp:
    """Service state + request dispatch (transport-agnostic)."""

    def __init__(
        self,
        corpus_root: str,
        results_dir: str,
        workers: int = 1,
        packs_dir: str | None = None,
    ):
        self.store = CorpusStore(corpus_root)
        self.results = ResultsCache(results_dir)
        self.jobs = JobQueue(self.store, workers=workers)
        self.packs_dir = packs_dir or os.path.join(corpus_root, "packs")
        self.metrics = MetricsRegistry()
        self.server_header = f"repro-serve/{package_version()}"
        #: Digests this process already integrity-verified on read.
        self._verified: set[str] = set()
        #: Pack ids already content-verified against their filename.
        self._verified_packs: set[str] = set()

    # -- dispatch ------------------------------------------------------------

    async def handle(self, request: Request) -> Response | StreamResponse:
        parts = [part for part in request.path.split("/") if part]
        route = (request.method, parts[0] if parts else "", len(parts))
        try:
            if route == ("GET", "healthz", 1):
                return self._healthz()
            if route == ("GET", "metrics", 1):
                return self._metrics()
            if route == ("GET", "manifest", 1):
                return self._manifest(request)
            if route == ("GET", "objects", 2):
                return self._object(request, parts[1])
            if route == ("GET", "results", 1):
                return self._results_index()
            if route == ("GET", "results", 2):
                return self._result(request, parts[1])
            if route == ("GET", "packs", 1):
                return self._packs_index()
            if route == ("GET", "packs", 2):
                return self._pack(request, parts[1])
            if route == ("POST", "jobs", 1):
                return self._submit_job(request)
            if route == ("GET", "jobs", 1):
                return self._jobs_index()
            if route == ("GET", "jobs", 2):
                return self._job(parts[1])
        except ProtocolError as error:
            return Response.error(error.status, str(error))
        if request.method not in ("GET", "HEAD", "POST"):
            return Response.error(405, f"method {request.method} not allowed")
        return Response.error(404, f"no route for {request.path}")

    # -- liveness + observability --------------------------------------------

    def _healthz(self) -> Response:
        self.metrics.inc("serve_requests_total", route="healthz", status=200)
        manifest = self.store.manifest()
        return Response.json(
            {
                "status": "ok",
                "version": package_version(),
                "corpus": {
                    "root": self.store.root,
                    "entries": len(manifest.entries),
                },
                "results": {
                    "dir": self.results.results_dir,
                    "sections": len(self.results.sections()),
                },
                "packs": len(self._pack_listing()),
                "jobs": len(self.jobs.jobs),
            }
        )

    def _metrics(self) -> Response:
        """Prometheus exposition: server registry ⊕ active telemetry.

        Both snapshots travel through the telemetry exporter's own
        :func:`merge_snapshots`/:func:`prometheus_text`, so the service
        emits exactly the exposition the offline ``metrics.prom``
        artifact carries — one format, one implementation.
        """
        self.metrics.inc("serve_requests_total", route="metrics", status=200)
        snapshots = {0: {"seq": 1, "metrics": self.metrics.snapshot()}}
        tel = telemetry_active()
        if tel is not None:
            snapshots[1] = {"seq": 1, "metrics": tel.registry.snapshot()}
        merged = merge_snapshots(snapshots)
        # Sort each series table so a family's series are contiguous in
        # the exposition (required by the text format; the merged dict
        # is insertion-ordered otherwise).
        for table in ("counters", "gauges", "histograms"):
            merged[table] = dict(sorted(merged.get(table, {}).items()))
        return Response.text(prometheus_text(merged))

    # -- corpus read side ----------------------------------------------------

    def _manifest(self, request: Request) -> Response:
        manifest = self.store.manifest()
        document = {
            "manifest_version": 1,
            "entries": {
                fingerprint: entry.to_dict()
                for fingerprint, entry in sorted(manifest.entries.items())
            },
        }
        body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()
        digest = hashlib.sha256(body).hexdigest()
        if digest in request.if_none_match:
            self.metrics.inc("serve_requests_total", route="manifest",
                             status=304)
            return Response.not_modified(digest)
        self.metrics.inc("serve_requests_total", route="manifest", status=200)
        return Response(
            body=body,
            headers={"ETag": f'"{digest}"'},
        )

    def _object(self, request: Request, digest: str) -> Response:
        if not _is_digest(digest):
            return Response.error(
                400, f"{digest!r} is not a sha256 content digest"
            )
        if digest in request.if_none_match:
            # Content-addressed: the name IS the content, so a client
            # that has the digest needs no bytes and we need no disk.
            self.metrics.inc("serve_requests_total", route="objects",
                             status=304)
            return Response.not_modified(digest)
        path = self.store.object_path(digest)
        if not os.path.exists(path):
            self.metrics.inc("serve_requests_total", route="objects",
                             status=404)
            return Response.error(404, f"no object {digest[:12]}…")
        if digest not in self._verified:
            # Integrity re-hash on read: never serve bytes that no
            # longer hash to the name they are served under.
            try:
                actual, _raw, _footer = canonical_digest(path)
            except Exception as error:  # damaged container
                self.metrics.inc("serve_object_integrity_failures_total")
                return Response.error(
                    500,
                    f"object {digest[:12]}… is unreadable: {error}; "
                    f"run `repro corpus verify --repair` on the server",
                )
            if actual != digest:
                self.metrics.inc("serve_object_integrity_failures_total")
                return Response.error(
                    500,
                    f"object {digest[:12]}… fails integrity: on-disk "
                    f"stream hashes to {actual[:12]}…; run `repro corpus "
                    f"verify --repair` on the server",
                )
            self._verified.add(digest)
            self.metrics.inc("serve_object_verifications_total")
        with open(path, "rb") as handle:
            body = handle.read()
        self.metrics.inc("serve_requests_total", route="objects", status=200)
        self.metrics.inc("serve_object_bytes_total", len(body))
        return Response(
            body=body,
            content_type="application/octet-stream",
            headers={"ETag": f'"{digest}"'},
        )

    # -- results read side ---------------------------------------------------

    def _results_index(self) -> Response:
        return Response.json({"sections": self.results.sections()})

    def _result(self, request: Request, section: str) -> Response:
        try:
            document = self.results.get(section)
        except SectionNotFound:
            self.metrics.inc("serve_requests_total", route="results",
                             status=404)
            known = ", ".join(self.results.sections()) or "<none>"
            return Response.error(
                404, f"no section {section!r}; available: {known}"
            )
        except ValueError as error:
            self.metrics.inc("serve_requests_total", route="results",
                             status=500)
            return Response.error(500, str(error))
        self.metrics.set_gauge("serve_results_cache_entries",
                               len(self.results._entries))
        if document.digest in request.if_none_match:
            self.metrics.inc("serve_results_cache_hits_total")
            self.metrics.inc("serve_requests_total", route="results",
                             status=304)
            return Response.not_modified(document.digest)
        self.metrics.inc("serve_requests_total", route="results", status=200)
        return Response(
            body=document.body,
            headers={
                "ETag": f'"{document.digest}"',
                "X-Repro-Schema": document.schema,
            },
        )

    # -- packs ---------------------------------------------------------------

    def _pack_listing(self) -> list[tuple[str, str]]:
        if not os.path.isdir(self.packs_dir):
            return []
        found = []
        for name in sorted(os.listdir(self.packs_dir)):
            if name.endswith(".pack"):
                found.append(
                    (name[: -len(".pack")], os.path.join(self.packs_dir, name))
                )
        return found

    def _packs_index(self) -> Response:
        packs = []
        for identifier, path in self._pack_listing():
            try:
                info = read_pack(path)
            except Exception:
                continue  # unreadable pack: omitted, not fatal
            packs.append(
                {
                    "id": identifier,
                    "objects": len(info.members),
                    "stored_bytes": info.stored_bytes,
                    "scenarios": sorted(
                        {m.entry.scenario for m in info.members}
                    ),
                }
            )
        return Response.json({"packs": packs})

    def _pack(self, request: Request, identifier: str) -> Response:
        if not _is_digest(identifier):
            return Response.error(
                400, f"{identifier!r} is not a pack id (sha256)"
            )
        if identifier in request.if_none_match:
            self.metrics.inc("serve_requests_total", route="packs",
                             status=304)
            return Response.not_modified(identifier)
        path = os.path.join(self.packs_dir, f"{identifier}.pack")
        if not os.path.exists(path):
            self.metrics.inc("serve_requests_total", route="packs",
                             status=404)
            return Response.error(404, f"no pack {identifier[:12]}…")
        if identifier not in self._verified_packs:
            if pack_id(path) != identifier:
                self.metrics.inc("serve_object_integrity_failures_total")
                return Response.error(
                    500,
                    f"pack {identifier[:12]}… fails integrity (file no "
                    f"longer hashes to its name)",
                )
            self._verified_packs.add(identifier)
        with open(path, "rb") as handle:
            body = handle.read()
        self.metrics.inc("serve_requests_total", route="packs", status=200)
        self.metrics.inc("serve_object_bytes_total", len(body))
        return Response(
            body=body,
            content_type="application/octet-stream",
            headers={"ETag": f'"{identifier}"'},
        )

    # -- jobs ----------------------------------------------------------------

    def _submit_job(self, request: Request) -> Response | StreamResponse:
        try:
            kind, spec = parse_job_spec(request.json())
        except JobSpecError as error:
            self.metrics.inc("serve_requests_total", route="jobs", status=400)
            return Response.error(400, str(error))
        job = self.jobs.submit(kind, spec)
        self.metrics.inc("serve_jobs_total", kind=kind)
        wait = request.query.get("wait", ["1"])[-1]
        if wait in ("0", "false", "no"):
            self.metrics.inc("serve_requests_total", route="jobs", status=202)
            return Response.json(
                {"job": job.id, "state": job.state},
                status=202,
                headers={"Location": f"/jobs/{job.id}"},
            )
        self.metrics.inc("serve_requests_total", route="jobs", status=200)

        async def producer(emit) -> None:
            await self.jobs.stream_events(job, emit)

        return StreamResponse(
            producer=producer, headers={"X-Repro-Job": job.id}
        )

    def _jobs_index(self) -> Response:
        return Response.json(
            {
                "jobs": [
                    {
                        "id": job.id,
                        "kind": job.kind,
                        "scenario": job.spec.name,
                        "state": job.state,
                    }
                    for job in self.jobs.jobs.values()
                ]
            }
        )

    def _job(self, job_id: str) -> Response:
        job = self.jobs.get(job_id)
        if job is None:
            return Response.error(404, f"no job {job_id!r}")
        return Response.json(job.to_dict())

    # -- the asyncio server --------------------------------------------------

    async def _connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as error:
                    await write_response(
                        writer,
                        None,
                        Response.error(error.status, str(error)),
                        self.server_header,
                        close=True,
                    )
                    return
                if request is None:
                    return  # client closed between requests
                response = await self.handle(request)
                if isinstance(response, StreamResponse):
                    await write_stream(writer, response, self.server_header)
                    return  # streamed responses close the connection
                close = (
                    request.header("connection").lower() == "close"
                )
                await write_response(
                    writer, request, response, self.server_header, close
                )
                if close:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away / server shutting down
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        """Bind and start serving; returns the ``asyncio.Server``."""
        self.jobs.start()
        return await asyncio.start_server(self._connection, host, port)

    async def close(self) -> None:
        await self.jobs.close()
