"""Minimal HTTP/1.1 over asyncio streams — the service's wire layer.

The service deliberately stays on the standard library (the repo's only
hard dependency is numpy, and only for the columnar replay engine), so
this module implements the small slice of HTTP/1.1 the endpoints need:

* request parsing (request line, headers, ``Content-Length`` bodies),
* fixed-length responses with ``ETag``/``304`` conditional handling,
* chunked transfer encoding for the job-progress event stream.

It is not a general web server: no TLS, no pipelining guarantees beyond
serial keep-alive, request bodies capped at :data:`MAX_BODY_BYTES`.
Everything a route handler returns is a :class:`Response` (one buffer)
or a :class:`StreamResponse` (an async producer fed a chunk writer) —
the connection loop in :mod:`repro.serve.app` does the writing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

#: Longest accepted request line + single header line, bytes.
MAX_LINE_BYTES = 16 * 1024

#: Most headers accepted per request.
MAX_HEADERS = 64

#: Largest accepted request body (job specs are small JSON documents).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ProtocolError(ValueError):
    """A malformed or oversized request; maps to a 400/413 response."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str  # the raw request target, e.g. /results/fig10?pretty=1
    path: str  # decoded path component
    query: dict[str, list[str]]
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def if_none_match(self) -> set[str]:
        """ETag values offered by ``If-None-Match`` (quotes stripped)."""
        raw = self.header("if-none-match")
        if not raw:
            return set()
        return {
            candidate.strip().strip('"')
            for candidate in raw.split(",")
            if candidate.strip()
        }

    def json(self):
        """The body decoded as JSON, or :class:`ProtocolError`."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")


@dataclass
class Response:
    """One fixed-length response, ready to serialise."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        document,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> "Response":
        body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        return cls(
            status=status,
            body=body,
            content_type="application/json",
            headers=dict(headers or {}),
        )

    @classmethod
    def text(cls, text: str, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json(
            {"error": message, "status": status}, status=status
        )

    @classmethod
    def not_modified(cls, etag: str) -> "Response":
        return cls(status=304, body=b"", headers={"ETag": f'"{etag}"'})


@dataclass
class StreamResponse:
    """A chunked response produced incrementally by ``producer``.

    ``producer`` is an async callable receiving an ``emit`` coroutine;
    every ``await emit(data)`` sends one chunk (for the job stream, one
    line-delimited JSON event).  The connection closes after the stream
    finishes — a streamed response's length is unknown up front, and
    closing keeps the protocol layer trivial for the one endpoint that
    streams.
    """

    producer: object  # async (emit) -> None
    status: int = 200
    content_type: str = "application/x-ndjson"
    headers: dict[str, str] = field(default_factory=dict)


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise ProtocolError("connection closed mid-request-line")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long", status=413)
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line too long", status=413)
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(f"malformed request line {line!r}")
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("connection closed mid-headers")
        if line == b"\r\n":
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError("too many headers", status=413)
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise ProtocolError("undecodable header line")
        if not _:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(f"bad Content-Length {length_text!r}")
        if length < 0:
            raise ProtocolError(f"bad Content-Length {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} "
                f"byte limit",
                status=413,
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked request bodies are not supported")

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def _head(
    status: int,
    content_type: str | None,
    length: int | None,
    extra: dict[str, str],
    server: str,
    close: bool,
    chunked: bool = False,
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Server: {server}"]
    if content_type is not None and status not in (204, 304):
        lines.append(f"Content-Type: {content_type}")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    request: Request | None,
    response: Response,
    server: str,
    close: bool,
) -> None:
    """Serialise a fixed-length response (body omitted for HEAD/204/304)."""
    body = response.body
    if response.status in (204, 304) or (
        request is not None and request.method == "HEAD"
    ):
        payload = b""
    else:
        payload = body
    writer.write(
        _head(
            response.status,
            response.content_type,
            len(body),
            response.headers,
            server,
            close,
        )
    )
    writer.write(payload)
    await writer.drain()


async def write_stream(
    writer: asyncio.StreamWriter,
    response: StreamResponse,
    server: str,
) -> None:
    """Run a streamed response: chunked encoding, connection closes after."""
    writer.write(
        _head(
            response.status,
            response.content_type,
            None,
            response.headers,
            server,
            close=True,
            chunked=True,
        )
    )
    await writer.drain()

    async def emit(data: bytes) -> None:
        if not data:
            return
        writer.write(f"{len(data):x}\r\n".encode("ascii"))
        writer.write(data)
        writer.write(b"\r\n")
        await writer.drain()

    try:
        await response.producer(emit)
    finally:
        writer.write(b"0\r\n\r\n")
        await writer.drain()
