"""repro.serve — the corpus/experiment service.

An asyncio HTTP service over the reproduction's three artifact kinds:

* **trace objects** — fetch-by-digest out of a
  :class:`~repro.corpus.store.CorpusStore`, integrity re-hashed on read,
  with the content digest doubling as the ``ETag``;
* **section results** — cached ``SectionResult`` JSON with exact
  (content-digest) revalidation, so a warm client costs one ``stat``;
* **jobs** — record/replay work queued behind ``POST /jobs`` with
  line-delimited progress streaming.

Plus pack files (``GET /packs/<id>``), Prometheus ``/metrics`` through
the telemetry exporter, and ``/healthz``.  The server side lives in
:mod:`repro.serve.app`; the consuming side is
:class:`repro.serve.client.RemoteStore`, a drop-in read interface for
any code that resolves traces through a store handle.

Run it with ``python -m repro serve --corpus <root> --results-dir <dir>``.
"""

from repro.serve.app import DEFAULT_HOST, DEFAULT_PORT, ServeApp  # noqa: F401
from repro.serve.client import (  # noqa: F401
    RemoteError,
    RemoteIntegrityError,
    RemoteJobFailed,
    RemoteStore,
)
