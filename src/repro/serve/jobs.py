"""The service's job queue: record-or-replay work with streamed progress.

``POST /jobs`` turns a scenario document into a :class:`Job`, queues it,
and (by default) streams the job's line-delimited progress events back
until it reaches a terminal state.  A fixed pool of worker *tasks*
drains the queue; each job's blocking work (recording through the
corpus store, replaying a trace) runs in the event loop's default
thread-pool executor so the service keeps answering reads while a
recording is in flight.

Job specs (JSON request bodies) name their workload one of three ways::

    {"kind": "record", "scenario": "server-churn", "instructions": 8000}
    {"kind": "replay", "spec": { ...TraceScenarioSpec document... }}
    {"kind": "record", "load_scenario": { ...LoadScenario document... }}

``scenario`` is a trace-registry name (optionally re-scaled),
``spec`` a full :class:`~repro.traces.registry.TraceScenarioSpec`
document, ``load_scenario`` an open-loop traffic document composed via
:func:`repro.loadgen.compose.compose_spec`.  ``kind`` is ``record``
(ensure the trace exists in the corpus) or ``replay`` (ensure, then
replay it and report the run statistics).  Work is idempotent by
construction — recording resolves through :meth:`CorpusStore.ensure`,
so a job for an already-recorded spec is a pure corpus hit.

Progress events are JSON objects ``{"job": id, "event": ..., ...}``;
the terminal event is ``done`` (with the result document) or
``failed`` (with the error).  The full event list is retained on the
job and served by ``GET /jobs/<id>``.
"""

from __future__ import annotations

import asyncio
import itertools
import traceback
from dataclasses import dataclass, field

from repro.experiments.results import jsonable
from repro.memory.hierarchy import WESTMERE
from repro.traces.registry import CORPUS, TraceScenarioSpec

#: Job states, in lifecycle order.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: States that end a job (its event stream closes on reaching one).
TERMINAL = (DONE, FAILED)

#: Job kinds accepted by the queue.
KNOWN_KINDS = ("record", "replay")


class JobSpecError(ValueError):
    """A job request document that cannot be turned into work (→ 400)."""


def parse_job_spec(document) -> tuple[str, TraceScenarioSpec]:
    """Validate a job request; returns ``(kind, trace spec)``.

    Raises :class:`JobSpecError` with a client-appropriate message on
    any problem — unknown kind, missing/conflicting workload keys, or
    an invalid embedded spec document.
    """
    if not isinstance(document, dict):
        raise JobSpecError("job spec must be a JSON object")
    kind = document.get("kind", "record")
    if kind not in KNOWN_KINDS:
        raise JobSpecError(
            f"unknown job kind {kind!r}; expected one of "
            f"{', '.join(KNOWN_KINDS)}"
        )
    sources = [
        key for key in ("scenario", "spec", "load_scenario") if key in document
    ]
    if len(sources) != 1:
        raise JobSpecError(
            "job spec needs exactly one of 'scenario' (a registry name), "
            "'spec' (a trace-scenario document) or 'load_scenario' (a "
            f"loadgen document); got {sources or 'none'}"
        )
    source = sources[0]
    try:
        if source == "scenario":
            name = document["scenario"]
            if name not in CORPUS:
                raise JobSpecError(
                    f"unknown scenario {name!r}; known: "
                    f"{', '.join(sorted(CORPUS))}"
                )
            spec = CORPUS[name]
            if "instructions" in document:
                spec = spec.scaled(int(document["instructions"]))
        elif source == "spec":
            spec = TraceScenarioSpec.from_dict(document["spec"])
        else:
            from repro.loadgen.compose import compose_spec
            from repro.loadgen.schema import LoadScenario

            spec = compose_spec(
                LoadScenario.from_dict(document["load_scenario"])
            )
    except JobSpecError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise JobSpecError(f"invalid {source} document: {error}") from None
    return kind, spec


@dataclass
class Job:
    """One queued unit of record-or-replay work."""

    id: str
    kind: str
    spec: TraceScenarioSpec
    state: str = QUEUED
    events: list[dict] = field(default_factory=list)
    result: dict | None = None
    error: str | None = None
    #: Wakes streamers whenever an event lands.
    changed: asyncio.Event = field(default_factory=asyncio.Event)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "scenario": self.spec.name,
            "state": self.state,
            "events": list(self.events),
            "result": self.result,
            "error": self.error,
        }


class JobQueue:
    """An asyncio job queue with a fixed worker-task pool.

    Work runs in the default thread-pool executor (recording is
    CPU-heavy but releases the loop), progress crosses back into the
    loop via ``call_soon_threadsafe``, and every event both appends to
    the job's retained list and wakes any streaming subscribers.
    """

    def __init__(self, store, workers: int = 1, config=WESTMERE):
        self.store = store
        self.config = config
        self.workers = max(1, workers)
        self.jobs: dict[str, Job] = {}
        self._counter = itertools.count(1)
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for index in range(self.workers):
            self._tasks.append(
                asyncio.create_task(
                    self._worker(), name=f"serve-job-worker-{index}"
                )
            )

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()

    # -- submission ----------------------------------------------------------

    def submit(self, kind: str, spec: TraceScenarioSpec) -> Job:
        job = Job(id=f"job-{next(self._counter)}", kind=kind, spec=spec)
        self.jobs[job.id] = job
        self._emit(job, QUEUED, scenario=spec.name, kind=kind)
        self._queue.put_nowait(job)
        return job

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    # -- events --------------------------------------------------------------

    def _emit(self, job: Job, event: str, **fields) -> None:
        record = {"job": job.id, "event": event, **fields}
        job.events.append(record)
        if event in (QUEUED, RUNNING, DONE, FAILED):
            job.state = event
        job.changed.set()
        job.changed = asyncio.Event()  # next waiters get a fresh latch

    def _emit_threadsafe(self, job: Job, event: str, **fields) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(
            lambda: self._emit(job, event, **fields)
        )

    async def stream_events(self, job: Job, emit) -> None:
        """Feed every event (past and future) to ``emit`` until terminal."""
        import json

        cursor = 0
        while True:
            changed = job.changed  # latch *before* draining: no lost wakeups
            while cursor < len(job.events):
                event = job.events[cursor]
                cursor += 1
                await emit(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
            if job.state in TERMINAL:
                return
            await changed.wait()

    # -- the worker ----------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            self._emit(job, RUNNING)
            try:
                result = await loop.run_in_executor(None, self._run, job)
            except Exception as error:  # noqa: BLE001 — reported, not fatal
                self._emit(
                    job,
                    FAILED,
                    error=f"{type(error).__name__}: {error}",
                    traceback=traceback.format_exc(),
                )
            else:
                job.result = result
                self._emit(job, DONE, result=result)
            finally:
                self._queue.task_done()

    def _run(self, job: Job) -> dict:
        """The blocking work of one job (executor thread)."""
        resolved = self.store.ensure(job.spec, self.config)
        entry = resolved.entry
        self._emit_threadsafe(
            job,
            "recorded" if resolved.built else "corpus-hit",
            digest=entry.digest,
            records=entry.records,
            stored_bytes=entry.stored_bytes,
        )
        result = {
            "scenario": entry.scenario,
            "fingerprint": entry.fingerprint,
            "digest": entry.digest,
            "records": entry.records,
            "raw_bytes": entry.raw_bytes,
            "stored_bytes": entry.stored_bytes,
            "built": resolved.built,
        }
        if job.kind == "replay":
            from repro.traces.replayer import replay_timing

            self._emit_threadsafe(job, "replaying", digest=entry.digest)
            run = replay_timing(resolved.path)
            result["replay"] = jsonable(
                {
                    "benchmark": run.benchmark,
                    "instructions": run.instructions,
                    "events": run.events,
                    "cform_instructions": run.cform_instructions,
                    "alloc_events": run.alloc_events,
                }
            )
        return result
