"""The remote side of the corpus: fetch-by-digest with a local cache.

:class:`RemoteStore` speaks to a ``repro.serve`` service and implements
the corpus store's *read interface* — ``ensure`` → ``CorpusObject``,
``run_result``, ``slowdown``, ``manifest`` — so every consumer that
resolves traces through a store handle (figure sweeps, trace checks,
multi-core contention, ``repro run --corpus http://…``) works unchanged
against a remote corpus.

The contract mirrors the local store's exactly:

* **Identity is content.**  Objects are named by the sha256 of their
  canonical CALTRC01 stream; every fetched object is re-hashed before it
  is trusted, so a damaged transfer (or a lying server) raises
  :class:`RemoteIntegrityError` instead of contaminating the cache.
* **The cache is a store.**  Fetched objects land under
  ``<cache>/objects/<aa>/<digest>.trace`` — the local store layout —
  so a RemoteStore cache directory is also a valid offline corpus, and
  a digest already present (and verified once per handle) costs zero
  network traffic.
* **Misses record remotely.**  ``ensure`` of a spec the service has not
  recorded submits a record job and waits for its event stream, then
  fetches the resulting object — the remote twin of the local store's
  record-on-miss.

Transport is stdlib ``http.client``; requests carry a
``User-Agent: repro-serve-client/<version>`` header, the version dual of
the service's ``Server:`` header.
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
from dataclasses import dataclass
from urllib.parse import urlsplit

from repro import package_version
from repro.corpus.manifest import Manifest, ManifestEntry
from repro.corpus.store import CorpusObject, canonical_digest, spec_fingerprint
from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.traces.registry import TraceScenarioSpec
from repro.traces.replayer import replay_timing
from repro.workloads.generator import RunResult, Scenario
from repro.workloads.specs import BenchmarkProfile

#: Seconds an HTTP request (including a streamed job) may take.
DEFAULT_TIMEOUT = 300.0


class RemoteError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class RemoteIntegrityError(RemoteError):
    """Fetched bytes do not hash to the digest they were served under."""

    def __init__(self, message: str):
        RuntimeError.__init__(self, message)
        self.status = 502


class RemoteJobFailed(RemoteError):
    """A submitted job reached the ``failed`` state."""

    def __init__(self, message: str):
        RuntimeError.__init__(self, message)
        self.status = 500


@dataclass
class FetchOutcome:
    """One ``fetch`` resolution: the local path and how it was satisfied."""

    path: str
    digest: str
    from_cache: bool


class RemoteStore:
    """Corpus read interface over HTTP (see module docstring)."""

    def __init__(
        self,
        base_url: str,
        cache_dir: str | None = None,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(
                f"RemoteStore speaks plain http; got {base_url!r}"
            )
        if not split.hostname:
            raise ValueError(f"no host in {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.base_url = f"http://{self.host}:{self.port}"
        self.root = cache_dir or os.path.join(
            tempfile.gettempdir(), f"repro-remote-{self.host}-{self.port}"
        )
        self.objects_dir = os.path.join(self.root, "objects")
        self.timeout = timeout
        self.user_agent = f"repro-serve-client/{package_version()}"
        #: Resolution counters, mirroring the local store's reporting.
        self.hits = 0  # satisfied from the local cache
        self.fetched = 0  # satisfied over the wire
        self.built = 0  # record jobs the service ran for us
        self._verified: set[str] = set()
        self._manifest: Manifest | None = None

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            send_headers = {"User-Agent": self.user_agent}
            send_headers.update(headers or {})
            connection.request(method, path, body=body, headers=send_headers)
            response = connection.getresponse()
            payload = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                payload,
            )
        finally:
            connection.close()

    def _get_json(self, path: str):
        status, _headers, body = self._request("GET", path)
        if status != 200:
            raise RemoteError(status, _error_message(body))
        return json.loads(body.decode("utf-8"))

    # -- service views -------------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def metrics_text(self) -> str:
        status, _headers, body = self._request("GET", "/metrics")
        if status != 200:
            raise RemoteError(status, _error_message(body))
        return body.decode("utf-8")

    def manifest(self, refresh: bool = False) -> Manifest:
        """The service's manifest (cached per handle; ``refresh`` re-GETs)."""
        if self._manifest is None or refresh:
            document = self._get_json("/manifest")
            self._manifest = Manifest(
                entries={
                    fingerprint: ManifestEntry.from_dict(entry)
                    for fingerprint, entry in document.get(
                        "entries", {}
                    ).items()
                }
            )
        return self._manifest

    def result_document(
        self, section: str, etag: str | None = None
    ) -> tuple[int, str | None, bytes]:
        """``GET /results/<section>`` with optional revalidation.

        Returns ``(status, etag, body)`` — 304 with an empty body when
        the offered ETag still matches.
        """
        headers = {"If-None-Match": f'"{etag}"'} if etag else {}
        status, response_headers, body = self._request(
            "GET", f"/results/{section}", headers=headers
        )
        if status not in (200, 304):
            raise RemoteError(status, _error_message(body))
        return status, response_headers.get("etag", "").strip('"'), body

    # -- fetch-by-digest -----------------------------------------------------

    def object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, digest[:2], f"{digest}.trace")

    def fetch(self, digest: str) -> FetchOutcome:
        """Resolve one digest to a verified local file, fetching on miss."""
        path = self.object_path(digest)
        if os.path.exists(path):
            if digest in self._verified or self._verify(path, digest):
                self.hits += 1
                return FetchOutcome(path=path, digest=digest, from_cache=True)
            os.remove(path)  # damaged cache entry: refetch
        status, _headers, body = self._request("GET", f"/objects/{digest}")
        if status != 200:
            raise RemoteError(status, _error_message(body))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".fetching"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            if not self._verify(temp_path, digest):
                raise RemoteIntegrityError(
                    f"fetched object does not hash to {digest[:12]}… — "
                    f"transfer or server corruption"
                )
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self.fetched += 1
        return FetchOutcome(path=path, digest=digest, from_cache=False)

    def fetch_pack(self, identifier: str, out: str) -> str:
        """Download one pack file, verifying its content address."""
        import hashlib

        status, _headers, body = self._request(
            "GET", f"/packs/{identifier}"
        )
        if status != 200:
            raise RemoteError(status, _error_message(body))
        if hashlib.sha256(body).hexdigest() != identifier:
            raise RemoteIntegrityError(
                f"pack does not hash to {identifier[:12]}…"
            )
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "wb") as handle:
            handle.write(body)
        return out

    def _verify(self, path: str, digest: str) -> bool:
        try:
            actual, _raw, _footer = canonical_digest(path)
        except Exception:
            return False
        if actual != digest:
            return False
        self._verified.add(digest)
        return True

    # -- the store read interface --------------------------------------------

    def ensure(
        self,
        spec: TraceScenarioSpec,
        config: HierarchyConfig = WESTMERE,
    ) -> CorpusObject:
        """Resolve a spec exactly like the local store: manifest lookup →
        fetch-by-digest → (on a service-side miss) record remotely."""
        fingerprint = spec_fingerprint(spec, config)
        entry = self.manifest().get(fingerprint)
        built = False
        if entry is None:
            self.record_remote(spec)
            built = True
            entry = self.manifest(refresh=True).get(fingerprint)
            if entry is None:
                raise RemoteError(
                    502,
                    f"service recorded {spec.name!r} but its manifest still "
                    f"lacks fingerprint {fingerprint[:12]}… — geometry "
                    f"mismatch between client and server?",
                )
        outcome = self.fetch(entry.digest)
        return CorpusObject(path=outcome.path, entry=entry, built=built)

    def record_remote(self, spec: TraceScenarioSpec) -> dict:
        """Submit a record job and consume its event stream to completion."""
        body = json.dumps(
            {"kind": "record", "spec": spec.to_dict()}
        ).encode("utf-8")
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                "/jobs",
                body=body,
                headers={
                    "User-Agent": self.user_agent,
                    "Content-Type": "application/json",
                },
            )
            response = connection.getresponse()
            if response.status != 200:
                raise RemoteError(
                    response.status, _error_message(response.read())
                )
            terminal: dict | None = None
            for line in response:  # http.client de-chunks for us
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                if event.get("event") in ("done", "failed"):
                    terminal = event
        finally:
            connection.close()
        if terminal is None:
            raise RemoteError(502, "job stream ended without a terminal event")
        if terminal["event"] == "failed":
            raise RemoteJobFailed(
                f"remote record of {spec.name!r} failed: "
                f"{terminal.get('error', '?')}"
            )
        self.built += 1
        return terminal.get("result", {})

    def run_result(
        self,
        spec: TraceScenarioSpec,
        config: HierarchyConfig = WESTMERE,
    ) -> RunResult:
        """The spec's statistics, replayed from the fetched object —
        bit-identical to a local-store replay of the same spec."""
        resolved = self.ensure(spec, config)
        return replay_timing(resolved.path)

    def slowdown(
        self,
        profile: BenchmarkProfile,
        scenario: Scenario,
        instructions: int,
        baseline_config: HierarchyConfig = WESTMERE,
        variant_config: HierarchyConfig | None = None,
    ) -> float:
        """Figure-quantity twin of :meth:`CorpusStore.slowdown`."""
        from repro.corpus.store import figure_spec

        base = self.run_result(
            figure_spec(profile, Scenario.baseline(), instructions)
        )
        variant = self.run_result(
            figure_spec(profile, scenario, instructions)
        )
        base_cycles = base.cycles(baseline_config, profile)
        variant_cycles = variant.cycles(
            variant_config or baseline_config, profile
        )
        return variant_cycles / base_cycles - 1.0


def _error_message(body: bytes) -> str:
    try:
        return json.loads(body.decode("utf-8")).get("error", "?")
    except (UnicodeDecodeError, ValueError):
        return body[:200].decode("utf-8", "replace") or "?"
