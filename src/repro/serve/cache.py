"""Content-digest cache over the ``results/*.json`` section documents.

``GET /results/<section>`` serves :class:`SectionResult` JSON straight
from the run's results directory.  Figure documents are requested far
more often than they change (they change only when ``repro run``
rewrites them), so the cache keys each section on its file's *stat
signature* (mtime_ns, size, inode): an unchanged file is served from
memory without re-reading — and since the cached entry carries the
body's sha256, a client replaying the digest via ``If-None-Match``
costs the server one ``stat`` and zero bytes of body.

The digest doubles as the ``ETag``, which is exactly the corpus-store
idea applied to results: content addressing makes revalidation exact
(two byte-identical documents share an ETag across restarts and across
replicas) rather than heuristic like mtime-based ``Last-Modified``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.experiments.results import FAILURE_SCHEMA, RESULT_SCHEMA

#: Schemas a served section document may carry.
SERVABLE_SCHEMAS = (RESULT_SCHEMA, FAILURE_SCHEMA)


@dataclass(frozen=True)
class CachedDocument:
    """One section document pinned in memory."""

    section: str
    digest: str  # sha256 of the body — the ETag
    body: bytes
    schema: str
    signature: tuple[int, int, int]  # (mtime_ns, size, inode)


class SectionNotFound(KeyError):
    """No such section document in the results directory (→ 404)."""


class ResultsCache:
    """Stat-validated in-memory cache of one results directory."""

    def __init__(self, results_dir: str):
        self.results_dir = results_dir
        self._entries: dict[str, CachedDocument] = {}
        self.hits = 0
        self.misses = 0

    def path_for(self, section: str) -> str:
        """The section's document path; rejects path-escaping names."""
        if (
            not section
            or section != os.path.basename(section)
            or section.startswith(".")
        ):
            raise SectionNotFound(section)
        return os.path.join(self.results_dir, f"{section}.json")

    @staticmethod
    def _signature(path: str) -> tuple[int, int, int]:
        info = os.stat(path)
        return (info.st_mtime_ns, info.st_size, info.st_ino)

    def get(self, section: str) -> CachedDocument:
        """The section's current document, served from memory when the
        on-disk file is unchanged.  Raises :class:`SectionNotFound` for
        missing sections and :class:`ValueError` for documents that are
        not results JSON."""
        path = self.path_for(section)
        try:
            signature = self._signature(path)
        except OSError:
            self._entries.pop(section, None)
            raise SectionNotFound(section) from None
        cached = self._entries.get(section)
        if cached is not None and cached.signature == signature:
            self.hits += 1
            return cached
        self.misses += 1
        with open(path, "rb") as handle:
            body = handle.read()
        try:
            schema = json.loads(body.decode("utf-8")).get("schema", "")
        except (UnicodeDecodeError, ValueError) as error:
            raise ValueError(
                f"section {section!r} is not valid JSON: {error}"
            ) from None
        if schema not in SERVABLE_SCHEMAS:
            raise ValueError(
                f"section {section!r} has schema {schema!r}; this service "
                f"serves {', '.join(SERVABLE_SCHEMAS)}"
            )
        entry = CachedDocument(
            section=section,
            digest=hashlib.sha256(body).hexdigest(),
            body=body,
            schema=schema,
            signature=signature,
        )
        self._entries[section] = entry
        return entry

    def sections(self) -> list[str]:
        """Section names currently present on disk (sorted)."""
        try:
            names = os.listdir(self.results_dir)
        except OSError:
            return []
        found = []
        for name in sorted(names):
            stem, ext = os.path.splitext(name)
            if ext == ".json" and stem != "index" and not stem.startswith("."):
                found.append(stem)
        return found
