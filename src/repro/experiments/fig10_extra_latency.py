"""Figure 10: slowdown from +1 cycle on both L2 and L3 access latency.

Paper: per-benchmark slowdowns from 0.24 % (hmmer) to 1.37 %
(xalancbmk); average 0.83 % — "well in the range of error when executed
on real systems".
"""

from __future__ import annotations

from repro.analysis.suite import SuiteResult, sweep
from repro.memory.hierarchy import WESTMERE
from repro.workloads.generator import Scenario
from repro.workloads.specs import FIG10_BENCHMARKS

#: Paper headline values (percent).
PAPER = {"average": 0.83, "minimum": 0.24, "maximum": 1.37,
         "lowest_benchmark": "hmmer", "highest_benchmark": "xalancbmk"}


def run(
    instructions: int = 100_000,
    benchmarks: list[str] | None = None,
    extra_cycles: int = 1,
    store=None,
) -> SuiteResult:
    """``store`` resolves the per-benchmark baselines through the
    recorded-trace corpus; both latency configurations price the same
    recorded event stream (one trace per benchmark serves both)."""
    return sweep(
        benchmarks or FIG10_BENCHMARKS,
        Scenario.baseline(),
        instructions=instructions,
        variant_config=WESTMERE.with_extra_latency(extra_cycles),
        label=f"+{extra_cycles} cycle L2/L3 latency",
        store=store,
    )


def render(result: SuiteResult) -> str:
    lines = ["Figure 10: slowdown with +1-cycle L2/L3 latency", ""]
    for entry in result.per_benchmark:
        lines.append(f"  {entry.benchmark:11s} {entry.mean * 100:5.2f}%")
    lines.append(f"  {'AVG':11s} {result.average * 100:5.2f}%  (paper 0.83%)")
    return "\n".join(lines)
