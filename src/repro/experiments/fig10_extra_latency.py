"""Figure 10: slowdown from +1 cycle on both L2 and L3 access latency.

Paper: per-benchmark slowdowns from 0.24 % (hmmer) to 1.37 %
(xalancbmk); average 0.83 % — "well in the range of error when executed
on real systems".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.suite import SuiteResult, sweep
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.memory.hierarchy import WESTMERE
from repro.workloads.generator import Scenario
from repro.workloads.specs import FIG10_BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import CorpusStore

#: Paper headline values (percent).
PAPER = {"average": 0.83, "minimum": 0.24, "maximum": 1.37,
         "lowest_benchmark": "hmmer", "highest_benchmark": "xalancbmk"}


def run(
    instructions: int = 100_000,
    benchmarks: list[str] | None = None,
    extra_cycles: int = 1,
    store: "CorpusStore | None" = None,
) -> SuiteResult:
    """``store`` resolves the per-benchmark baselines through the
    recorded-trace corpus; both latency configurations price the same
    recorded event stream (one trace per benchmark serves both)."""
    return sweep(
        benchmarks or FIG10_BENCHMARKS,
        Scenario.baseline(),
        instructions=instructions,
        variant_config=WESTMERE.with_extra_latency(extra_cycles),
        label=f"+{extra_cycles} cycle L2/L3 latency",
        store=store,
    )


def render(result: SuiteResult) -> str:
    lines = ["Figure 10: slowdown with +1-cycle L2/L3 latency", ""]
    for entry in result.per_benchmark:
        lines.append(f"  {entry.benchmark:11s} {entry.mean * 100:5.2f}%")
    lines.append(f"  {'AVG':11s} {result.average * 100:5.2f}%  (paper 0.83%)")
    return "\n".join(lines)


@experiment(
    name="fig10",
    title="Figure 10 — +1-cycle L2/L3 latency",
    tags=("figure", "trace"),
    needs=("instructions", "corpus"),
    order=60,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    result = run(instructions=ctx.instructions, store=ctx.store)
    data = {"paper": PAPER, "average": result.average, "suite": result}
    return section("fig10", data, render(result))
