"""Experiment drivers: one module per paper table/figure.

Every driver registers itself with :mod:`repro.experiments.registry`
(the :func:`~repro.experiments.registry.experiment` decorator): it
declares a name, tags and needs, and implements
``run_experiment(ctx) -> SectionResult`` on top of its figure-specific
``run()``/``render()`` pair.  The runner and the ``python -m repro``
CLI discover everything from the registry — adding a section is one
decorated function, not a runner edit.

=================================  =========================================
Module                             Reproduces
=================================  =========================================
``fig03_struct_density``           Figure 3 (density histograms)
``fig04_padding_sweep``            Figure 4 (fixed padding 1-7 B)
``fig10_extra_latency``            Figure 10 (+1 cycle L2/L3)
``fig11_policies``                 Figure 11 (opportunistic/full ± CFORM)
``fig12_intelligent``              Figure 12 (intelligent ± CFORM)
``tables``                         Tables 1, 2, 3, 4, 5, 6, 7
``sec7_derandomization``           Section 7.3 attack probabilities
``trace_checks``                   figures recomputed from corpus traces
``mc_contention``                  multi-core shared-L3 contention
``registry``                       the declarative experiment registry
``context``                        the frozen per-run :class:`RunContext`
``results``                        structured :class:`SectionResult`
``runner``                         generic executor → EXPERIMENTS.md + JSON
=================================  =========================================
"""

from repro.experiments import (  # noqa: F401
    fig03_struct_density,
    fig04_padding_sweep,
    fig10_extra_latency,
    fig11_policies,
    fig12_intelligent,
    sec7_derandomization,
    tables,
)
from repro.experiments.context import RunContext  # noqa: F401
from repro.experiments.registry import (  # noqa: F401
    Experiment,
    UnknownExperimentError,
    all_experiments,
    experiment,
    select,
)
from repro.experiments.results import SectionResult  # noqa: F401
