"""Experiment drivers: one module per paper table/figure.

=================================  =========================================
Module                             Reproduces
=================================  =========================================
``fig03_struct_density``           Figure 3 (density histograms)
``fig04_padding_sweep``            Figure 4 (fixed padding 1-7 B)
``fig10_extra_latency``            Figure 10 (+1 cycle L2/L3)
``fig11_policies``                 Figure 11 (opportunistic/full ± CFORM)
``fig12_intelligent``              Figure 12 (intelligent ± CFORM)
``tables``                         Tables 1, 2, 3, 4, 5, 6, 7
``sec7_derandomization``           Section 7.3 attack probabilities
``runner``                         everything → EXPERIMENTS.md
=================================  =========================================
"""

from repro.experiments import (  # noqa: F401
    fig03_struct_density,
    fig04_padding_sweep,
    fig10_extra_latency,
    fig11_policies,
    fig12_intelligent,
    sec7_derandomization,
    tables,
)
