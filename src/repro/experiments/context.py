"""The run context every experiment receives: one object, all inputs.

Before this module each experiment ``run()`` took its own positional
slice of ``(instructions, seeds, store)`` and the runner hand-wired the
threading; :class:`RunContext` replaces that with a single frozen value
carrying the workload scale (``profile`` → ``instructions``/``seeds``),
the corpus store handle, the parallelism hint and a per-experiment RNG
namespace.  It is the *only* place that resolves
:func:`repro.corpus.store.default_store` — modules never guess the
corpus root themselves.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from functools import cached_property
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import CorpusStore

#: profile name -> (instructions, layout seeds); the historical runner's
#: quick/full knobs, now declared once.
PROFILES: dict[str, tuple[int, tuple[int, ...]]] = {
    "quick": (80_000, (0,)),
    "full": (200_000, (0, 1, 2)),
}


@dataclass(frozen=True)
class RunContext:
    """Frozen inputs for one experiment invocation.

    Experiments read, never write: the same context can be fanned out
    to worker processes (it pickles — the corpus store handle is plain
    paths and counters) and two runs built from equal contexts produce
    identical results.
    """

    profile: str = "quick"
    instructions: int = PROFILES["quick"][0]
    seeds: tuple[int, ...] = PROFILES["quick"][1]
    corpus_root: str | None = None
    jobs: int = 1
    rng_seed: int = 0
    #: JSON-serialised :class:`repro.reliability.faults.FaultPlan` (or
    #: ``None``).  A string so the frozen context stays trivially
    #: picklable into workers; the runner merges it with $REPRO_FAULTS.
    faults: str | None = None
    #: Loadgen benchmark-set selection tokens (``repro run --set ...``);
    #: the ``loadgen_contention`` section resolves them through
    #: :func:`repro.loadgen.sets.resolve`.  Empty means that section's
    #: default set.
    load_sets: tuple[str, ...] = ()
    #: Capture a cProfile per section (``repro run --profile-sections``).
    #: Effective only when telemetry is active — the profiler rides the
    #: telemetry sink (see :mod:`repro.telemetry.profiler`).
    profile_sections: bool = False

    @classmethod
    def create(
        cls,
        profile: str = "quick",
        *,
        corpus: str | None = None,
        no_corpus: bool = False,
        jobs: int = 1,
        instructions: int | None = None,
        seeds: tuple[int, ...] | None = None,
        rng_seed: int = 0,
        faults=None,
        sets: tuple[str, ...] = (),
        profile_sections: bool = False,
    ) -> "RunContext":
        """Build a context from CLI-level knobs.

        ``profile`` selects the workload scale; ``instructions``/
        ``seeds`` override it piecemeal.  Corpus resolution happens here
        and only here: ``no_corpus`` disables the store, ``corpus``
        names a root, otherwise
        :func:`repro.corpus.store.default_store` decides
        (``$REPRO_CORPUS_DIR`` or ``./.repro-corpus``).
        """
        if profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; known: {', '.join(PROFILES)}"
            )
        default_instructions, default_seeds = PROFILES[profile]
        if no_corpus:
            corpus_root = None
        elif corpus is not None:
            corpus_root = corpus
        else:
            from repro.corpus.store import default_store

            corpus_root = default_store().root
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if faults is not None and not isinstance(faults, str):
            faults = faults.to_json()  # a FaultPlan (or plan-shaped) value
        return cls(
            profile=profile,
            instructions=(
                default_instructions if instructions is None else instructions
            ),
            seeds=default_seeds if seeds is None else tuple(seeds),
            corpus_root=corpus_root,
            jobs=jobs,
            rng_seed=rng_seed,
            faults=faults,
            load_sets=tuple(sets),
            profile_sections=profile_sections,
        )

    # -- corpus --------------------------------------------------------------

    @cached_property
    def store(self) -> "CorpusStore | None":
        """The corpus store handle, or ``None`` for fully live synthesis.

        Built lazily so contexts are cheap to construct and pickle; the
        cached handle also accumulates this process's hit/built counters.
        """
        if self.corpus_root is None:
            return None
        from repro.corpus.store import CorpusStore

        return CorpusStore(self.corpus_root)

    # -- RNG namespace -------------------------------------------------------

    def seed_for(self, namespace: str) -> int:
        """A stable 64-bit seed derived from ``(rng_seed, namespace)``.

        Experiments that need private randomness draw it from their own
        namespace (usually their registry name), so adding or reordering
        experiments never perturbs another experiment's stream.
        """
        payload = f"{self.rng_seed}:{namespace}".encode("utf-8")
        return int.from_bytes(
            hashlib.sha256(payload).digest()[:8], "little"
        )

    def rng(self, namespace: str) -> random.Random:
        """A private :class:`random.Random` for one experiment namespace."""
        return random.Random(self.seed_for(namespace))

    # -- derivation ----------------------------------------------------------

    def with_overrides(self, **changes) -> "RunContext":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)
