"""Reference-result regression gate: ``python -m repro run --check``.

The experiment runner's per-section JSON documents are deterministic
(no timestamps, seeded workloads, bit-identical replay statistics), so
a committed copy of a known-good run is a regression oracle for the
whole figure pipeline.  This module is the diff gate between the two:

* ``results/reference/<name>.json`` — one committed
  :class:`~repro.experiments.results.SectionResult` document per
  section (seeded via ``python -m repro run --update-reference``);
* ``results/reference/tolerances.json`` — the committed tolerance
  schema: which keys are run provenance rather than measurements
  (``ignore_keys``), the default drift budget, and per-metric
  ``rel_tol``/``abs_tol`` overrides;
* :func:`check_outcomes` — compares a run's section outcomes against
  the reference and returns every metric that moved, as structured
  :class:`Drift` records that ``repro run`` summarises on stderr and
  embeds under the ``"check"`` key of ``results/index.json``.

Only the ``data`` payload is compared.  ``markdown`` is a rendering of
the same numbers (and leaks provenance strings like the corpus
``source`` column), so gating it would double-report every drift.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.results import (
    SectionFailure,
    SectionOutcome,
    SectionResult,
)

#: Default committed-reference location (relative to the repo root).
DEFAULT_REFERENCE_DIR = os.path.join("results", "reference")

#: Name of the committed tolerance schema inside the reference dir.
TOLERANCES_FILE = "tolerances.json"

#: Schema tag of the tolerance document.
TOLERANCES_SCHEMA = "repro-check-tolerances/v1"

#: Keys that describe how the run obtained its inputs — or how long it
#: took — not what it measured: ``source`` flips between "recorded" and
#: "corpus hit" depending on corpus warmth (see
#: ``trace_checks``/``loadgen_contention``); the timing/telemetry keys
#: are the observability stanza (wall-clock varies run to run, so a
#: gated telemetry run must never fail on them).
DEFAULT_IGNORE_KEYS = (
    "source",
    "timing",
    "telemetry",
    "seconds",
    "duration_s",
    "elapsed_s",
    "wall_s",
)


@dataclass(frozen=True)
class Tolerances:
    """The comparison policy for one check run.

    ``metrics`` maps a metric key (the nearest enclosing dict key of a
    numeric leaf) to ``{"rel_tol": float, "abs_tol": float}``; absent
    metrics use the defaults.  The committed defaults are zero — the
    pipeline is deterministic, so any movement is drift — and the
    schema exists so a future noisy metric can buy a budget explicitly
    rather than by loosening the whole gate.
    """

    ignore_keys: frozenset[str] = frozenset(DEFAULT_IGNORE_KEYS)
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def budget(self, metric: str) -> tuple[float, float]:
        """(rel_tol, abs_tol) for one metric key."""
        override = self.metrics.get(metric, {})
        return (
            float(override.get("rel_tol", self.rel_tol)),
            float(override.get("abs_tol", self.abs_tol)),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TOLERANCES_SCHEMA,
            "ignore_keys": sorted(self.ignore_keys),
            "default": {"rel_tol": self.rel_tol, "abs_tol": self.abs_tol},
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "Tolerances":
        schema = document.get("schema", TOLERANCES_SCHEMA)
        if schema != TOLERANCES_SCHEMA:
            raise ValueError(
                f"unsupported tolerance schema {schema!r} "
                f"(this build reads {TOLERANCES_SCHEMA!r})"
            )
        default = document.get("default", {})
        return cls(
            ignore_keys=frozenset(
                document.get("ignore_keys", DEFAULT_IGNORE_KEYS)
            ),
            rel_tol=float(default.get("rel_tol", 0.0)),
            abs_tol=float(default.get("abs_tol", 0.0)),
            metrics={
                str(key): dict(value)
                for key, value in document.get("metrics", {}).items()
            },
        )

    @classmethod
    def load(cls, reference_dir: str) -> "Tolerances":
        """The committed schema, or the built-in defaults if absent."""
        path = os.path.join(reference_dir, TOLERANCES_FILE)
        if not os.path.exists(path):
            return cls()
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class Drift:
    """One gate violation: a metric moved, appeared, or disappeared.

    ``kind`` is ``"changed"`` (value outside its budget), ``"missing"``
    / ``"added"`` (structure changed), ``"section-failed"`` (the run's
    section raised instead of measuring), or ``"missing-reference"``
    (no committed document to compare against).
    """

    section: str
    path: str
    kind: str
    reference: Any = None
    measured: Any = None

    def describe(self) -> str:
        if self.kind == "changed":
            return (
                f"{self.section}: {self.path}: "
                f"{self.reference!r} -> {self.measured!r}"
            )
        if self.kind == "missing":
            return f"{self.section}: {self.path}: missing (was {self.reference!r})"
        if self.kind == "added":
            return f"{self.section}: {self.path}: new value {self.measured!r}"
        if self.kind == "section-failed":
            return f"{self.section}: section failed: {self.measured}"
        return f"{self.section}: no reference document (run --update-reference)"

    def to_dict(self) -> dict[str, Any]:
        return {
            "section": self.section,
            "path": self.path,
            "kind": self.kind,
            "reference": self.reference,
            "measured": self.measured,
        }


@dataclass(frozen=True)
class CheckReport:
    """Everything one gate invocation found."""

    reference_dir: str
    sections: int
    drifts: tuple[Drift, ...]

    @property
    def ok(self) -> bool:
        return not self.drifts

    def to_index(self) -> dict[str, Any]:
        """The ``"check"`` entry embedded into ``results/index.json``."""
        return {
            "reference": self.reference_dir,
            "sections": self.sections,
            "status": "ok" if self.ok else "drift",
            "drifts": [drift.to_dict() for drift in self.drifts],
        }

    def summary(self) -> list[str]:
        if self.ok:
            return [
                f"check: {self.sections} section(s) match "
                f"{self.reference_dir}/"
            ]
        lines = [
            f"check: {len(self.drifts)} drift(s) vs {self.reference_dir}/"
        ]
        lines.extend(f"  {drift.describe()}" for drift in self.drifts)
        return lines


def _within(reference: float, measured: float, budget: tuple[float, float]) -> bool:
    rel_tol, abs_tol = budget
    if math.isnan(reference) or math.isnan(measured):
        return math.isnan(reference) and math.isnan(measured)
    return abs(measured - reference) <= max(abs_tol, rel_tol * abs(reference))


def diff_data(
    reference: Any,
    measured: Any,
    tolerances: Tolerances,
    section: str,
    path: str = "data",
    metric: str = "",
) -> list[Drift]:
    """Recursive comparison of two JSON-normalised ``data`` payloads.

    ``metric`` carries the nearest enclosing dict key down to numeric
    leaves, so the tolerance schema addresses metrics by name no matter
    how deep the experiment nested them.
    """
    drifts: list[Drift] = []
    if isinstance(reference, dict) and isinstance(measured, dict):
        for key in reference.keys() | measured.keys():
            if key in tolerances.ignore_keys:
                continue
            child = f"{path}.{key}"
            if key not in measured:
                drifts.append(
                    Drift(section, child, "missing", reference[key], None)
                )
            elif key not in reference:
                drifts.append(
                    Drift(section, child, "added", None, measured[key])
                )
            else:
                drifts.extend(
                    diff_data(
                        reference[key], measured[key], tolerances,
                        section, child, str(key),
                    )
                )
        return drifts
    if isinstance(reference, list) and isinstance(measured, list):
        if len(reference) != len(measured):
            return [
                Drift(
                    section, f"{path}.length", "changed",
                    len(reference), len(measured),
                )
            ]
        for index, (left, right) in enumerate(zip(reference, measured)):
            drifts.extend(
                diff_data(
                    left, right, tolerances,
                    section, f"{path}[{index}]", metric,
                )
            )
        return drifts
    # bool is an int subclass: compare identities before numerics so a
    # True -> 1 type change cannot slip through a numeric budget.
    numeric = (
        isinstance(reference, (int, float)) and not isinstance(reference, bool)
        and isinstance(measured, (int, float)) and not isinstance(measured, bool)
    )
    if numeric:
        if not _within(
            float(reference), float(measured), tolerances.budget(metric)
        ):
            return [Drift(section, path, "changed", reference, measured)]
        return []
    if reference != measured or type(reference) is not type(measured):
        return [Drift(section, path, "changed", reference, measured)]
    return []


def load_reference(reference_dir: str, name: str) -> SectionResult | None:
    """The committed reference document for one section, if any."""
    path = os.path.join(reference_dir, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return SectionResult.from_json(handle.read())


def check_outcomes(
    outcomes: list[SectionOutcome],
    reference_dir: str = DEFAULT_REFERENCE_DIR,
    tolerances: Tolerances | None = None,
) -> CheckReport:
    """Gate a run's outcomes against the committed reference results."""
    if tolerances is None:
        tolerances = Tolerances.load(reference_dir)
    drifts: list[Drift] = []
    for outcome in outcomes:
        if isinstance(outcome, SectionFailure):
            drifts.append(
                Drift(
                    outcome.name, "section", "section-failed",
                    None, outcome.error,
                )
            )
            continue
        reference = load_reference(reference_dir, outcome.name)
        if reference is None:
            drifts.append(
                Drift(outcome.name, "section", "missing-reference")
            )
            continue
        drifts.extend(
            diff_data(
                reference.data, outcome.data, tolerances, outcome.name
            )
        )
    return CheckReport(
        reference_dir=reference_dir,
        sections=len(outcomes),
        drifts=tuple(drifts),
    )


def update_reference(
    outcomes: list[SectionOutcome],
    reference_dir: str = DEFAULT_REFERENCE_DIR,
) -> list[str]:
    """(Re)write the committed reference from a run's outcomes.

    Failed sections are refused — a reference seeded from a broken run
    would lock the breakage in.  Writes the tolerance schema alongside
    if the directory does not carry one yet, so the whole gate is
    inspectable from ``results/reference/`` alone.
    """
    failures = [o for o in outcomes if isinstance(o, SectionFailure)]
    if failures:
        names = ", ".join(failure.name for failure in failures)
        raise ValueError(
            f"refusing to update the reference from a run with failed "
            f"section(s): {names}"
        )
    os.makedirs(reference_dir, exist_ok=True)
    paths: list[str] = []
    for outcome in outcomes:
        path = os.path.join(reference_dir, f"{outcome.name}.json")
        with open(path, "w") as handle:
            handle.write(outcome.to_json())
            handle.write("\n")
        paths.append(path)
    schema_path = os.path.join(reference_dir, TOLERANCES_FILE)
    if not os.path.exists(schema_path):
        with open(schema_path, "w") as handle:
            json.dump(Tolerances().to_dict(), handle, indent=2)
            handle.write("\n")
        paths.append(schema_path)
    return paths
