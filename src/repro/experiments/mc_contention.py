"""Multi-core shared-L3 study: contention and extra-latency pessimism.

The paper's Figure 10 charges the protected hierarchy a pessimistic
+1 cycle on every L2 and L3 access and reports the per-benchmark
slowdown on the Table 3 system — per-core private L1/L2 in front of a
shared 2 MB L3.  This section runs the multi-programmed version of that
study entirely from recorded traces: one registry mix (one corpus
scenario per core) is recorded once, then replayed three ways through
:func:`repro.traces.replayer.replay_multicore`:

* **solo** — each core's trace alone (a 1-core replay), the
  uncontended baseline for its L3 miss count;
* **contended** — all cores together sharing the L3, under the
  recorded (baseline-latency) configuration;
* **contended +1** — the same interleaved replay priced with the
  Figure-10 pessimistic ``with_extra_latency(1)`` knobs.

Reported per core: the L3 misses added by contention (co-runners
evicting each other's lines can only hurt — the LRU stack property —
so the delta is non-negative) and the extra-latency slowdown of the
contended run (AMAT cycles, +1 config vs recorded config).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

from repro.corpus.store import CorpusStore
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.memory.hierarchy import WESTMERE
from repro.traces.registry import multicore_mix
from repro.traces.replayer import replay_multicore

#: The mix this section studies (a four-core antagonist pressure mix).
MIX = "crowded-l3"


@dataclass(frozen=True)
class CoreContention:
    """One core's solo-vs-contended accounting."""

    mix: str
    core: int
    scenario: str
    solo_l3_misses: int
    contended_l3_misses: int
    extra_latency_slowdown: float  # +1-cycle L2/L3, contended run

    @property
    def added_misses(self) -> int:
        return self.contended_l3_misses - self.solo_l3_misses


def run(
    instructions: int = 8_000,
    mix: str = MIX,
    store: CorpusStore | None = None,
) -> list[CoreContention]:
    """Resolve the mix through the corpus, replay solo / contended / +1.

    Without a ``store`` an ephemeral one is used (standalone
    invocation); the runner passes its persistent default store, so the
    per-core traces are recorded once ever, not once per invocation.
    """
    if store is None:
        with tempfile.TemporaryDirectory(prefix="repro-mc-") as workdir:
            return run(instructions, mix, CorpusStore(workdir))
    specs = multicore_mix(mix).specs(instructions)
    recorded: dict[str, str] = {}
    for spec in specs:
        if spec.name not in recorded:
            recorded[spec.name] = store.ensure(spec).path
    paths = [recorded[spec.name] for spec in specs]

    # Duplicated cores replay the same deterministic trace, so one
    # solo baseline per unique path suffices.
    solo_by_path = {
        path: replay_multicore([path]).per_core[0]
        for path in recorded.values()
    }
    solo = [solo_by_path[path] for path in paths]
    contended = replay_multicore(paths)
    pessimistic = replay_multicore(
        paths, config=WESTMERE.with_extra_latency(1)
    )

    rows: list[CoreContention] = []
    for core, spec in enumerate(specs):
        base = contended.per_core[core]
        slow = pessimistic.per_core[core]
        rows.append(
            CoreContention(
                mix=mix,
                core=core,
                scenario=spec.name,
                solo_l3_misses=solo[core].events.l3_misses,
                contended_l3_misses=base.events.l3_misses,
                extra_latency_slowdown=slow.amat_cycles / base.amat_cycles
                - 1.0,
            )
        )
    return rows


def render(rows: list[CoreContention]) -> str:
    lines = [
        f"Multi-core shared-L3 replay of mix '{rows[0].mix}' "
        "(per-core traces, round-robin interleave)",
        "",
        "core scenario          l3 misses solo -> contended   +1-cycle slowdown",
        "---- ----------------- -------------------------   -----------------",
    ]
    for row in rows:
        lines.append(
            f"  {row.core}  {row.scenario:17s} "
            f"{row.solo_l3_misses:9d} -> {row.contended_l3_misses:9d}   "
            f"{row.extra_latency_slowdown * 100.0:16.2f}%"
        )
    lines.append("")
    lines.append(
        "contended misses are never below solo (LRU stack property: "
        "co-runners only add reuse distance);"
    )
    lines.append(
        "the slowdown column prices the contended run under Figure 10's "
        "pessimistic +1-cycle L2/L3 latency."
    )
    return "\n".join(lines)


@experiment(
    name="multicore",
    title="Multi-core — shared-L3 contention under extra latency",
    tags=("multicore", "trace"),
    needs=("instructions", "corpus"),
    order=130,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    # Four per-core traces: a tenth of the figure length each keeps the
    # recorded corpus and replay cost proportionate to the other sections.
    rows = run(instructions=ctx.instructions // 10, store=ctx.store)
    data = {"mix": MIX, "cores": rows}
    return section("multicore", data, render(rows))
