"""Figure 11: opportunistic and full insertion policies, ± CFORM.

Seven bar groups per benchmark in the paper:

* full policy with random 1-3 / 1-5 / 1-7 B spans, **without** CFORM
  (layout inflation only; avg 5.5 / 5.6 / 6.5 %),
* opportunistic **with** CFORM (pure CFORM work; avg 7.9 %; gobmk,
  h264ref and perlbench above 10 %),
* full with random spans **with** CFORM (avg up to 14.0-14.2 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.suite import SuiteResult, sweep
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.softstack.insertion import Policy
from repro.workloads.generator import Scenario
from repro.workloads.specs import FIG11_BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import CorpusStore

#: Paper averages (percent) per configuration key.
PAPER = {
    "full 1-3B": 5.5,
    "full 1-5B": 5.6,
    "full 1-7B": 6.5,
    "opportunistic +CFORM": 7.9,
    "full 1-3B +CFORM": 13.5,
    "full 1-5B +CFORM": 13.7,
    "full 1-7B +CFORM": 14.0,
}

SPAN_RANGES = ((1, 3), (1, 5), (1, 7))


@dataclass(frozen=True)
class Fig11Result:
    configurations: dict[str, SuiteResult]

    def averages(self) -> dict[str, float]:
        return {k: v.average for k, v in self.configurations.items()}


def _configurations() -> dict[str, Scenario]:
    configs: dict[str, Scenario] = {}
    for low, high in SPAN_RANGES:
        configs[f"full {low}-{high}B"] = Scenario(
            policy=Policy.FULL, min_bytes=low, max_bytes=high
        )
    configs["opportunistic +CFORM"] = Scenario(
        policy=Policy.OPPORTUNISTIC, with_cform=True
    )
    for low, high in SPAN_RANGES:
        configs[f"full {low}-{high}B +CFORM"] = Scenario(
            policy=Policy.FULL, min_bytes=low, max_bytes=high, with_cform=True
        )
    return configs


def run(
    instructions: int = 100_000,
    benchmarks: list[str] | None = None,
    binary_seeds: tuple[int, ...] = (0,),
    store: "CorpusStore | None" = None,
) -> Fig11Result:
    """``store`` resolves every cell through the recorded-trace corpus;
    the seven configurations then share one recorded baseline per
    (benchmark, seed) instead of re-running it seven times."""
    benchmarks = benchmarks or FIG11_BENCHMARKS
    return Fig11Result(
        configurations={
            label: sweep(
                benchmarks,
                scenario,
                instructions=instructions,
                binary_seeds=binary_seeds,
                label=label,
                store=store,
            )
            for label, scenario in _configurations().items()
        }
    )


def render(result: Fig11Result) -> str:
    lines = ["Figure 11: opportunistic and full policies (± CFORM)", ""]
    lines.append(f"{'configuration':24s} measured   paper")
    for label, suite in result.configurations.items():
        paper = PAPER.get(label)
        paper_text = f"{paper:5.1f}%" if paper is not None else "    -"
        lines.append(f"{label:24s} {suite.average * 100:7.2f}%   {paper_text}")
    outliers = result.configurations["opportunistic +CFORM"]
    lines.append("")
    lines.append("opportunistic+CFORM outliers (paper: gobmk, h264ref, perlbench >10%):")
    for entry in sorted(outliers.per_benchmark, key=lambda e: -e.mean)[:3]:
        lines.append(f"  {entry.benchmark:11s} {entry.mean * 100:5.1f}%")
    return "\n".join(lines)


@experiment(
    name="fig11",
    title="Figure 11 — opportunistic & full policies",
    tags=("figure", "trace"),
    needs=("instructions", "seeds", "corpus"),
    order=70,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    result = run(
        instructions=ctx.instructions, binary_seeds=ctx.seeds, store=ctx.store
    )
    data = {
        "paper": PAPER,
        "averages": result.averages(),
        "configurations": result.configurations,
    }
    return section("fig11", data, render(result))
