"""Declarative experiment registry: the one list of everything runnable.

An *experiment* is a named, tagged callable ``run(ctx) -> SectionResult``
registered with the :func:`experiment` decorator::

    @experiment(
        name="fig10",
        title="Figure 10 — +1-cycle L2/L3 latency",
        tags=("figure",),
        needs=("instructions", "corpus"),
    )
    def experiment_fig10(ctx: RunContext) -> SectionResult:
        ...

The registry replaces the old hand-wired ``_section_*`` tuple in the
runner: selection by name (``python -m repro run fig10``) or tag
(``--tag figure``) resolves here, report order is the declared ``order``,
and unknown names fail with the full known list instead of silently
running nothing.  Adding a scenario is now *one* decorated function —
the runner, the CLI and the results writer all discover it from here.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.experiments.context import RunContext
from repro.experiments.results import SectionResult

#: Declared resources an experiment may consume (documentation + a
#: selection axis; ``python -m repro run --list`` prints them).
KNOWN_NEEDS = frozenset({"instructions", "seeds", "corpus"})

#: Modules whose import registers experiments.  Kept as names (not
#: imports) so this module stays cycle-free: experiment modules import
#: the decorator from here.
EXPERIMENT_MODULES: tuple[str, ...] = (
    "repro.experiments.fig03_struct_density",
    "repro.experiments.fig04_padding_sweep",
    "repro.experiments.tables",
    "repro.experiments.fig10_extra_latency",
    "repro.experiments.fig11_policies",
    "repro.experiments.fig12_intelligent",
    "repro.experiments.sec7_derandomization",
    "repro.experiments.trace_checks",
    "repro.experiments.mc_contention",
    "repro.experiments.loadgen_contention",
)


class UnknownExperimentError(KeyError):
    """Raised when selection names an experiment or tag that isn't registered."""


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: identity, classification, entry point."""

    name: str
    title: str
    fn: Callable[[RunContext], SectionResult] = field(repr=False)
    tags: frozenset[str] = frozenset()
    needs: frozenset[str] = frozenset()
    order: int = 0

    def run(self, ctx: RunContext) -> SectionResult:
        result = self.fn(ctx)
        if not isinstance(result, SectionResult):
            raise TypeError(
                f"experiment {self.name!r} returned "
                f"{type(result).__name__}, not SectionResult"
            )
        return result


_REGISTRY: dict[str, Experiment] = {}
_loaded = False


def experiment(
    *,
    name: str,
    title: str,
    tags: Iterable[str] = (),
    needs: Iterable[str] = (),
    order: int = 0,
) -> Callable[[Callable[[RunContext], SectionResult]], Callable]:
    """Register ``fn`` as the experiment ``name``; returns ``fn`` unchanged."""
    unknown_needs = set(needs) - KNOWN_NEEDS
    if unknown_needs:
        raise ValueError(
            f"experiment {name!r} declares unknown needs "
            f"{sorted(unknown_needs)}; known: {sorted(KNOWN_NEEDS)}"
        )

    def register(fn: Callable[[RunContext], SectionResult]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"duplicate experiment name {name!r}")
        _REGISTRY[name] = Experiment(
            name=name,
            title=title,
            fn=fn,
            tags=frozenset(tags),
            needs=frozenset(needs),
            order=order,
        )
        return fn

    return register


def load_all() -> None:
    """Import every experiment module so its registrations land."""
    global _loaded
    if _loaded:
        return
    for module in EXPERIMENT_MODULES:
        importlib.import_module(module)
    _loaded = True


def registry() -> dict[str, Experiment]:
    """Name → experiment, fully loaded."""
    load_all()
    return dict(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """Every experiment in report order."""
    load_all()
    return sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name))


def all_tags() -> set[str]:
    return {tag for exp in all_experiments() for tag in exp.tags}


def get(name: str) -> Experiment:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def section(name: str, data, markdown: str) -> SectionResult:
    """Build a :class:`SectionResult` stamped with ``name``'s registry
    identity (title, tags) — the single source of truth for both."""
    exp = _REGISTRY[name]
    return SectionResult(
        name=name,
        title=exp.title,
        data=data,
        markdown=markdown,
        tags=tuple(sorted(exp.tags)),
    )


def select(
    names: Iterable[str] = (), tags: Iterable[str] = ()
) -> list[Experiment]:
    """Resolve a name/tag selection to experiments in report order.

    With neither names nor tags, everything is selected.  Unknown names
    or tags raise :class:`UnknownExperimentError` listing what exists —
    a selection that silently matches nothing is always a bug.
    """
    names = list(names)
    tags = list(tags)
    chosen: dict[str, Experiment] = {}
    for name in names:
        chosen[name] = get(name)
    if tags:
        known_tags = all_tags()
        unknown = sorted(set(tags) - known_tags)
        if unknown:
            raise UnknownExperimentError(
                f"unknown tag(s) {', '.join(unknown)}; known: "
                f"{', '.join(sorted(known_tags))}"
            )
        for exp in all_experiments():
            if exp.tags.intersection(tags):
                chosen[exp.name] = exp
    if not names and not tags:
        return all_experiments()
    return sorted(chosen.values(), key=lambda e: (e.order, e.name))
