"""Figure 3: struct-density histograms for SPEC CPU2006 and V8.

Paper: 45.7 % of SPEC structs and 41.0 % of V8 structs have at least one
padding byte; the histogram is dominated by the fully-dense bin with a
long sparse tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.softstack.layout import densities, fraction_with_padding
from repro.workloads.structs_corpus import spec_corpus, v8_corpus

#: Paper values this experiment reproduces.
PAPER = {"spec_padded_fraction": 0.457, "v8_padded_fraction": 0.410}

#: Histogram bin edges (Figure 3 uses 0.1-wide bins).
BIN_EDGES = [i / 10 for i in range(11)]


@dataclass(frozen=True)
class DensityCensus:
    """The census for one corpus."""

    corpus: str
    struct_count: int
    padded_fraction: float
    histogram: tuple[float, ...]  # fraction of structs per 0.1 bin


def _histogram(values: list[float]) -> tuple[float, ...]:
    counts = [0] * 10
    for value in values:
        index = min(int(value * 10), 9)
        counts[index] += 1
    total = len(values)
    return tuple(count / total for count in counts)


def census(corpus_name: str, structs) -> DensityCensus:
    values = densities(structs)
    return DensityCensus(
        corpus=corpus_name,
        struct_count=len(structs),
        padded_fraction=fraction_with_padding(structs),
        histogram=_histogram(values),
    )


def run(generated: int = 400, seed: int = 0) -> dict[str, DensityCensus]:
    """Run the Figure 3 census over both corpora."""
    return {
        "spec": census("SPEC CPU2006 (synthetic)", spec_corpus(generated, seed)),
        "v8": census("V8 (synthetic)", v8_corpus(generated, seed)),
    }


def render(results: dict[str, DensityCensus]) -> str:
    lines = ["Figure 3: struct density histograms", ""]
    for key, paper_value in (
        ("spec", PAPER["spec_padded_fraction"]),
        ("v8", PAPER["v8_padded_fraction"]),
    ):
        result = results[key]
        lines.append(
            f"{result.corpus}: {result.struct_count} structs, "
            f"padded fraction {result.padded_fraction:.3f} "
            f"(paper {paper_value:.3f})"
        )
        for index, fraction in enumerate(result.histogram):
            low, high = BIN_EDGES[index], BIN_EDGES[index + 1]
            bar = "#" * round(fraction * 60)
            lines.append(f"  ({low:.1f}, {high:.1f}]  {fraction:5.3f}  {bar}")
        lines.append("")
    return "\n".join(lines)


@experiment(
    name="fig03",
    title="Figure 3 — struct density census",
    tags=("figure",),
    order=10,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    """The census is corpus-size-, profile- and seed-stable by design
    (fixed 400-struct synthetic corpora), so the context carries no knobs
    for it."""
    results = run()
    return section(
        "fig03", {"paper": PAPER, "census": results}, render(results)
    )
