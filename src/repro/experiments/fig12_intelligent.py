"""Figure 12: the intelligent insertion policy, ± CFORM.

Paper: without CFORM the layout inflation is nearly free (avg 0.2 % for
1-7 B spans, nothing above 5 %); with CFORM the average is 1.5 % with two
outliers — gobmk 16.1 % and perlbench 7.2 %.  The caption quotes 2.0 % as
the overall figure average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.suite import SuiteResult, sweep
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.softstack.insertion import Policy
from repro.workloads.generator import Scenario
from repro.workloads.specs import FIG11_BENCHMARKS

PAPER = {
    "intelligent 1-7B": 0.2,
    "intelligent 1-7B +CFORM": 1.5,
    "gobmk +CFORM": 16.1,
    "perlbench +CFORM": 7.2,
}

SPAN_RANGES = ((1, 3), (1, 5), (1, 7))


@dataclass(frozen=True)
class Fig12Result:
    configurations: dict[str, SuiteResult]

    def averages(self) -> dict[str, float]:
        return {k: v.average for k, v in self.configurations.items()}


def run(
    instructions: int = 100_000,
    benchmarks: list[str] | None = None,
    binary_seeds: tuple[int, ...] = (0,),
) -> Fig12Result:
    benchmarks = benchmarks or FIG11_BENCHMARKS
    configurations: dict[str, SuiteResult] = {}
    for with_cform in (False, True):
        for low, high in SPAN_RANGES:
            suffix = " +CFORM" if with_cform else ""
            label = f"intelligent {low}-{high}B{suffix}"
            configurations[label] = sweep(
                benchmarks,
                Scenario(
                    policy=Policy.INTELLIGENT,
                    min_bytes=low,
                    max_bytes=high,
                    with_cform=with_cform,
                ),
                instructions=instructions,
                binary_seeds=binary_seeds,
                label=label,
            )
    return Fig12Result(configurations=configurations)


def render(result: Fig12Result) -> str:
    lines = ["Figure 12: intelligent policy (± CFORM)", ""]
    lines.append(f"{'configuration':28s} measured   paper")
    for label, suite in result.configurations.items():
        paper = PAPER.get(label)
        paper_text = f"{paper:5.1f}%" if paper is not None else "    -"
        lines.append(f"{label:28s} {suite.average * 100:7.2f}%   {paper_text}")
    cform_suite = result.configurations["intelligent 1-7B +CFORM"]
    lines.append("")
    lines.append("with-CFORM outliers (paper: gobmk 16.1%, perlbench 7.2%):")
    for name in ("gobmk", "perlbench"):
        entry = cform_suite.benchmark(name)
        lines.append(f"  {name:11s} {entry.mean * 100:5.1f}%")
    return "\n".join(lines)


@experiment(
    name="fig12",
    title="Figure 12 — intelligent policy",
    tags=("figure",),
    needs=("instructions", "seeds"),
    order=80,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    result = run(instructions=ctx.instructions, binary_seeds=ctx.seeds)
    data = {
        "paper": PAPER,
        "averages": result.averages(),
        "configurations": result.configurations,
    }
    return section("fig12", data, render(result))
