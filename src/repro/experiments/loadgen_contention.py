"""Loadgen cross-check: composed multi-tenant traffic vs solo tenants.

For a benchmark-set selection (``repro run --set ...``; default
``synthetic``) the section composes each load scenario into one
interleaved trace through the corpus store, then records a *solo
baseline* per workload profile the mix apportions — the same per-tenant
arrival rate, one tenant, no co-runners — and compares shared-ladder
miss behaviour: the composed trace's L3 miss rate against the
tenant-weighted average of the solo rates.  The delta is the cache
contention the open-loop composition creates, the single-socket
analogue of the paper's SPEC-co-runner interference arguments.

Every trace resolves through the content-addressed corpus
(:meth:`~repro.corpus.store.CorpusStore.ensure`): the first runner
invocation records, later invocations replay pure corpus hits — the
``source`` column makes that visible per row.
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

from repro.corpus.store import CorpusStore
from repro.experiments.context import PROFILES, RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.loadgen.compose import apportion_tenants, compose_spec
from repro.loadgen.schema import LoadScenario, MixEntry
from repro.loadgen.sets import load_scenarios, resolve
from repro.traces.replayer import replay_timing

#: Set tokens used when the context carries no ``--set`` selection.
DEFAULT_SETS = ("synthetic",)


def _miss_rate(result) -> float:
    """L3 misses per cache touch (touches == L1 accesses)."""
    if result.events.l1_accesses == 0:
        return 0.0
    return result.events.l3_misses / result.events.l1_accesses


def _solo_scenario(load: LoadScenario, profile_name: str) -> LoadScenario:
    """One tenant of ``profile_name`` at the composition's per-tenant rate."""
    return replace(
        load,
        name=f"{load.name}--solo-{profile_name}",
        description=f"solo baseline of {load.name}: one {profile_name} "
        "tenant, no co-runners",
        arrival=replace(
            load.arrival,
            lambda_per_s=load.arrival.lambda_per_s / load.tenants,
        ),
        mix=(MixEntry(profile=profile_name, weight=1.0),),
        tenants=1,
    )


def _resolve_replay(store: CorpusStore, load: LoadScenario):
    """Compose through the corpus; returns (result, entry, source)."""
    resolved = store.ensure(compose_spec(load))
    result, footer = replay_timing(resolved.path, with_footer=True)
    return result, resolved, "recorded" if resolved.built else "corpus hit"


def run(
    sets: tuple[str, ...] = DEFAULT_SETS,
    duration_scale: float = 1.0,
    store: CorpusStore | None = None,
) -> list[dict]:
    """Compose, baseline and compare every scenario of the selection.

    Without a ``store`` an ephemeral one is used (standalone
    invocation); the runner passes its persistent default store, so a
    second runner invocation performs zero re-recording.
    """
    if store is None:
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as workdir:
            return run(sets, duration_scale, CorpusStore(workdir))
    rows: list[dict] = []
    for scenario in resolve(sets, load_scenarios()):
        load = scenario.scaled(duration_scale)
        composed, resolved, source = _resolve_replay(store, load)
        tenants = apportion_tenants(load)
        solo_rates: dict[str, float] = {}
        for profile_name in dict.fromkeys(tenants):  # distinct, mix order
            solo, _, _ = _resolve_replay(
                store, _solo_scenario(load, profile_name)
            )
            solo_rates[profile_name] = _miss_rate(solo)
        weighted_solo = sum(
            solo_rates[name] for name in tenants
        ) / len(tenants)
        composed_rate = _miss_rate(composed)
        rows.append(
            {
                "scenario": scenario.name,
                "tenants": load.tenants,
                "records": resolved.entry.records,
                "source": source,
                "composed_l3_rate": composed_rate,
                "solo_l3_rate": weighted_solo,
                "contention_pp": (composed_rate - weighted_solo) * 100.0,
                "solo_rates": solo_rates,
            }
        )
    return rows


def render(rows: list[dict]) -> str:
    lines = [
        "scenario              tenants  records  composed L3  solo L3 "
        " contention  source",
        "--------------------- ------- -------- ------------ --------"
        " ----------- ----------",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:21s} {row['tenants']:7d} "
            f"{row['records']:8d} {row['composed_l3_rate'] * 100.0:10.2f}% "
            f"{row['solo_l3_rate'] * 100.0:7.2f}% "
            f"{row['contention_pp']:+9.2f}pp  {row['source']}"
        )
    lines.append("")
    lines.append(
        "composed/solo L3: shared-ladder L3 misses per cache touch for "
        "the interleaved multi-tenant trace vs the tenant-weighted "
        "average of per-profile solo runs at the same per-tenant rate;"
    )
    lines.append(
        "contention is the difference in percentage points — the cache "
        "interference the open-loop composition creates."
    )
    return "\n".join(lines)


@experiment(
    name="loadgen_contention",
    title="Load generator — multi-tenant contention vs solo tenants",
    tags=("trace", "loadgen"),
    needs=("instructions", "corpus"),
    order=140,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    # Scale the open-loop timeline with the profile's instruction knob
    # so quick runs compose proportionally shorter traffic.
    duration_scale = ctx.instructions / PROFILES["full"][0]
    sets = ctx.load_sets or DEFAULT_SETS
    rows = run(sets, duration_scale=duration_scale, store=ctx.store)
    data = {
        "sets": list(sets),
        "duration_scale": duration_scale,
        "rows": rows,
    }
    return section("loadgen_contention", data, render(rows))
