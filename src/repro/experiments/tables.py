"""Table drivers: 1 (CFORM K-map), 2/7 (VLSI), 3 (config), 4/5/6 (related
work comparison) and the measured attack-detection matrix.
"""

from __future__ import annotations

from repro.analysis.attacks import detection_matrix, render_matrix
from repro.analysis.vlsi import table2_rows, table7_rows
from repro.baselines.comparison import (
    TABLE4,
    TABLE5,
    TABLE6,
    implemented_models,
    render_table,
)
from repro.core import bitvector as bv
from repro.core.cform import CformRequest, apply_cform_mask
from repro.core.exceptions import CformUsageError
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.memory.hierarchy import WESTMERE

#: Paper anchors for Table 2 (the 8B design row).
PAPER_TABLE2 = {
    "area_overhead_pct": 18.69,
    "delay_overhead_pct": 1.85,
    "power_overhead_pct": 2.12,
    "fill_delay_ns": 1.43,
    "spill_delay_ns": 5.50,
    "fill_area_ge": 8957.16,
    "spill_area_ge": 34561.80,
}

#: Paper anchors for Table 7 (variant delay overheads, percent).
PAPER_TABLE7 = {"Califorms-4B": 49.38, "Califorms-1B": 22.22}


def table1_kmap() -> list[dict[str, str]]:
    """Exercise every cell of the Table 1 K-map on real CFORM semantics."""
    rows = []
    for initial_security in (False, True):
        initial = bv.bit(0) if initial_security else 0
        for label, attributes, mask in (
            ("X, Disallow", bv.bit(0), 0),
            ("Unset, Allow", 0, bv.bit(0)),
            ("Set, Allow", bv.bit(0), bv.bit(0)),
        ):
            request = CformRequest(0, attributes=attributes, mask=mask)
            try:
                result = apply_cform_mask(initial, request)
                outcome = "Security Byte" if bv.test_bit(result, 0) else "Regular Byte"
            except CformUsageError:
                outcome = "Exception"
            rows.append(
                {
                    "initial": "Security Byte" if initial_security else "Regular Byte",
                    "operation": label,
                    "outcome": outcome,
                }
            )
    return rows


def render_table1() -> str:
    lines = ["Table 1: CFORM K-map (executed against the simulator)", ""]
    lines.append(f"{'initial':15s} {'operation':15s} outcome")
    for row in table1_kmap():
        lines.append(
            f"{row['initial']:15s} {row['operation']:15s} {row['outcome']}"
        )
    return "\n".join(lines)


def render_table2() -> str:
    lines = ["Table 2: VLSI area/delay/power (structural model)", ""]
    for row in table2_rows():
        lines.append(str(row))
    lines.append("")
    lines.append(f"paper anchors: {PAPER_TABLE2}")
    return "\n".join(lines)


def render_table3() -> str:
    config = WESTMERE
    lines = [
        "Table 3: simulated system configuration",
        "",
        "Core        x86-64 Westmere-like OoO at 2.27 GHz (analytical model)",
        f"L1-D cache  {config.l1_geometry.size_bytes // 1024}KB, "
        f"{config.l1_geometry.associativity}-way, {config.l1_latency}-cycle",
        f"L2 cache    {config.l2_geometry.size_bytes // 1024}KB, "
        f"{config.l2_geometry.associativity}-way, {config.l2_latency}-cycle",
        f"L3 cache    {config.l3_geometry.size_bytes // (1024 * 1024)}MB, "
        f"{config.l3_geometry.associativity}-way, {config.l3_latency}-cycle",
        f"DRAM        8GB DDR3-1333 ({config.dram_latency}-cycle flat model)",
    ]
    return "\n".join(lines)


def render_table7() -> str:
    lines = ["Table 7: L1 Califorms variants (structural model)", ""]
    for row in table7_rows():
        lines.append(str(row))
    lines.append("")
    lines.append(f"paper variant delay overheads: {PAPER_TABLE7}")
    return "\n".join(lines)


def render_tables456() -> str:
    parts = [render_table(TABLE4), "", render_table(TABLE5), "", render_table(TABLE6)]
    parts.append("")
    parts.append("Measured attack-detection matrix (extends Table 4):")
    parts.append(render_matrix(detection_matrix(implemented_models())))
    return "\n".join(parts)


# -- registry entries --------------------------------------------------------
#
# The tables are static with respect to the run context (they exercise
# CFORM semantics, the structural VLSI model and the comparison matrix,
# none of which scale with trace length), so each wrapper just pairs the
# underlying rows with the rendered text.


@experiment(
    name="table1", title="Table 1 — CFORM K-map", tags=("table",), order=30
)
def run_table1(ctx: RunContext) -> SectionResult:
    return section("table1", {"kmap": table1_kmap()}, render_table1())


@experiment(
    name="table2", title="Table 2 — VLSI costs", tags=("table",), order=40
)
def run_table2(ctx: RunContext) -> SectionResult:
    data = {"paper": PAPER_TABLE2, "rows": table2_rows()}
    return section("table2", data, render_table2())


@experiment(
    name="table3", title="Table 3 — simulated system", tags=("table",), order=50
)
def run_table3(ctx: RunContext) -> SectionResult:
    config = WESTMERE
    data = {
        "l1_bytes": config.l1_geometry.size_bytes,
        "l2_bytes": config.l2_geometry.size_bytes,
        "l3_bytes": config.l3_geometry.size_bytes,
        "latencies": {
            "l1": config.l1_latency,
            "l2": config.l2_latency,
            "l3": config.l3_latency,
            "dram": config.dram_latency,
        },
    }
    return section("table3", data, render_table3())


@experiment(
    name="tables456",
    title="Tables 4/5/6 — related-work comparison",
    tags=("table",),
    order=90,
)
def run_tables456(ctx: RunContext) -> SectionResult:
    data = {"detection_matrix": detection_matrix(implemented_models())}
    return section("tables456", data, render_tables456())


@experiment(
    name="table7", title="Table 7 — L1 variants", tags=("table",), order=110
)
def run_table7(ctx: RunContext) -> SectionResult:
    data = {"paper": PAPER_TABLE7, "rows": table7_rows()}
    return section("table7", data, render_table7())
