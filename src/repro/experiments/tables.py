"""Table drivers: 1 (CFORM K-map), 2/7 (VLSI), 3 (config), 4/5/6 (related
work comparison) and the measured attack-detection matrix.
"""

from __future__ import annotations

from repro.analysis.attacks import detection_matrix, render_matrix
from repro.analysis.vlsi import table2_rows, table7_rows
from repro.baselines.comparison import (
    TABLE4,
    TABLE5,
    TABLE6,
    implemented_models,
    render_table,
)
from repro.core import bitvector as bv
from repro.core.cform import CformRequest, apply_cform_mask
from repro.core.exceptions import CformUsageError
from repro.memory.hierarchy import WESTMERE

#: Paper anchors for Table 2 (the 8B design row).
PAPER_TABLE2 = {
    "area_overhead_pct": 18.69,
    "delay_overhead_pct": 1.85,
    "power_overhead_pct": 2.12,
    "fill_delay_ns": 1.43,
    "spill_delay_ns": 5.50,
    "fill_area_ge": 8957.16,
    "spill_area_ge": 34561.80,
}

#: Paper anchors for Table 7 (variant delay overheads, percent).
PAPER_TABLE7 = {"Califorms-4B": 49.38, "Califorms-1B": 22.22}


def table1_kmap() -> list[dict[str, str]]:
    """Exercise every cell of the Table 1 K-map on real CFORM semantics."""
    rows = []
    for initial_security in (False, True):
        initial = bv.bit(0) if initial_security else 0
        for label, attributes, mask in (
            ("X, Disallow", bv.bit(0), 0),
            ("Unset, Allow", 0, bv.bit(0)),
            ("Set, Allow", bv.bit(0), bv.bit(0)),
        ):
            request = CformRequest(0, attributes=attributes, mask=mask)
            try:
                result = apply_cform_mask(initial, request)
                outcome = "Security Byte" if bv.test_bit(result, 0) else "Regular Byte"
            except CformUsageError:
                outcome = "Exception"
            rows.append(
                {
                    "initial": "Security Byte" if initial_security else "Regular Byte",
                    "operation": label,
                    "outcome": outcome,
                }
            )
    return rows


def render_table1() -> str:
    lines = ["Table 1: CFORM K-map (executed against the simulator)", ""]
    lines.append(f"{'initial':15s} {'operation':15s} outcome")
    for row in table1_kmap():
        lines.append(
            f"{row['initial']:15s} {row['operation']:15s} {row['outcome']}"
        )
    return "\n".join(lines)


def render_table2() -> str:
    lines = ["Table 2: VLSI area/delay/power (structural model)", ""]
    for row in table2_rows():
        lines.append(str(row))
    lines.append("")
    lines.append(f"paper anchors: {PAPER_TABLE2}")
    return "\n".join(lines)


def render_table3() -> str:
    config = WESTMERE
    lines = [
        "Table 3: simulated system configuration",
        "",
        "Core        x86-64 Westmere-like OoO at 2.27 GHz (analytical model)",
        f"L1-D cache  {config.l1_geometry.size_bytes // 1024}KB, "
        f"{config.l1_geometry.associativity}-way, {config.l1_latency}-cycle",
        f"L2 cache    {config.l2_geometry.size_bytes // 1024}KB, "
        f"{config.l2_geometry.associativity}-way, {config.l2_latency}-cycle",
        f"L3 cache    {config.l3_geometry.size_bytes // (1024 * 1024)}MB, "
        f"{config.l3_geometry.associativity}-way, {config.l3_latency}-cycle",
        f"DRAM        8GB DDR3-1333 ({config.dram_latency}-cycle flat model)",
    ]
    return "\n".join(lines)


def render_table7() -> str:
    lines = ["Table 7: L1 Califorms variants (structural model)", ""]
    for row in table7_rows():
        lines.append(str(row))
    lines.append("")
    lines.append(f"paper variant delay overheads: {PAPER_TABLE7}")
    return "\n".join(lines)


def render_tables456() -> str:
    parts = [render_table(TABLE4), "", render_table(TABLE5), "", render_table(TABLE6)]
    parts.append("")
    parts.append("Measured attack-detection matrix (extends Table 4):")
    parts.append(render_matrix(detection_matrix(implemented_models())))
    return "\n".join(parts)
