"""Section 7.3: derandomization attack probabilities, analytic + measured.

Paper claims: with P/N = 0.1, scan success reaches ~1e-20 by O = 250
objects; guessing n random 1-7 B spans succeeds with probability 1/7^n.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.security import (
    guess_success_probability,
    scan_success_probability,
    simulate_guess_attack,
    simulate_scan_attack,
)
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.softstack.ctypes_model import LISTING_1_STRUCT_A

PAPER = {
    "scan_padding_ratio": 0.10,
    "scan_objects": 250,
    "guess_base": 7,
}


@dataclass(frozen=True)
class DerandomizationResult:
    scan_curve: dict[int, float]  # O -> analytic success probability
    guess_curve: dict[int, float]  # n spans -> analytic success
    simulated_scan_success: float
    simulated_guess_success: float


def run(trials: int = 500, seed: int = 0) -> DerandomizationResult:
    scan_curve = {
        objects: scan_success_probability(PAPER["scan_padding_ratio"], objects)
        for objects in (1, 10, 50, 100, 250)
    }
    guess_curve = {n: guess_success_probability(n) for n in range(1, 7)}
    scan_sim = simulate_scan_attack(
        LISTING_1_STRUCT_A, objects=8, trials=trials, seed=seed
    )
    guess_sim = simulate_guess_attack(
        LISTING_1_STRUCT_A, trials=trials * 20, seed=seed
    )
    return DerandomizationResult(
        scan_curve=scan_curve,
        guess_curve=guess_curve,
        simulated_scan_success=scan_sim.success_rate,
        simulated_guess_success=guess_sim.success_rate,
    )


def render(result: DerandomizationResult) -> str:
    lines = ["Section 7.3: derandomization attacks", ""]
    lines.append("scan success (analytic, P/N = 0.1):")
    for objects, probability in result.scan_curve.items():
        lines.append(f"  O = {objects:4d}: {probability:.3e}")
    lines.append("")
    lines.append("guess success (analytic, random 1-7B spans):")
    for spans, probability in result.guess_curve.items():
        lines.append(f"  n = {spans}: {probability:.3e}")
    lines.append("")
    lines.append(
        f"Monte-Carlo scan (8 full-policy objects): "
        f"{result.simulated_scan_success:.4f}"
    )
    lines.append(
        f"Monte-Carlo guess (Listing 1 struct):      "
        f"{result.simulated_guess_success:.2e}"
    )
    return "\n".join(lines)


@experiment(
    name="sec7",
    title="Section 7.3 — derandomization",
    tags=("security",),
    order=100,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    """The Monte-Carlo seed stays pinned at the module default (0): the
    section's published numbers are part of the byte-stable report.
    Callers wanting fresh randomness pass ``ctx.seed_for("sec7")`` to
    :func:`run` directly."""
    result = run()
    return section("sec7", {"paper": PAPER, "result": result}, render(result))
